"""Ablation — merge-gap sensitivity (Sec. IV-A.3 footnote).

The paper tried 1-, 2- and 5-minute merge gaps and "found the number of
merged replica streams not to be significantly different".  Asserted
shape: loop counts are monotone non-increasing in the gap and change
little between 1 and 5 minutes.
"""

from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.report import format_table

GAPS = (60.0, 120.0, 300.0)


def test_merge_gap_ablation(table1_results, emit, benchmark):
    def sweep():
        counts: dict[str, dict[float, int]] = {}
        for name, result in table1_results.items():
            counts[name] = {}
            for gap in GAPS:
                detector = LoopDetector(DetectorConfig(merge_gap=gap))
                counts[name][gap] = detector.detect(
                    result.trace
                ).loop_count
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [name] + [counts[name][gap] for gap in GAPS]
        for name in counts
    ]
    emit("ablation_merge_gap", format_table(
        ["trace", "1 min gap", "2 min gap", "5 min gap"],
        rows,
        title="Ablation — routing loops vs merge gap",
    ))

    for name, by_gap in counts.items():
        # Monotone: larger gaps can only merge more.
        assert by_gap[60.0] >= by_gap[120.0] >= by_gap[300.0]
        # And not *much* more: the footnote's insensitivity claim.
        assert by_gap[60.0] - by_gap[300.0] <= max(
            2, by_gap[60.0] // 2
        ), f"{name}: merge gap changes loop count too strongly"
