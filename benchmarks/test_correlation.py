"""Extension — correlating loops with routing data (the paper's future
work, Sec. VI).

With the journal standing in for "complete BGP and IS-IS routing data",
every detected loop is attributed to its control-plane trigger.
Asserted shape: no loop is unexplained; the BGP-event-heavy traces'
loops involve BGP triggers, the IGP-flap traces' loops involve IGP
triggers.
"""

from repro.core.correlate import LoopCause, cause_summary, correlate_loops
from repro.core.report import format_table


def test_loop_cause_attribution(table1_runs, table1_results, emit,
                                benchmark):
    def attribute():
        return {
            name: correlate_loops(
                table1_results[name].loops, run.journal
            )
            for name, run in table1_runs.items()
        }

    attributions = benchmark.pedantic(attribute, rounds=3, iterations=1)

    rows = []
    for name, attribution_list in attributions.items():
        summary = cause_summary(attribution_list)
        rows.append([
            name,
            summary[LoopCause.EGP],
            summary[LoopCause.IGP],
            summary[LoopCause.MIXED],
            summary[LoopCause.UNKNOWN],
        ])
    emit("correlation", format_table(
        ["trace", "EGP", "IGP", "mixed", "unknown"],
        rows,
        title="Extension — loop cause attribution from routing data",
    ))

    for name, attribution_list in attributions.items():
        assert attribution_list, f"{name}: no loops to attribute"
        summary = cause_summary(attribution_list)
        # Every loop in the simulation stems from an injected event.
        assert summary[LoopCause.UNKNOWN] == 0, (
            f"{name}: unexplained loops"
        )

    # BGP-heavy traces: loops carry EGP involvement (EGP or MIXED).
    for name in ("backbone1", "backbone2"):
        summary = cause_summary(attributions[name])
        egp_involved = summary[LoopCause.EGP] + summary[LoopCause.MIXED]
        assert egp_involved >= summary[LoopCause.IGP], (
            f"{name}: expected BGP-flavoured attribution"
        )

    # IGP-flap traces: loops carry IGP involvement (IGP or MIXED).
    for name in ("backbone3", "backbone4"):
        summary = cause_summary(attributions[name])
        igp_involved = summary[LoopCause.IGP] + summary[LoopCause.MIXED]
        assert igp_involved >= summary[LoopCause.EGP], (
            f"{name}: expected IGP-flavoured attribution"
        )
