"""Ablation — detection thresholds (Sec. IV-A.1's choices).

Two knobs the paper fixes by argument rather than sweep:

* ``min_ttl_delta = 2`` — a loop needs two routers, so requiring a
  larger delta can only discard real streams (here: all the delta-2
  majority);
* ``max_replica_gap`` — the chaining window; loop round-trips are
  milliseconds, so anything from ~0.5 s up finds the same streams, while
  absurdly small windows break streams apart.

The sweep quantifies both, confirming the defaults sit on a plateau.
"""

from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.report import format_table


def test_min_ttl_delta_sweep(table1_results, emit, benchmark):
    def sweep():
        counts = {}
        for name, result in table1_results.items():
            counts[name] = {}
            for delta in (2, 3, 4):
                detector = LoopDetector(
                    DetectorConfig(min_ttl_delta=delta)
                )
                counts[name][delta] = detector.detect(
                    result.trace
                ).stream_count
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name] + [by_delta[d] for d in (2, 3, 4)]
            for name, by_delta in counts.items()]
    emit("ablation_min_delta", format_table(
        ["trace", "delta >= 2", "delta >= 3", "delta >= 4"],
        rows,
        title="Ablation — streams vs minimum TTL delta",
    ))

    for name, by_delta in counts.items():
        # Raising the threshold is monotone destructive.
        assert by_delta[2] >= by_delta[3] >= by_delta[4]
    # Requiring delta >= 3 wipes out the delta-2 majority everywhere
    # except the engineered-triangle trace.
    for name in ("backbone1", "backbone2", "backbone3"):
        assert counts[name][3] == 0
    assert counts["backbone4"][3] > 0  # its 3-router loops survive


def test_replica_gap_sweep(table1_results, emit, benchmark):
    def sweep():
        counts = {}
        for name, result in table1_results.items():
            counts[name] = {}
            for gap in (0.001, 0.5, 5.0, 30.0):
                detector = LoopDetector(
                    DetectorConfig(max_replica_gap=gap)
                )
                counts[name][gap] = detector.detect(
                    result.trace
                ).stream_count
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name] + [by_gap[g] for g in (0.001, 0.5, 5.0, 30.0)]
            for name, by_gap in counts.items()]
    emit("ablation_replica_gap", format_table(
        ["trace", "1 ms", "0.5 s", "5 s (default)", "30 s"],
        rows,
        title="Ablation — streams vs replica chaining gap",
    ))

    for name, by_gap in counts.items():
        # A 1 ms window is below the loop round-trip: streams shatter
        # into fragments that fail validation/size rules.
        assert by_gap[0.001] < max(by_gap[5.0], 1)
        # The plateau: 0.5 s up to 30 s finds the same streams.
        assert by_gap[0.5] == by_gap[5.0] == by_gap[30.0]
