"""Figure 4 — CDF of inter-replica spacing time.

The mean spacing within a stream is one loop round-trip.  Asserted
shape: spacings are milliseconds (the paper: ~90% under 8-10 ms on the
fast links, everything under ~220 ms), and larger TTL deltas mean
longer round-trips (more hops per cycle).
"""

from repro.core.analysis import spacing_cdf
from repro.core.report import render_cdf


def test_fig4(table1_results, emit, benchmark):
    cdfs = benchmark.pedantic(
        lambda: {
            name: spacing_cdf(result.streams)
            for name, result in table1_results.items()
        },
        rounds=3,
        iterations=1,
    )
    for name, cdf in cdfs.items():
        emit(f"fig4_{name}", render_cdf(
            cdf, f"Figure 4 — inter-replica spacing ({name})", unit=" s"
        ))

    for name, cdf in cdfs.items():
        assert not cdf.empty
        # Loop round-trips are milliseconds: everything under 250 ms,
        # nothing below twice a propagation delay.
        assert cdf.max < 0.25
        assert cdf.min > 0.0005
        # The bulk is fast: 90% under 50 ms.
        assert cdf.fraction_at_or_below(0.050) >= 0.9


def test_fig4_multihop_spacing(table1_results, benchmark):
    """The paper identifies streams with TTL deltas larger than 2 as
    having inter-replica spacings beyond the ~5 ms knee (more hops per
    cycle).  Check that every multi-hop stream clears that bound."""
    def collect():
        spacings = []
        for result in table1_results.values():
            for stream in result.streams:
                if stream.ttl_delta >= 3:
                    spacings.append(stream.mean_spacing)
        return spacings

    spacings = benchmark.pedantic(collect, rounds=3, iterations=1)
    assert spacings, "no multi-hop streams found (backbone4 should have them)"
    assert all(spacing > 0.005 for spacing in spacings)
