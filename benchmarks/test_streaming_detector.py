"""Extension — online detection equivalence and throughput.

The streaming detector must produce exactly the offline detector's
loops on the real scenario traces, at comparable linear-scan speed,
while holding only window-bounded state.
"""

import random

import pytest

from repro.core.detector import LoopDetector
from repro.core.report import format_table
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder


def _loop_key(loop):
    return (loop.prefix, round(loop.start, 6), round(loop.end, 6),
            loop.stream_count, loop.replica_count)


def test_streaming_matches_offline_on_scenarios(table1_results, emit,
                                                benchmark):
    def run_all():
        rows = []
        for name, result in table1_results.items():
            streaming = StreamingLoopDetector()
            online = streaming.process_trace(result.trace)
            rows.append((name, result.loop_count, len(online),
                         sorted(map(_loop_key, online))
                         == sorted(map(_loop_key, result.loops))))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("streaming_equivalence", format_table(
        ["trace", "offline loops", "streaming loops", "identical"],
        [list(row) for row in rows],
        title="Extension — streaming vs offline detection",
    ))
    for name, offline_count, online_count, identical in rows:
        assert identical, f"{name}: streaming diverged from offline"


@pytest.fixture(scope="module")
def big_trace():
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    prefixes = [
        IPv4Prefix((198 << 24) | (51 << 16) | (i << 8), 24)
        for i in range(40)
    ]
    builder.add_background(100_000, 0.0, 600.0, prefixes=prefixes)
    for i in range(20):
        builder.add_loop(
            10.0 + i * 25.0,
            IPv4Prefix((192 << 24) | (i << 8), 24),
            n_packets=4, replicas_per_packet=8,
            spacing=0.01, packet_gap=0.012, entry_ttl=40,
        )
    return builder.build()


def test_streaming_throughput(big_trace, benchmark):
    def run():
        streaming = StreamingLoopDetector()
        return streaming.process_trace(big_trace)

    loops = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(loops) == 20
    # Same order of magnitude as the offline linear scan.
    assert benchmark.stats.stats.mean < len(big_trace) / 25_000
