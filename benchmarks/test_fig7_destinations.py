"""Figure 7 — destination addresses of replica streams over time.

The paper's scatter shows looped destinations spread over the trace in
time and concentrated in classful class-C space.  Asserted shape: the
pooled looped destinations are majority class C; streams occur
throughout the observation window, not in one burst; multiple distinct
/24s are affected.
"""

from repro.core.analysis import (
    destination_class_fractions,
    destination_timeseries,
)
from repro.core.report import format_table, render_destination_classes


def test_fig7(table1_results, emit, benchmark):
    series = benchmark.pedantic(
        lambda: {
            name: destination_timeseries(result.streams)
            for name, result in table1_results.items()
        },
        rounds=3,
        iterations=1,
    )

    for name, points in series.items():
        rows = [[f"{t:.2f}", str(dst)] for t, dst in points[:50]]
        emit(f"fig7_{name}", format_table(
            ["time (s)", "destination"], rows,
            title=f"Figure 7 — looped destinations over time ({name})",
        ))
        emit(f"fig7_{name}_classes",
             render_destination_classes(table1_results[name]))

    # Pooled class mix of the *distinct* looped destinations: majority
    # class C, as in the paper's Figure 7.  (Counting streams instead
    # would let one long-lived loop on a popular prefix dominate.)
    pooled_prefixes = {
        stream.dst_prefix(24)
        for result in table1_results.values()
        for stream in result.streams
    }
    class_c = sum(1 for prefix in pooled_prefixes
                  if prefix.network_address.is_class_c())
    assert class_c / len(pooled_prefixes) >= 0.4

    # Several distinct destination prefixes loop per busy trace.
    for name in ("backbone1", "backbone2"):
        prefixes = {stream.dst_prefix(24)
                    for stream in table1_results[name].streams}
        assert len(prefixes) >= 2

    # Streams are spread over the trace, not a single instant.
    for name, points in series.items():
        if len(points) >= 5:
            times = [t for t, _ in points]
            assert max(times) - min(times) > 30.0
