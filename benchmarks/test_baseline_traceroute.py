"""Baseline — traceroute probing vs. passive trace analysis (Sec. III).

The paper argues end-to-end probing (Paxson-style) is a poor tool for
transient loops.  One simulated network carries both instruments: a
passive monitor feeding the replica-stream detector, and a traceroute
prober running at a realistic (minutes-scale) session interval.
Asserted shape: the passive detector finds loop episodes the sparse
prober misses entirely, and even a 100x denser prober observes no more
loop events than passive detection.
"""

import random

import pytest

from repro.baselines.traceroute import TracerouteBaseline
from repro.core.detector import LoopDetector
from repro.core.report import format_table
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.capture.monitor import LinkMonitor
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.failures import FailureSchedule
from repro.routing.forwarding import ForwardingEngine
from repro.routing.linkstate import LinkStateProtocol, LinkStateTimers
from repro.routing.topology import ring_topology
from repro.traffic.flows import PrefixPopulation
from repro.traffic.generator import WorkloadGenerator


def _run_with_probers(probe_interval: float):
    """A ring backbone with flaps, one passive monitor, one prober."""
    topo = ring_topology(6, propagation_delay=0.002)
    scheduler = EventScheduler()
    igp = LinkStateProtocol(
        topo, scheduler,
        timers=LinkStateTimers(fib_update_delay=0.5, fib_update_jitter=1.5),
        rng=random.Random(1),
    )
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
    population = PrefixPopulation(egresses=["R0", "R3"], n_prefixes=40,
                                  rng=random.Random(3))
    for prefix, egress in population.originations():
        bgp.originate(prefix, egress)
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(4),
                              icmp_time_exceeded_probability=1.0)
    targets = [prefix.random_address(random.Random(9))
               for prefix in population.prefixes[:3]
               if population.primary_egress[prefix] == "R0"] or [
        IPv4Address.parse("192.0.2.1")
    ]
    prober = TracerouteBaseline(engine, bgp, "R3", targets,
                                interval=probe_interval, max_ttl=12,
                                probe_spacing=0.02, rng=random.Random(5))
    igp.start()
    bgp.start()
    monitor = LinkMonitor(engine, "R1", "R0")
    generator = WorkloadGenerator(engine, population, rate_pps=300.0,
                                  rng=random.Random(6), n_flows=300)
    generator.run(0.0, 240.0)
    prober.run(1.0, 240.0)
    # Four failure episodes near the monitored link.
    schedule = FailureSchedule()
    for i, when in enumerate((30.0, 90.0, 150.0, 210.0)):
        schedule.flap(when, "R0--R5" if i % 2 else "R1--R2", 15.0)
    schedule.apply(topo, scheduler, igp)
    scheduler.run(until=300.0)
    trace = monitor.finalize()
    detection = LoopDetector().detect(trace)
    return detection, prober, engine


@pytest.fixture(scope="module")
def sparse():
    return _run_with_probers(probe_interval=120.0)


@pytest.fixture(scope="module")
def dense():
    return _run_with_probers(probe_interval=1.0)


def test_traceroute_baseline(sparse, dense, emit, benchmark):
    def summarize():
        rows = []
        for label, (detection, prober, engine) in (
            ("sparse traceroute (120 s)", sparse),
            ("dense traceroute (1 s)", dense),
        ):
            gt_looped = sum(1 for a in engine.audits if a.looped)
            rows.append([
                label,
                gt_looped,
                detection.stream_count,
                detection.loop_count,
                len(prober.sessions),
                len(prober.loop_observations()),
            ])
        return rows

    rows = benchmark.pedantic(summarize, rounds=3, iterations=1)
    emit("baseline_traceroute", format_table(
        ["instrument", "gt looped pkts", "passive streams",
         "passive loops", "probe sessions", "probe loop sightings"],
        [list(row) for row in rows],
        title="Baseline — passive detection vs traceroute probing",
    ))

    sparse_detection, sparse_prober, sparse_engine = sparse
    dense_detection, dense_prober, _ = dense

    # Loops genuinely happened and passive detection saw them.
    assert sum(1 for a in sparse_engine.audits if a.looped) > 0
    assert sparse_detection.loop_count > 0

    # The Paxson-style sparse prober misses what passive detection finds.
    assert len(sparse_prober.loop_observations()) < (
        sparse_detection.loop_count
    )

    # Even 120x denser probing catches at most a handful of sightings,
    # while burning orders of magnitude more probes.
    assert dense_prober.probes_sent > 50 * sparse_prober.probes_sent
    assert dense_detection.loop_count > 0
