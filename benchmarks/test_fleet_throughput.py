"""Saturation — batched streaming tier and the process-parallel fleet.

Two layers, measured separately:

* ``test_batched_streaming_speedup`` times one link's detector fed
  record-by-record vs. chunk-by-chunk (the batched tier) over the same
  trace, asserts exactness, and asserts the >= 2x single-link floor
  when the vectorized tier is available.
* ``test_fleet_scaling`` runs whole fleets — N pcap links under the
  process backend — and tabulates aggregate records/s as links (and
  worker processes) grow, against the thread backend at the same width.
  The scaling assertion only applies on a runner with at least 2 cores:
  on one core the worker processes time-slice a single CPU and spawn
  overhead dominates, which the emitted table still documents.

Both emit ``repro-bench/1`` documents (``BENCH_streaming_batched``,
``BENCH_fleet_scaling``) for the bench-provenance trajectory.
"""

import asyncio
import os
import random
import time

import pytest

from provenance import emit_bench, metric
from repro.core import vectorize
from repro.core.report import format_table
from repro.core.streaming import StreamingLoopDetector
from repro.fleet import FleetConfig, build_supervisor
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarTrace
from repro.net.pcap import write_pcap
from repro.traffic.synthetic import SyntheticTraceBuilder

ROUNDS = 3
FLEET_WIDTHS = (1, 2, 4)


def _build_trace(n_records, seed=0):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    prefixes = [
        IPv4Prefix((198 << 24) | (51 << 16) | (i << 8), 24)
        for i in range(40)
    ]
    builder.add_background(n_records, 0.0, 600.0, prefixes=prefixes)
    for i in range(20):
        builder.add_loop(
            10.0 + i * 25.0,
            IPv4Prefix((192 << 24) | (i << 8), 24),
            n_packets=4,
            replicas_per_packet=8,
            spacing=0.01,
            packet_gap=0.012,
            entry_ttl=40,
        )
    return builder.build()


@pytest.fixture(scope="module")
def big_trace():
    return _build_trace(100_000)


def _best_of(rounds, run):
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def _loop_key(loop):
    return (loop.prefix, round(loop.start, 6), round(loop.end, 6),
            loop.stream_count, loop.replica_count)


def test_batched_streaming_speedup(big_trace, emit):
    columnar = ColumnarTrace.from_trace(big_trace)
    records = [(r.timestamp, r.data) for r in big_trace.records]

    def per_record():
        detector = StreamingLoopDetector()
        loops = []
        process = detector.process
        for timestamp, data in records:
            loops.extend(process(timestamp, data))
        loops.extend(detector.flush())
        return detector, loops

    def batched():
        detector = StreamingLoopDetector()
        loops = []
        for chunk in columnar.chunks:
            loops.extend(detector.process_chunk(chunk))
        loops.extend(detector.flush())
        return detector, loops

    ref_seconds, (ref, ref_loops) = _best_of(ROUNDS, per_record)
    fast_seconds, (fast, fast_loops) = _best_of(ROUNDS, batched)

    # Exactness first: a fast wrong answer is worthless.
    assert list(map(_loop_key, fast_loops)) \
        == list(map(_loop_key, ref_loops))
    assert len(fast_loops) == 20
    assert fast.stats.records == ref.stats.records == len(big_trace)

    ref_rate = len(big_trace) / ref_seconds
    fast_rate = len(big_trace) / fast_seconds
    speedup = ref_seconds / fast_seconds
    emit("streaming_batched", format_table(
        ["Feed", "Seconds", "Records/s", "Speedup"],
        [
            ["per-record process()", f"{ref_seconds:.3f}",
             f"{ref_rate:,.0f}", "1.00"],
            ["batched process_chunk()", f"{fast_seconds:.3f}",
             f"{fast_rate:,.0f}", f"{speedup:.2f}"],
        ],
        title=(f"Streaming batched tier — {len(big_trace)} records, "
               f"numpy={'yes' if vectorize.HAVE_NUMPY else 'no'}"),
    ))
    emit_bench("streaming_batched", {
        "per_record_records_per_s": metric(ref_rate, "records/s"),
        "batched_records_per_s": metric(fast_rate, "records/s"),
        "batched_speedup": metric(speedup, "x"),
    })

    if vectorize.HAVE_NUMPY:
        # The PR's single-link acceptance floor.
        assert speedup >= 2.0, (
            f"batched tier below the 2x floor: {speedup:.2f}x"
        )


@pytest.fixture(scope="module")
def fleet_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-bench") / "link.pcap"
    trace = _build_trace(50_000, seed=1)
    write_pcap(trace, path)
    return path, len(trace)


def _fleet_config(path, n_links, backend):
    return FleetConfig.from_dict({
        "fleet": {"backend": backend, "workers": n_links},
        "links": [
            {"id": f"l{i}", "source": {"kind": "pcap", "path": str(path)}}
            for i in range(n_links)
        ],
    })


def _run_fleet(path, n_records, n_links, backend):
    supervisor = build_supervisor(_fleet_config(path, n_links, backend))
    started = time.perf_counter()
    asyncio.run(supervisor.run())
    seconds = time.perf_counter() - started
    snapshot = supervisor.snapshot()
    assert snapshot["states"] == {"stopped": n_links}
    for row in snapshot["links"]:
        assert row["records"] == n_records
        assert row["loops"] == 20
    return n_links * n_records / seconds


def test_fleet_scaling(fleet_pcap, emit):
    path, n_records = fleet_pcap
    cores = os.cpu_count() or 1
    rows = []
    rates = {}
    for n_links in FLEET_WIDTHS:
        for backend in ("thread", "process"):
            rate = _run_fleet(path, n_records, n_links, backend)
            rates[(backend, n_links)] = rate
            rows.append([
                backend, n_links,
                n_links if backend == "process" else 1,
                f"{n_links * n_records:,}", f"{rate:,.0f}",
            ])

    emit("fleet_scaling", format_table(
        ["Backend", "Links", "Processes", "Records", "Aggregate rec/s"],
        rows,
        title=(f"Fleet scaling — {n_records} records/link, "
               f"{cores} core(s) available"),
    ))
    emit_bench("fleet_scaling", {
        "thread_1_link_records_per_s":
            metric(rates[("thread", 1)], "records/s"),
        "process_1_link_records_per_s":
            metric(rates[("process", 1)], "records/s"),
        "process_2_links_records_per_s":
            metric(rates[("process", 2)], "records/s"),
        "process_4_links_records_per_s":
            metric(rates[("process", 4)], "records/s"),
        "process_scaling_4_over_1":
            metric(rates[("process", 4)] / rates[("process", 1)], "x"),
    })

    if cores >= 2:
        # Aggregate throughput must actually grow when links get their
        # own processes — the whole point of the process backend.
        assert rates[("process", 2)] >= 1.3 * rates[("process", 1)], (
            "process backend did not scale from 1 to 2 links on "
            f"{cores} cores: {rates[('process', 2)]:,.0f} vs "
            f"{rates[('process', 1)]:,.0f} rec/s"
        )
