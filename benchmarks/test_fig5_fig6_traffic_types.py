"""Figures 5 and 6 — traffic-type distribution of all vs. looped traffic.

Figure 5: composition of everything on the link (TCP > 80%, UDP ~5-15%,
small ICMP/MCAST/OTHER shares, SYN/FIN around or under a percent).
Figure 6: composition of the looped packets.  Asserted shape: the
paper's key contrasts — SYN packets and ICMP packets are
over-represented among looped traffic relative to the link as a whole
(broken handshakes keep retrying into the loop; hosts ping when they
see loss; routers emit time-exceeded messages).
"""

from repro.core.analysis import (
    looped_traffic_type_distribution,
    traffic_type_distribution,
    traffic_type_fractions,
)
from repro.core.report import render_traffic_types


def test_fig5_all_traffic(table1_results, emit, benchmark):
    distributions = benchmark.pedantic(
        lambda: {
            name: traffic_type_distribution(result.trace)
            for name, result in table1_results.items()
        },
        rounds=1,
        iterations=1,
    )
    for name, distribution in distributions.items():
        emit(f"fig5_{name}", render_traffic_types(
            distribution, f"Figure 5 — traffic types, all traffic ({name})"
        ))
        fractions = traffic_type_fractions(distribution)
        assert fractions["TCP"] > 0.75
        assert 0.05 <= fractions["UDP"] <= 0.20
        assert fractions["SYN"] < 0.06
        assert fractions["FIN"] < 0.02
        assert 0 < fractions["ICMP"] < 0.10
        assert 0 < fractions["MCAST"] < 0.06
        assert 0 < fractions["OTHER"] < 0.05
        # ACK rides on almost every TCP segment.
        assert fractions["ACK"] > 0.6


def test_fig6_looped_traffic(table1_results, emit, benchmark):
    def compute():
        output = {}
        for name, result in table1_results.items():
            output[name] = (
                traffic_type_fractions(
                    traffic_type_distribution(result.trace)
                ),
                traffic_type_fractions(
                    looped_traffic_type_distribution(result.streams)
                ),
            )
        return output

    fractions = benchmark.pedantic(compute, rounds=1, iterations=1)
    for name, result in table1_results.items():
        emit(f"fig6_{name}", render_traffic_types(
            looped_traffic_type_distribution(result.streams),
            f"Figure 6 — traffic types, looped traffic ({name})",
        ))

    # TCP still dominates looped traffic (most packets are TCP).
    for name, (all_fractions, looped_fractions) in fractions.items():
        assert looped_fractions["TCP"] > 0.5

    # The paper's over-representation claims, on the traces with enough
    # looped packets to measure them (the BGP-heavy, stream-rich pair):
    for name in ("backbone1", "backbone2"):
        all_fractions, looped_fractions = fractions[name]
        assert looped_fractions["SYN"] > all_fractions["SYN"], (
            f"{name}: looped SYN share not elevated"
        )
        assert looped_fractions["ICMP"] > all_fractions["ICMP"], (
            f"{name}: looped ICMP share not elevated"
        )
