"""Figure 2 — TTL delta distribution.

Regenerates the per-trace distribution of replica-stream TTL deltas (the
number of routers in the loop).  Asserted shape: a TTL delta of 2
dominates on Backbones 1–3 (adjacent-router loops, the paper's
explanation of update propagation boundaries); Backbone 4 shows the
paper's anomalous mix with a large share of delta-3 streams.
"""

from repro.core.analysis import ttl_delta_distribution
from repro.core.report import render_distribution


def test_fig2(table1_results, emit, benchmark):
    distributions = benchmark.pedantic(
        lambda: {
            name: ttl_delta_distribution(result.streams)
            for name, result in table1_results.items()
        },
        rounds=3,
        iterations=1,
    )
    for name, distribution in distributions.items():
        emit(f"fig2_{name}", render_distribution(
            distribution, f"Figure 2 — TTL delta distribution ({name})"
        ))

    # Deltas are loop sizes: always >= 2, never absurd.
    for name, distribution in distributions.items():
        assert distribution.total > 0
        for delta in distribution.counts:
            assert 2 <= delta <= 12

    # Backbones 1-3: delta 2 is the mode and the large majority.
    for name in ("backbone1", "backbone2", "backbone3"):
        distribution = distributions[name]
        assert distribution.mode() == 2
        assert distribution.fraction(2) >= 0.8

    # Backbone 4: a substantial mix of deltas 2 and 3 (the paper's
    # 55%/35%); both present, together nearly everything.
    b4 = distributions["backbone4"]
    assert b4.fraction(2) >= 0.2
    assert b4.fraction(3) >= 0.2
    assert b4.fraction(2) + b4.fraction(3) >= 0.9
