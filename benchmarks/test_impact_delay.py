"""Section VI (delay) — extra delay of packets escaping a loop.

The paper: between 1% and 10% of looping packets escape their loop and
incur 25–300 ms of extra delay, comparable to a full end-to-end
Internet path.  Asserted shape: a minority of looping packets escape;
their mean extra delay is tens to hundreds of milliseconds and dwarfs
the normal transit time.  Both the trace-level estimate
(:func:`escape_analysis`) and the simulator ground truth are checked.
"""

from repro.core.impact import delay_impact_from_engine, escape_analysis
from repro.core.report import format_table


def test_delay_impact_ground_truth(table1_runs, emit, benchmark):
    impacts = benchmark.pedantic(
        lambda: {
            name: delay_impact_from_engine(run.engine)
            for name, run in table1_runs.items()
        },
        rounds=3,
        iterations=1,
    )

    rows = [
        [name,
         impact.escaped_count,
         f"{impact.mean_normal_delay * 1000:.2f} ms",
         f"{impact.mean_extra_delay * 1000:.2f} ms"]
        for name, impact in impacts.items()
    ]
    emit("impact_delay", format_table(
        ["trace", "escaped packets", "normal delay", "mean extra delay"],
        rows,
        title="Section VI — delay impact on packets escaping loops",
    ))

    escaped_total = sum(i.escaped_count for i in impacts.values())
    assert escaped_total > 0
    for name, impact in impacts.items():
        if impact.escaped_count == 0:
            continue
        # Extra delay in the paper's 25-300 ms magnitude range (we allow
        # up to 2 s for the slowest BGP loops) and far above the normal
        # transit time.
        assert 0.010 < impact.mean_extra_delay < 2.0
        assert impact.mean_extra_delay > 3 * impact.mean_normal_delay


def test_delay_impact_from_trace(table1_results, emit, benchmark):
    analyses = benchmark.pedantic(
        lambda: {
            name: escape_analysis(result.streams)
            for name, result in table1_results.items()
        },
        rounds=3,
        iterations=1,
    )

    rows = [
        [name, analysis.total_streams, analysis.escaped,
         f"{analysis.escape_fraction:.3f}",
         (f"{analysis.extra_delay_cdf.median * 1000:.1f} ms"
          if not analysis.extra_delay_cdf.empty else "-")]
        for name, analysis in analyses.items()
    ]
    emit("impact_escape", format_table(
        ["trace", "streams", "escaped", "escape fraction",
         "median extra delay"],
        rows,
        title="Section VI — escape analysis from the traces alone",
    ))

    for name, analysis in analyses.items():
        assert analysis.escaped + analysis.expired == analysis.total_streams
        assert 0.0 <= analysis.escape_fraction <= 1.0

    # On the long-loop (BGP) traces most looping packets die in the
    # loop: the escape fraction is a small minority (paper: 1-10%).
    for name in ("backbone1", "backbone2"):
        assert analyses[name].escape_fraction <= 0.25

    # Escaped packets' extra delay is in the tens-to-hundreds of ms.
    for analysis in analyses.values():
        if not analysis.extra_delay_cdf.empty:
            assert analysis.extra_delay_cdf.median > 0.010
