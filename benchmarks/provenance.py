"""Benchmark provenance: machine-readable ``BENCH_<name>.json`` runs.

Benchmarks that matter over time (throughput, overhead) call
:func:`emit_bench` alongside their human-readable ``emit`` output.  Each
call writes one ``repro-bench/1`` document (see
:mod:`repro.obs.perf`) under ``benchmarks/output/`` — metric values,
an optional per-stage timing breakdown, and the environment fingerprint
(python, numpy, CPU count, git sha) that makes a number comparable to
another run.  CI uploads the documents as artifacts and diffs them
against the committed baselines in ``benchmarks/baselines/`` with::

    repro-loops perf compare benchmarks/baselines/BENCH_x.json \
        benchmarks/output/BENCH_x.json

Exit 1 (regression beyond threshold) warns; exit 2 (schema mismatch)
fails the job.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.perf import bench_document, write_bench

OUTPUT_DIR = Path(__file__).parent / "output"


def metric(value: float, unit: str,
           higher_is_better: bool = True) -> dict[str, Any]:
    """One ``metrics`` entry for :func:`emit_bench`."""
    return {"value": float(value), "unit": unit,
            "higher_is_better": higher_is_better}


def emit_bench(name: str, metrics: dict[str, dict[str, Any]],
               stages: dict[str, float] | None = None) -> Path:
    """Write ``benchmarks/output/BENCH_<name>.json`` and return its path."""
    doc = bench_document(name, metrics, stages=stages)
    return write_bench(OUTPUT_DIR / f"BENCH_{name}.json", doc)
