"""Figure 9 — CDF of routing-loop duration (after merging).

Asserted shape: the paper's trace contrast — on the IGP-flap traces
(Backbones 3 and 4) at least 90% of loops resolve within ten seconds
(link-state convergence of seconds), while the BGP-event traces
(Backbones 1 and 2) show a substantial share of longer loops (delayed
BGP convergence).
"""

from repro.core.analysis import loop_duration_cdf
from repro.core.report import render_cdf


def test_fig9(table1_results, emit, benchmark):
    cdfs = benchmark.pedantic(
        lambda: {
            name: loop_duration_cdf(result.loops)
            for name, result in table1_results.items()
        },
        rounds=3,
        iterations=1,
    )
    for name, cdf in cdfs.items():
        emit(f"fig9_{name}", render_cdf(
            cdf, f"Figure 9 — routing loop duration ({name})", unit=" s"
        ))

    for name, cdf in cdfs.items():
        assert not cdf.empty

    # IGP-flavoured traces: short loops (>= 90% under 10 s).
    for name in ("backbone3", "backbone4"):
        assert cdfs[name].fraction_at_or_below(10.0) >= 0.9, (
            f"{name}: IGP loops should resolve within seconds"
        )

    # BGP-flavoured traces: a meaningful share of loops beyond 10 s.
    long_shares = {
        name: 1.0 - cdfs[name].fraction_at_or_below(10.0)
        for name in ("backbone1", "backbone2")
    }
    assert any(share >= 0.2 for share in long_shares.values()), (
        f"no long BGP loops: {long_shares}"
    )

    # The BGP traces' maxima exceed the IGP traces' maxima.
    bgp_max = max(cdfs["backbone1"].max, cdfs["backbone2"].max)
    igp_max = max(cdfs["backbone3"].max, cdfs["backbone4"].max)
    assert bgp_max > igp_max
