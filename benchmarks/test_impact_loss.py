"""Section VI (loss) — loops' contribution to packet loss.

The paper: "losses due to routing loops remain very small, but for
brief moments loops can cause the loss rate to increase significantly",
quantified as loops contributing a visible share of per-minute loss.
Asserted shape: overall loop-caused loss is a small fraction of
traffic, but its share of some single minute's loss is far above its
overall share.
"""

from repro.core.impact import loss_impact_from_engine
from repro.core.report import format_table


def test_loss_impact(table1_runs, emit, benchmark):
    impacts = benchmark.pedantic(
        lambda: {
            name: loss_impact_from_engine(run.engine)
            for name, run in table1_runs.items()
        },
        rounds=3,
        iterations=1,
    )

    rows = []
    for name, impact in impacts.items():
        rows.append([
            name,
            f"{impact.overall_loss_fraction:.5f}",
            f"{impact.overall_loop_loss_fraction:.5f}",
            f"{impact.peak_loop_share_of_loss:.3f}",
            f"{impact.peak_loop_loss_rate:.5f}",
        ])
    emit("impact_loss", format_table(
        ["trace", "loss frac", "loop loss frac", "peak loop share/min",
         "peak loop loss rate/min"],
        rows,
        title="Section VI — loss impact of routing loops",
    ))

    for name, impact in impacts.items():
        # Loop loss is very small overall (paper: "remain very small").
        assert impact.overall_loop_loss_fraction < 0.01
        assert impact.overall_loop_loss_fraction <= (
            impact.overall_loss_fraction
        )
        # But loops do cause loss on every trace.
        assert impact.loop_loss_by_minute.total > 0

    # In the worst minute, loops account for a significant share of the
    # loss — far above their overall share (the paper's "up to 9% of
    # packet loss per minute" spike phenomenon).
    peak_shares = [impact.peak_loop_share_of_loss
                   for impact in impacts.values()]
    assert max(peak_shares) >= 0.09
