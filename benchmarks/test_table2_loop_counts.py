"""Table II — number of replica streams vs. merged routing loops.

Asserted shape: merging is effective — many replica streams collapse
into comparatively few routing loops on every trace (the paper's
streams/loops ratios range from a few to tens).
"""

from repro.core.report import render_table2


def test_table2(table1_results, emit, benchmark):
    text = benchmark.pedantic(
        lambda: render_table2(table1_results), rounds=3, iterations=1
    )
    emit("table2", text)

    for name, result in table1_results.items():
        streams = result.stream_count
        loops = result.loop_count
        assert streams > 0, f"{name}: no streams"
        assert loops > 0, f"{name}: no loops"
        # Merging never invents loops.
        assert loops <= streams

    # On the stream-rich traces, merging collapses many streams per loop.
    for name in ("backbone1", "backbone2"):
        result = table1_results[name]
        assert result.stream_count / result.loop_count >= 3.0, (
            f"{name}: merging should collapse streams substantially"
        )


def test_table2_loops_cover_all_validated_streams(table1_results,
                                                  benchmark):
    """Partition invariant: every validated stream lands in exactly one
    merged loop."""
    def check():
        for result in table1_results.values():
            in_loops = sum(loop.stream_count for loop in result.loops)
            assert in_loops == result.stream_count
        return True

    assert benchmark.pedantic(check, rounds=3, iterations=1)
