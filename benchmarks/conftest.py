"""Shared fixtures for the benchmark harness.

The four Table I scenario runs are simulated once per session; each bench
module computes (and times) its figure's statistic from the shared runs,
prints the series the paper's figure plots, asserts the paper's
qualitative shape, and writes the rendered output to
``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.detector import DetectionResult, LoopDetector
from repro.sim import TABLE1_SCENARIOS, table1_scenario

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def table1_runs():
    """All four Table I scenario runs (simulated once)."""
    return {
        name: table1_scenario(name).run()
        for name in TABLE1_SCENARIOS
    }


@pytest.fixture(scope="session")
def table1_results(table1_runs) -> dict[str, DetectionResult]:
    """Detection results for the four runs."""
    detector = LoopDetector()
    return {
        name: detector.detect(run.trace)
        for name, run in table1_runs.items()
    }


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table/figure and persist it under output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
