"""Forwarding-engine throughput — cached fast path vs. reference path.

The route cache exists so the simulator can push enough packets through a
backbone-scale topology to reproduce the paper's trace volumes in
reasonable wall time.  This benchmark measures exactly the claim the
cache makes: on a converged steady-state scenario the epoch-versioned
fast path forwards >= 3x the packets per second of the reference engine
(``route_cache=False``, the seed implementation preserved verbatim)
while producing byte-identical monitor output.

Two modes:

* ``test_cached_matches_reference_smoke`` — quick CI guard (runs in the
  default selection).  A small scenario, injected *during* convergence so
  epoch invalidations actually fire, asserting the cached and uncached
  engines emit byte-identical traces and identical packet fates.
* ``test_throughput_speedup`` — the full measurement, marked ``slow``.
  24-PoP ring, 40k packets over 600 flows into a 300-prefix RIB, best of
  three runs per engine; emits the before/after table to
  ``benchmarks/output/sim_throughput.txt``.

Run the full measurement with::

    PYTHONPATH=src python -m pytest benchmarks/test_sim_throughput.py -m slow -s

and the CI smoke with ``-m "not slow"``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.capture.monitor import LinkMonitor
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.forwarding import ForwardingEngine, PacketFate
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import ring_topology


class _Injector:
    """Self-scheduling packet source.

    Scheduling each injection from the previous one keeps the event heap
    small (a pre-scheduled batch of 40k events would tax both engines
    with an O(log n) heap factor that has nothing to do with forwarding).
    """

    def __init__(self, engine, packets, ingress, start, interval):
        self.engine = engine
        self.packets = packets
        self.ingress = ingress
        self.interval = interval
        self.i = 0
        engine.scheduler.call_at(start, self)

    def __call__(self):
        self.engine.inject(self.packets[self.i], self.ingress)
        self.i += 1
        if self.i < len(self.packets):
            self.engine.scheduler.call(self.interval, self)


def _build(route_cache, *, n_pops, n_prefixes, n_flows, n_packets,
           converge_until, inject_start, duration, churn=False):
    """One scenario instance; identical seeds for both engine flavours."""
    rng = random.Random(7)
    topology = ring_topology(n_pops)
    routers = topology.routers
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topology, scheduler, rng=random.Random(2))
    bgp = BgpProcess(topology, scheduler, igp, rng=random.Random(3))

    # All prefixes egress at the ring's far side: every packet crosses
    # n_pops/2 - 1 hops, so per-hop work dominates the measurement.
    egress = routers[n_pops // 2 - 1]
    prefixes = []
    for i in range(n_prefixes):
        length = 8 + (i % 17)  # deep RIB: 17 distinct lengths, /8../24
        base = ((i * 2654435761) & 0x7FFFFFFF) | 0x40000000
        p = IPv4Prefix(base & (((1 << length) - 1) << (32 - length)), length)
        prefixes.append(p)
        bgp.originate(p, egress)

    igp.start()
    bgp.start()
    if converge_until:
        scheduler.run(until=converge_until)

    engine = ForwardingEngine(topology, scheduler, igp, bgp,
                              rng=random.Random(4), keep_audits=False,
                              route_cache=route_cache)
    monitor = LinkMonitor(engine, routers[1], routers[2])

    flow_packets = []
    for _ in range(n_flows):
        idx = rng.randrange(n_prefixes)
        if rng.random() < 0.5:
            # Traffic concentrates on popular short prefixes (each block
            # of 17 consecutive prefixes starts with its /8).
            idx -= idx % 17
        p = prefixes[idx]
        host = rng.getrandbits(32 - p.length) if p.length < 32 else 0
        dst = IPv4Address((p.network | host) & 0xFFFFFFFF)
        src = IPv4Address(0x0A000000 | rng.getrandbits(16))
        ip = IPv4Header(src=src, dst=dst, ttl=64, protocol=17)
        flow_packets.append(Packet.build(
            ip, UdpHeader(src_port=rng.randrange(1024, 65535), dst_port=53),
            payload=b"x" * 32))
    # Flows reuse one Packet object each, as a real replayed trace would.
    packets = [flow_packets[i % n_flows] for i in range(n_packets)]
    _Injector(engine, packets, routers[0], inject_start,
              duration / n_packets)

    if churn:
        # Fail a mid-path link with traffic in flight, then restore it:
        # every affected router recomputes its FIB, so cached routes must
        # be invalidated by epoch comparison (twice) to stay correct.
        link = topology.link_between(routers[2], routers[3])

        def _down():
            link.up = False
            igp.notify_link_down(link)

        def _up():
            link.up = True
            igp.notify_link_up(link)

        scheduler.call_at(inject_start + duration / 3, _down)
        scheduler.call_at(inject_start + 2 * duration / 3, _up)
    return scheduler, engine, monitor


def _trace_bytes(monitor):
    return [(round(rec.timestamp, 12), rec.data)
            for rec in monitor.trace.records]


def test_cached_matches_reference_smoke():
    """CI guard: cached and uncached engines are indistinguishable.

    Injection starts while the IGP/BGP are still converging, and a
    mid-path link fails and recovers with traffic in flight, so the run
    crosses live FIB churn — cache entries must be invalidated by epoch
    comparison, not merely never populated.  Any byte of divergence in
    the monitor trace, or any packet meeting a different fate, fails.
    """
    config = dict(n_pops=8, n_prefixes=68, n_flows=80, n_packets=1500,
                  converge_until=0.0, inject_start=0.5, duration=60.0,
                  churn=True)
    outputs = {}
    for cached in (True, False):
        scheduler, engine, monitor = _build(cached, **config)
        scheduler.run_all()
        monitor.finalize()
        outputs[cached] = (
            _trace_bytes(monitor),
            dict(engine.fate_counts),
            dict(engine.transmissions_by_minute),
        )
        if cached:
            stats = engine.route_cache_stats()
            assert stats["invalidations"] > 0, (
                "smoke scenario never exercised epoch invalidation")
            assert stats["hits"] > stats["misses"]
    assert outputs[True][0] == outputs[False][0], "trace bytes diverged"
    assert outputs[True][1] == outputs[False][1], "packet fates diverged"
    assert outputs[True][2] == outputs[False][2], "telemetry diverged"
    assert outputs[True][1][PacketFate.DELIVERED] > 0


@pytest.mark.slow
def test_throughput_speedup(emit):
    """Full measurement: >= 3x packets/s on converged steady state."""
    config = dict(n_pops=24, n_prefixes=300, n_flows=600, n_packets=40_000,
                  converge_until=60.0, inject_start=60.0, duration=100.0)
    rows = {}
    for cached in (True, False):
        times = []
        for _ in range(3):
            scheduler, engine, monitor = _build(cached, **config)
            t0 = time.perf_counter()
            scheduler.run_all()
            times.append(time.perf_counter() - t0)
        monitor.finalize()
        rows[cached] = {
            "wall": min(times),
            "times": times,
            "pps": engine.packets_injected / min(times),
            "stats": engine.route_cache_stats(),
            "trace": _trace_bytes(monitor),
            "fates": dict(engine.fate_counts),
        }

    ref, fast = rows[False], rows[True]
    speedup = fast["pps"] / ref["pps"]
    identical = fast["trace"] == ref["trace"] and fast["fates"] == ref["fates"]
    stats = fast["stats"]

    lines = [
        "Forwarding engine throughput — epoch-versioned route cache",
        "24-PoP ring, converged steady state, 11-hop path",
        "40,000 packets / 600 flows / 300-prefix RIB (/8../24)",
        "best of 3 runs per engine",
        "",
        f"{'engine':<28}{'wall':>8}{'packets/s':>12}",
        f"{'reference (route_cache=off)':<28}{ref['wall']:>7.2f}s"
        f"{ref['pps']:>12,.0f}",
        f"{'cached fast path':<28}{fast['wall']:>7.2f}s"
        f"{fast['pps']:>12,.0f}",
        "",
        f"speedup: {speedup:.2f}x packets/s",
        f"cache: {stats['hits']:,.0f} hits / {stats['misses']:,.0f} misses"
        f" / {stats['invalidations']:,.0f} invalidations"
        f" (hit rate {stats['hit_rate']:.1%})",
        f"monitor traces byte-identical: {'yes' if identical else 'NO'}",
    ]
    emit("sim_throughput", "\n".join(lines))

    assert identical, "cached and reference outputs diverged"
    assert stats["hit_rate"] > 0.97
    assert speedup >= 3.0, f"speedup {speedup:.2f}x below the 3x target"
