"""Figure 3 — CDF of the number of replicas in a replica stream.

Asserted shape: sizes are bounded by initial-TTL / TTL-delta; the CDF
shows concentrated jumps where the popular initial TTLs (64, 128, minus
upstream hops) run out against the dominant delta — the paper's jumps at
~31 and ~63 replicas.
"""

from repro.core.analysis import stream_size_cdf
from repro.core.report import render_cdf


def test_fig3(table1_results, emit, benchmark):
    cdfs = benchmark.pedantic(
        lambda: {
            name: stream_size_cdf(result.streams)
            for name, result in table1_results.items()
        },
        rounds=3,
        iterations=1,
    )
    for name, cdf in cdfs.items():
        emit(f"fig3_{name}", render_cdf(
            cdf, f"Figure 3 — replicas per stream ({name})"
        ))

    for name, cdf in cdfs.items():
        assert not cdf.empty
        # Validated streams have >= 3 replicas; a TTL <= 255 with
        # delta >= 2 bounds the stream at ~128 replicas.
        assert cdf.min >= 3
        assert cdf.max <= 130

    # The TTL-runout clusters: a large share of streams exhaust a
    # 64-base TTL against delta 2 (sizes ~20-32) or a 128-base TTL
    # (sizes ~50-64), as in the paper's step pattern.
    pooled = [size for cdf in cdfs.values() for size in cdf.values]
    in_64_cluster = sum(1 for s in pooled if 18 <= s <= 34)
    in_128_cluster = sum(1 for s in pooled if 48 <= s <= 66)
    assert (in_64_cluster + in_128_cluster) / len(pooled) >= 0.3
    assert in_64_cluster > 0
    assert in_128_cluster > 0

    # At least one trace shows a visible step (a single size holding
    # >= 8% of its streams).
    assert any(cdf.step_sizes(threshold=0.08) for cdf in cdfs.values())


def test_fig3_jump_mechanism(table1_results, benchmark):
    """The paper's explanation of the jumps, verified per stream: a
    stream's size never exceeds what its entry TTL and loop size allow,
    and full-runout streams (packet expired in the loop) hit that bound
    exactly."""
    from repro.core.analysis import predicted_stream_size_steps

    def check():
        checked = exact = 0
        for result in table1_results.values():
            for stream in result.streams:
                bound = (stream.first_ttl - 1) // stream.ttl_delta + 1
                assert stream.size <= bound
                checked += 1
                if stream.last_ttl <= stream.ttl_delta:
                    assert stream.size == bound
                    exact += 1
        return checked, exact

    checked, exact = benchmark.pedantic(check, rounds=3, iterations=1)
    assert checked > 0
    assert exact > 0  # plenty of packets die in the loop
