"""Throughput — detection pipeline performance on large traces.

Not a paper artifact, but the property that made the paper's offline
analysis feasible on multi-hour OC-12 traces: detection is a linear
scan.  Benchmarks each pipeline stage on a 100k-record synthetic trace.
"""

import random

import pytest

from repro.core.detector import LoopDetector
from repro.core.replica import detect_replicas
from repro.core.streams import PrefixIndex, validate_streams
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def big_trace():
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    prefixes = [
        IPv4Prefix((198 << 24) | (51 << 16) | (i << 8), 24)
        for i in range(40)
    ]
    builder.add_background(100_000, 0.0, 600.0, prefixes=prefixes)
    for i in range(20):
        builder.add_loop(
            10.0 + i * 25.0,
            IPv4Prefix((192 << 24) | (i << 8), 24),
            n_packets=4,
            replicas_per_packet=8,
            spacing=0.01,
            packet_gap=0.012,
            entry_ttl=40,
        )
    return builder.build()


def test_replica_detection_throughput(big_trace, benchmark):
    streams = benchmark.pedantic(
        lambda: detect_replicas(big_trace), rounds=3, iterations=1
    )
    assert len(streams) == 80


def test_validation_throughput(big_trace, benchmark):
    candidates = detect_replicas(big_trace)
    index = PrefixIndex(big_trace, 24)

    result = benchmark.pedantic(
        lambda: validate_streams(candidates, big_trace,
                                 prefix_index=index),
        rounds=3,
        iterations=1,
    )
    assert len(result.valid) == 80


def test_full_pipeline_throughput(big_trace, benchmark):
    result = benchmark.pedantic(
        lambda: LoopDetector().detect(big_trace), rounds=3, iterations=1
    )
    assert result.stream_count == 80
    assert result.loop_count == 20
    # Linear-scan economics: comfortably above 50k records/second even
    # in pure Python.
    assert benchmark.stats.stats.mean < len(big_trace) / 50_000
