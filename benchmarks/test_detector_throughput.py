"""Throughput — detection pipeline performance on large traces.

Not a paper artifact, but the property that made the paper's offline
analysis feasible on multi-hour OC-12 traces: detection is a linear
scan.  Benchmarks each pipeline stage on a 100k-record synthetic trace.
"""

import gc
import random
import time

import pytest

from provenance import emit_bench, metric
from repro.core.detector import LoopDetector
from repro.core.replica import (
    detect_replicas,
    detect_replicas_columnar,
    detect_replicas_vectorized,
)
from repro.core.report import format_table
from repro.core.streams import PrefixIndex, validate_streams
from repro.net.addr import IPv4Prefix
from repro.net.pcap import read_pcap, read_pcap_columnar, write_pcap
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import PipelineProfile
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def big_trace():
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    prefixes = [
        IPv4Prefix((198 << 24) | (51 << 16) | (i << 8), 24)
        for i in range(40)
    ]
    builder.add_background(100_000, 0.0, 600.0, prefixes=prefixes)
    for i in range(20):
        builder.add_loop(
            10.0 + i * 25.0,
            IPv4Prefix((192 << 24) | (i << 8), 24),
            n_packets=4,
            replicas_per_packet=8,
            spacing=0.01,
            packet_gap=0.012,
            entry_ttl=40,
        )
    return builder.build()


def test_replica_detection_throughput(big_trace, benchmark):
    streams = benchmark.pedantic(
        lambda: detect_replicas(big_trace), rounds=3, iterations=1
    )
    assert len(streams) == 80


def test_validation_throughput(big_trace, benchmark):
    candidates = detect_replicas(big_trace)
    index = PrefixIndex(big_trace, 24)

    result = benchmark.pedantic(
        lambda: validate_streams(candidates, big_trace,
                                 prefix_index=index),
        rounds=3,
        iterations=1,
    )
    assert len(result.valid) == 80


def _best_many(rounds, runners):
    """Best-of-N for several contenders with interleaved rounds.

    Alternating contenders within each round keeps the ratios honest
    when the machine's speed drifts between blocks (shared runners,
    thermal throttling) — every side samples the same conditions."""
    bests = [float("inf")] * len(runners)
    results = [None] * len(runners)
    for _ in range(rounds):
        for i, run in enumerate(runners):
            started = time.perf_counter()
            results[i] = run()
            bests[i] = min(bests[i], time.perf_counter() - started)
    return bests, results


def _stream_fp(stream):
    return (
        stream.key,
        stream.first_data,
        tuple((r.index, r.timestamp, r.ttl) for r in stream.replicas),
    )


def test_columnar_step1_throughput(big_trace, tmp_path_factory, emit):
    """The three step-1 kernel tiers vs the reference path.

    Measures the three legs of step 1 on the same on-disk pcap: ingest
    (pcap to records in memory), the detection kernel over pre-ingested
    records — at the pure-python columnar tier AND the numpy vectorized
    tier — and the end-to-end step-1 path (pcap to candidate streams).
    Exactness is asserted before any timing matters."""
    path = tmp_path_factory.mktemp("columnar_bench") / "big.pcap"
    write_pcap(big_trace, path)
    rounds = 5
    n = len(big_trace)

    (ingest_ref, ingest_col), (trace, ctrace) = _best_many(
        rounds, [lambda: read_pcap(path), lambda: read_pcap_columnar(path)]
    )

    ((kernel_ref, kernel_col, kernel_vec),
     (reference, columnar, vectorized)) = _best_many(rounds, [
        lambda: detect_replicas(trace),
        lambda: detect_replicas_columnar(ctrace.chunks),
        lambda: detect_replicas_vectorized(ctrace.chunks),
    ])

    # A fast wrong answer is worthless: byte-identical streams first.
    fps = [_stream_fp(s) for s in reference]
    assert [_stream_fp(s) for s in columnar] == fps
    assert [_stream_fp(s) for s in vectorized] == fps
    assert len(reference) == 80

    (step1_ref, step1_col, step1_vec), _ = _best_many(rounds, [
        lambda: detect_replicas(read_pcap(path)),
        lambda: detect_replicas_columnar(read_pcap_columnar(path).chunks),
        lambda: detect_replicas_vectorized(read_pcap_columnar(path).chunks),
    ])

    rows = []
    speedups = {}
    for label, ref_s, tier_s in (
        ("ingest (pcap -> records)", ingest_ref, ingest_col),
        ("step-1 kernel, columnar tier", kernel_ref, kernel_col),
        ("step-1 kernel, vectorized tier", kernel_ref, kernel_vec),
        ("step 1 (pcap -> streams), columnar", step1_ref, step1_col),
        ("step 1 (pcap -> streams), vectorized", step1_ref, step1_vec),
    ):
        speedups[label] = ref_s / tier_s
        rows.append([
            label, f"{ref_s:.3f}", f"{tier_s:.3f}",
            f"{n / tier_s:,.0f}", f"{speedups[label]:.2f}",
        ])
    table = format_table(
        ["Stage", "Reference s", "Tier s", "Tier rec/s", "Speedup"],
        rows,
        title=(f"Columnar step 1 — {n} records, 40-byte captures, "
               f"best of {rounds}"),
    )
    emit("columnar_step1", table)

    # PR 5's acceptance bars, still enforced on the columnar tier.
    assert speedups["ingest (pcap -> records)"] >= 2.0
    assert speedups["step 1 (pcap -> streams), columnar"] >= 2.0
    assert speedups["step-1 kernel, columnar tier"] >= 1.2
    # PR 7's acceptance bar: the vectorized kernel is >= 3x the
    # pure-python columnar kernel on pre-ingested chunks (typical
    # measurements are ~8x, so the floor holds on noisy runners).
    assert kernel_col / kernel_vec >= 3.0

    # Benchmark provenance: the machine-readable trajectory CI diffs
    # against benchmarks/baselines/.  Stage seconds come from one
    # instrumented full-pipeline run over the pre-ingested chunks.
    profile = PipelineProfile()
    LoopDetector(profile=profile).detect_columnar(ctrace)
    emit_bench("columnar_step1", {
        "ingest_records_per_sec": metric(n / ingest_col, "records/s"),
        "kernel_columnar_records_per_sec": metric(n / kernel_col,
                                                  "records/s"),
        "kernel_vectorized_records_per_sec": metric(n / kernel_vec,
                                                    "records/s"),
        "step1_columnar_records_per_sec": metric(n / step1_col,
                                                 "records/s"),
        "step1_vectorized_records_per_sec": metric(n / step1_vec,
                                                   "records/s"),
        "ingest_speedup": metric(speedups["ingest (pcap -> records)"],
                                 "x"),
        "vectorized_over_columnar": metric(kernel_col / kernel_vec, "x"),
    }, stages=profile.stage_seconds())


def test_perf_instrumentation_overhead(big_trace, tmp_path_factory, emit):
    """The perf flight recorder stays within 5% of the plain pipeline.

    Times the full columnar pipeline (step-1 kernel + validate + merge)
    plain vs. with a :class:`PipelineProfile` wired to an enabled
    metrics registry — the exact configuration the fleet and ``--serve``
    runs use.  Stage spans cost one lock acquisition per *stage*, never
    per record, so the bound holds with margin.  Best pairwise ratio
    over interleaved run pairs (the ``obs_overhead`` methodology):
    scheduling noise only ever adds time, so the smallest back-to-back
    ratio is the honest overhead.
    """
    path = tmp_path_factory.mktemp("perf_overhead") / "big.pcap"
    write_pcap(big_trace, path)
    ctrace = read_pcap_columnar(path)
    n = len(ctrace)

    def _run_plain():
        return LoopDetector().detect_columnar(ctrace)

    def _run_profiled():
        registry = MetricsRegistry(enabled=True)
        profile = PipelineProfile(registry)
        return LoopDetector(profile=profile).detect_columnar(ctrace)

    baseline = _run_plain()
    pairs = 10
    plain_wall = profiled_wall = float("inf")
    ratios = []
    for _ in range(pairs):
        for runner, attr in ((_run_plain, "plain"), (_run_profiled, "prof")):
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                result = runner()
                wall = time.perf_counter() - t0
            finally:
                gc.enable()
            assert result.stream_count == baseline.stream_count
            if attr == "plain":
                wall_p = wall
                plain_wall = min(plain_wall, wall)
            else:
                profiled_wall = min(profiled_wall, wall)
                ratios.append(wall / wall_p - 1.0)
    ratios.sort()
    best = ratios[0]
    median = ratios[len(ratios) // 2]

    lines = [
        "Perf flight-recorder overhead — columnar pipeline, "
        f"{n:,} records",
        "plain vs. PipelineProfile + enabled registry, best pairwise",
        f"ratio over {pairs} interleaved run pairs",
        "",
        f"{'mode':<28}{'wall':>9}{'records/s':>12}{'overhead':>10}",
        f"{'pipeline (plain)':<28}{plain_wall:>8.3f}s"
        f"{n / plain_wall:>12,.0f}{'—':>10}",
        f"{'pipeline + perf profile':<28}{profiled_wall:>8.3f}s"
        f"{n / profiled_wall:>12,.0f}{median:>9.1%}",
        "",
        f"pairwise overhead: median {median:.1%}, best {best:.1%}.",
        "stage spans take one lock per stage (6 stages per run), never",
        "per record; histogram observation is one bisect per span.",
    ]
    emit("perf_overhead", "\n".join(lines))

    emit_bench("perf_overhead", {
        "profiled_records_per_sec": metric(n / profiled_wall, "records/s"),
        "overhead_best_pairwise": metric(best, "fraction",
                                         higher_is_better=False),
    })

    # The tentpole's acceptance bar: <= 5% on the step-1 throughput
    # path with perf instrumentation enabled.
    assert best < 0.05, (
        f"perf instrumentation overhead {best:.1%} exceeds the 5% bound"
    )


def test_full_pipeline_throughput(big_trace, benchmark):
    result = benchmark.pedantic(
        lambda: LoopDetector().detect(big_trace), rounds=3, iterations=1
    )
    assert result.stream_count == 80
    assert result.loop_count == 20
    # Linear-scan economics: comfortably above 50k records/second even
    # in pure Python.
    assert benchmark.stats.stats.mean < len(big_trace) / 50_000
