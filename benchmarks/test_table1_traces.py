"""Table I — details of traces.

Regenerates the paper's per-trace summary: length, average bandwidth,
packet count, and looped packets.  Asserted shape: Backbone 2 is the
busy link (highest bandwidth and packet count); its looped packets are
comparable in absolute number to Backbone 1 but much smaller relative to
its traffic; every trace contains looped packets.
"""

from repro.core.report import render_table1


def test_table1(table1_runs, table1_results, emit, benchmark):
    text = benchmark.pedantic(
        lambda: render_table1(table1_results), rounds=3, iterations=1
    )
    emit("table1", text)

    packets = {name: len(result.trace)
               for name, result in table1_results.items()}
    bandwidth = {name: result.trace.average_bandwidth_bps()
                 for name, result in table1_results.items()}
    looped = {name: result.looped_packet_count
              for name, result in table1_results.items()}

    # Backbone 2 carries the most traffic, by a wide margin.
    assert packets["backbone2"] == max(packets.values())
    assert bandwidth["backbone2"] == max(bandwidth.values())
    assert packets["backbone2"] > 3 * min(packets.values())

    # Every trace shows looping packets.
    for name, count in looped.items():
        assert count > 0, f"{name} detected no looped packets"

    # Looped packets are a far smaller *fraction* of backbone2's traffic
    # than of backbone1's-scale traces (the paper's observation).
    rel2 = looped["backbone2"] / packets["backbone2"]
    rel1 = looped["backbone1"] / packets["backbone1"]
    assert rel2 < rel1 * 3  # busy link not disproportionately loopy

    # Loops are rare events: well under 5% of packets on any link.
    for name in packets:
        assert looped[name] / packets[name] < 0.05
