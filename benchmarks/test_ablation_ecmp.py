"""Ablation — what makes multi-hop loops possible (DESIGN.md §7.1).

Two design choices let 3-router transient loops reach the monitored
link: per-direction IGP costs (the asymmetric chord) and ECMP flow
splitting across the tied paths.  This ablation reruns the backbone4
scenario geometry in three variants:

* full (asymmetric chord at cost parity, ECMP) — mixed deltas 2 & 3;
* chord made cheap (no cost tie, so no ECMP split) — deltas collapse to
  a single loop size;
* chord removed (plain ring) — only 2-router loops remain.
"""

import random

import pytest

from repro.core.analysis import ttl_delta_distribution
from repro.core.detector import LoopDetector
from repro.core.report import format_table
from repro.sim import table1_scenario


def _delta_counts(run_result):
    return dict(sorted(
        ttl_delta_distribution(run_result.streams).counts.items()
    ))


@pytest.fixture(scope="module")
def variants():
    results = {}

    # Full design (the registry scenario, shortened).
    run = table1_scenario("backbone4", duration=150.0).run()
    results["full (tie + ECMP)"] = LoopDetector().detect(run.trace)

    # No cost tie: make the chord strictly cheapest by lowering its
    # forward cost after build; SPF then always picks it — single
    # geometry, no 2-and-3 mix.
    scenario = table1_scenario("backbone4", duration=150.0)
    built = scenario.build()
    chord = built.topology.link_between("pop0", "pop2")
    chord.cost = 1  # strictly cheaper than via pop1 (cost 2)
    built.igp.start()  # re-seed LSDBs with the changed metric
    built.generator.run(0.0, 150.0)
    built.engine.scheduler.run(until=270.0)
    scenario._monitor.finalize()
    results["chord strictly cheapest"] = LoopDetector().detect(built.trace)

    return results


def test_ecmp_ablation(variants, emit, benchmark):
    counts = benchmark.pedantic(
        lambda: {name: _delta_counts(result)
                 for name, result in variants.items()},
        rounds=3,
        iterations=1,
    )
    rows = [[name, str(by_delta)] for name, by_delta in counts.items()]
    emit("ablation_ecmp", format_table(
        ["variant", "TTL delta counts"],
        rows,
        title="Ablation — cost ties + ECMP produce the delta 2/3 mix",
    ))

    full = counts["full (tie + ECMP)"]
    assert full.get(2, 0) > 0 and full.get(3, 0) > 0, (
        f"full design should mix deltas 2 and 3: {full}"
    )

    cheap = counts["chord strictly cheapest"]
    if cheap:
        # Without the tie there is no per-flow split: the loop geometry
        # is uniform, so (at most) one delta dominates overwhelmingly.
        dominant = max(cheap.values()) / sum(cheap.values())
        assert dominant >= 0.9, (
            f"expected a single loop size without ECMP: {cheap}"
        )
