"""Figure 8 — CDF of replica-stream duration.

A stream lasts size × spacing: sub-second for typical TTLs and
millisecond round-trips.  Asserted shape: most streams last well under
a second (the paper: mostly < 500 ms with step structure from the
initial-TTL population), with the longest bounded by a couple of
seconds.
"""

from repro.core.analysis import stream_duration_cdf
from repro.core.report import render_cdf


def test_fig8(table1_results, emit, benchmark):
    cdfs = benchmark.pedantic(
        lambda: {
            name: stream_duration_cdf(result.streams)
            for name, result in table1_results.items()
        },
        rounds=3,
        iterations=1,
    )
    for name, cdf in cdfs.items():
        emit(f"fig8_{name}", render_cdf(
            cdf, f"Figure 8 — replica stream duration ({name})", unit=" s"
        ))

    for name, cdf in cdfs.items():
        assert not cdf.empty
        # Most streams are sub-second; none lasts beyond a few seconds.
        assert cdf.fraction_at_or_below(1.0) >= 0.8
        assert cdf.max < 5.0

    # Duration tracks size x spacing: the busy trace's median stream
    # should sit in the hundreds-of-milliseconds band, like the paper's.
    assert 0.02 < cdfs["backbone2"].median < 1.0


def test_fig8_duration_consistent_with_size_and_spacing(table1_results,
                                                        benchmark):
    """Per-stream invariant behind the figure: duration equals
    (size - 1) x mean spacing (by construction of the mean)."""
    def check():
        checked = 0
        for result in table1_results.values():
            for stream in result.streams:
                expected = (stream.size - 1) * stream.mean_spacing
                assert abs(stream.duration - expected) < 1e-6
                checked += 1
        return checked

    checked = benchmark.pedantic(check, rounds=3, iterations=1)
    assert checked > 0
