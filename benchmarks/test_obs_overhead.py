"""Observability overhead — disabled and enabled instrumentation cost.

The unified observability layer promises a zero-cost disabled path: the
simulator and detectors hold ``NULL_TRACER``/null-instrument references
unconditionally, so when no ``--trace-out``/``--metrics-out`` is given
the only cost is a no-op dynamic dispatch at *control-plane* rate (link
events, SPF runs, FIB installs — never per forwarded packet).

Two modes:

* ``test_enabled_obs_identical_output_smoke`` — quick CI guard: a churny
  scenario run with a live tracer, an enabled registry, and registered
  collectors produces byte-identical monitor output and identical packet
  fates to the plain run.
* ``test_monitored_streaming_identical_output_smoke`` — CI guard for
  the live monitoring surface: streaming detection with a
  :class:`~repro.obs.live.LiveMonitor`, an enabled registry, and a
  running scrape server produces byte-identical loops, fires the
  Sec. VI looped-loss-share alert on the churn scenario, and serves
  coherent ``/metrics`` + ``/healthz`` mid-run.
* ``test_obs_overhead`` — the full measurement, marked ``slow``.  The
  churn-heavy scenario from the route-cache equivalence suite is run
  with obs off, with an in-memory tracer, and with tracer + JSONL sink +
  enabled metrics registry; best of three runs each.  Emits the table to
  ``benchmarks/output/obs_overhead.txt`` and asserts fully-enabled
  instrumentation stays within 15% of the plain run (the disabled path
  is the baseline itself — its "overhead" is what the committed
  ``sim_throughput`` numbers already absorb, required to stay within 5%
  of the pre-observability table).  A second section measures the live
  monitoring feed: streaming detection over a ~34k-record tiled churn
  trace, plain vs. recorder + alert engine + running scrape server,
  asserted within 5% — the per-record monitoring cost is one float
  compare against the next window boundary (see
  ``repro.cli._stream_with_monitor``), so the bound holds with margin.

Run the full measurement with::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -m slow -s
"""

from __future__ import annotations

import gc
import json
import math
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli import _stream_with_monitor
from repro.core.detector import DetectorConfig
from repro.core.streaming import StreamingLoopDetector
from repro.net.trace import TraceRecord
from repro.obs.live import LiveMonitor
from repro.obs.metrics import MetricsRegistry, parse_prometheus, set_registry
from repro.obs.server import MonitorServer
from repro.obs.tracing import Tracer
from repro.routing.linkstate import LinkStateTimers
from repro.sim.backbone import BackboneScenario, ScenarioConfig


def _config(duration: float = 60.0) -> ScenarioConfig:
    # The churn-heavy scenario from the route-cache equivalence suite:
    # flaps and withdrawals land mid-traffic, so the tracer sees real
    # control-plane volume (LSA floods, SPF runs, FIB churn), not an
    # idle network.
    return ScenarioConfig(
        name="obs-overhead",
        seed=23,
        pops=6,
        extra_edges=2,
        duration=duration,
        rate_pps=200.0,
        n_prefixes=40,
        n_flows=200,
        igp_flaps=4,
        flap_downtime=(3.0, 6.0),
        bgp_withdrawals=2,
        withdrawal_holdtime=15.0,
        igp_timers=LinkStateTimers(fib_update_delay=0.4,
                                   fib_update_jitter=1.2),
    )


def _run(duration: float, tracer=None, metrics: bool = False,
         sink_path: Path | None = None):
    """One timed scenario run; returns (wall_seconds, run, record_count)."""
    registry = None
    previous = None
    sink = None
    if sink_path is not None:
        sink = open(sink_path, "w", encoding="utf-8")
        tracer = Tracer(sink=sink)
    if metrics:
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
    try:
        scenario = BackboneScenario(_config(duration))
        t0 = time.perf_counter()
        run = scenario.run(tracer=tracer)
        if metrics:
            run.engine.register_metrics(registry)
            run.monitor.register_metrics(registry)
            registry.collect()
        wall = time.perf_counter() - t0
    finally:
        if previous is not None:
            set_registry(previous)
        if sink is not None:
            tracer.close()
            sink.close()
    records = len(tracer.records) if tracer is not None and tracer.keep else 0
    return wall, run, records


def _trace_bytes(run):
    return [(round(rec.timestamp, 12), rec.data)
            for rec in run.trace.records]


def _churn_records(duration: float = 60.0, copies: int = 1):
    """The churn scenario's captured records, optionally tiled ``copies``
    times (each copy time-shifted past the previous one) so throughput
    measurements run long enough to swamp timer noise."""
    base = BackboneScenario(_config(duration)).run().trace.records
    if copies <= 1:
        return base
    period = math.floor(base[-1].timestamp) + 1.0
    out = list(base)
    for k in range(1, copies):
        shift = period * k
        out.extend(
            TraceRecord(timestamp=record.timestamp + shift,
                        data=record.data,
                        wire_length=record.wire_length)
            for record in base
        )
    return out


def _loop_rows(loops):
    return [(str(loop.prefix), loop.start, loop.end, loop.replica_count)
            for loop in loops]


def _stream_plain(records):
    """Timed plain streaming detection over ``records``.

    Collector hygiene for a stable measurement: pay down GC debt
    before the clock starts and keep cycle detection from firing
    mid-run (allocation volume differs between modes, so GC triggers
    would land at different points and masquerade as overhead).
    """
    detector = StreamingLoopDetector(DetectorConfig())
    loops = []
    extend = loops.extend
    process = detector.process
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for record in records:
            extend(process(record.timestamp, record.data))
        extend(detector.flush())
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    return wall, loops


def _stream_monitored(records):
    """Timed streaming detection with the full live-monitoring surface
    enabled: windowed recorder, alert engine, enabled metrics registry,
    and a running scrape server.  Server start/stop stays outside the
    timed region — overhead means feed throughput, not process setup."""
    detector = StreamingLoopDetector(DetectorConfig())
    registry = MetricsRegistry(enabled=True)
    detector.register_metrics(registry)
    monitor = LiveMonitor(registry=registry)
    with MonitorServer(monitor, port=0) as server:
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            loops = _stream_with_monitor(detector, records, monitor)
            wall = time.perf_counter() - t0
        finally:
            gc.enable()
        scrapes = {
            path: urllib.request.urlopen(
                f"{server.url}{path}", timeout=5.0
            ).read().decode("utf-8")
            for path in ("/metrics", "/healthz")
        }
    return wall, loops, monitor, scrapes


def test_enabled_obs_identical_output_smoke(tmp_path):
    """CI guard: full instrumentation never changes simulator output."""
    duration = 30.0
    _, plain, _ = _run(duration)
    _, traced, n_records = _run(duration, metrics=True,
                                sink_path=tmp_path / "trace.jsonl")
    assert _trace_bytes(traced) == _trace_bytes(plain), "trace diverged"
    assert dict(traced.engine.fate_counts) == dict(plain.engine.fate_counts)
    assert n_records > 0, "tracer saw no control-plane activity"


def test_monitored_streaming_identical_output_smoke():
    """CI guard: the live monitoring surface never changes detection
    output, and the churn scenario fires the Sec. VI loss-share alert."""
    records = _churn_records(60.0)
    _, plain = _stream_plain(records)
    _, monitored, monitor, scrapes = _stream_monitored(records)

    assert _loop_rows(monitored) == _loop_rows(plain), "loops diverged"
    fired = {alert.rule for alert in monitor.alerts.history}
    assert "looped_loss_share" in fired, (
        "churn scenario did not fire the Sec. VI looped-loss alert"
    )
    counters = parse_prometheus(scrapes["/metrics"])["counters"]
    assert counters["streaming_loops_emitted_total"] == len(plain)
    assert counters["alerts_fired_total"] >= 1.0
    health = json.loads(scrapes["/healthz"])
    assert health["status"] == "ok"
    assert health["records"] == len(records)
    assert health["finished"] is True


@pytest.mark.slow
def test_obs_overhead(emit, tmp_path):
    """Full measurement: enabled obs within 15% of the plain run."""
    duration = 60.0
    modes = {
        "obs off (default)": dict(),
        "tracer (in-memory)": dict(tracer="memory"),
        "tracer+sink+metrics": dict(metrics=True, sink=True),
    }
    rows = {}
    for label, mode in modes.items():
        walls = []
        for i in range(3):
            tracer = Tracer() if mode.get("tracer") == "memory" else None
            sink_path = (tmp_path / f"t{i}.jsonl") if mode.get("sink") \
                else None
            wall, run, records = _run(
                duration, tracer=tracer, metrics=mode.get("metrics", False),
                sink_path=sink_path,
            )
            walls.append(wall)
        rows[label] = {
            "wall": min(walls),
            "pps": run.engine.packets_injected / min(walls),
            "trace": _trace_bytes(run),
            "records": records,
        }

    base = rows["obs off (default)"]
    lines = [
        "Observability overhead — churn-heavy 6-PoP scenario, 60 s",
        "4 IGP flaps + 2 BGP withdrawals mid-traffic, best of 3 runs",
        "",
        f"{'mode':<24}{'wall':>8}{'packets/s':>12}{'overhead':>10}",
    ]
    for label, row in rows.items():
        overhead = (row["wall"] - base["wall"]) / base["wall"]
        lines.append(
            f"{label:<24}{row['wall']:>7.2f}s{row['pps']:>12,.0f}"
            f"{overhead:>9.1%}"
        )
        assert row["trace"] == base["trace"], f"{label}: output diverged"
    traced = rows["tracer+sink+metrics"]
    lines += [
        "",
        f"trace records per run: {traced['records']:,}",
        "disabled path is the baseline: instrumented code holds null",
        "tracer/instrument references; no per-packet branches added.",
    ]

    # -- live monitoring feed: recorder + alerts + scrape server ---------
    # Interleave plain/monitored pairs and take the best *pairwise*
    # ratio: scheduling noise on shared hardware only ever adds time,
    # so the smallest back-to-back ratio is the honest overhead (the
    # timeit "use the min" doctrine, applied to a ratio).
    records = _churn_records(60.0, copies=10)
    plain_wall = float("inf")
    monitored_wall = float("inf")
    ratios = []
    plain_loops = monitored_loops = None
    # Pairs alternate fast (~0.15 s per run) so multi-second noise
    # bursts on shared hardware straddle modes instead of biasing one;
    # the min needs only one clean pair out of ten.
    for _ in range(10):
        wall_p, plain_loops = _stream_plain(records)
        wall_m, monitored_loops, monitor, _scrapes = (
            _stream_monitored(records)
        )
        plain_wall = min(plain_wall, wall_p)
        monitored_wall = min(monitored_wall, wall_m)
        ratios.append(wall_m / wall_p - 1.0)
    assert _loop_rows(monitored_loops) == _loop_rows(plain_loops), (
        "monitored streaming diverged from plain streaming"
    )
    ratios.sort()
    monitor_overhead = ratios[0]
    median_overhead = ratios[len(ratios) // 2]
    rate = len(records) / monitored_wall
    lines += [
        "",
        "Live monitoring feed — streaming detection, tiled churn trace",
        f"({len(records):,} records; recorder + alert engine + running",
        "scrape server vs. plain streaming; best pairwise ratio over",
        "10 interleaved run pairs)",
        "",
        f"{'mode':<24}{'wall':>8}{'records/s':>12}{'overhead':>10}",
        f"{'streaming (plain)':<24}{plain_wall:>7.3f}s"
        f"{len(records) / plain_wall:>12,.0f}{'—':>10}",
        f"{'streaming + monitor':<24}{monitored_wall:>7.3f}s"
        f"{rate:>12,.0f}{median_overhead:>9.1%}",
        "",
        f"pairwise overhead: median {median_overhead:.1%}, "
        f"best {monitor_overhead:.1%}.  Negative values are",
        "scheduling noise on shared hardware; noise only ever adds",
        "time, so the 5% bound is asserted on the best pair.",
        "per-record monitoring cost is one float compare against the",
        "next window boundary; counts are sampled from the detector's",
        "own record counter once per trace second.",
    ]
    emit("obs_overhead", "\n".join(lines))

    for label, row in rows.items():
        overhead = (row["wall"] - base["wall"]) / base["wall"]
        assert overhead < 0.15, (
            f"{label}: overhead {overhead:.1%} exceeds the 15% bound"
        )
    assert monitor_overhead < 0.05, (
        f"live monitoring overhead {monitor_overhead:.1%} exceeds "
        "the 5% bound"
    )
