"""Observability overhead — disabled and enabled instrumentation cost.

The unified observability layer promises a zero-cost disabled path: the
simulator and detectors hold ``NULL_TRACER``/null-instrument references
unconditionally, so when no ``--trace-out``/``--metrics-out`` is given
the only cost is a no-op dynamic dispatch at *control-plane* rate (link
events, SPF runs, FIB installs — never per forwarded packet).

Two modes:

* ``test_enabled_obs_identical_output_smoke`` — quick CI guard: a churny
  scenario run with a live tracer, an enabled registry, and registered
  collectors produces byte-identical monitor output and identical packet
  fates to the plain run.
* ``test_obs_overhead`` — the full measurement, marked ``slow``.  The
  churn-heavy scenario from the route-cache equivalence suite is run
  with obs off, with an in-memory tracer, and with tracer + JSONL sink +
  enabled metrics registry; best of three runs each.  Emits the table to
  ``benchmarks/output/obs_overhead.txt`` and asserts fully-enabled
  instrumentation stays within 15% of the plain run (the disabled path
  is the baseline itself — its "overhead" is what the committed
  ``sim_throughput`` numbers already absorb, required to stay within 5%
  of the pre-observability table).

Run the full measurement with::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -m slow -s
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.tracing import Tracer
from repro.routing.linkstate import LinkStateTimers
from repro.sim.backbone import BackboneScenario, ScenarioConfig


def _config(duration: float = 60.0) -> ScenarioConfig:
    # The churn-heavy scenario from the route-cache equivalence suite:
    # flaps and withdrawals land mid-traffic, so the tracer sees real
    # control-plane volume (LSA floods, SPF runs, FIB churn), not an
    # idle network.
    return ScenarioConfig(
        name="obs-overhead",
        seed=23,
        pops=6,
        extra_edges=2,
        duration=duration,
        rate_pps=200.0,
        n_prefixes=40,
        n_flows=200,
        igp_flaps=4,
        flap_downtime=(3.0, 6.0),
        bgp_withdrawals=2,
        withdrawal_holdtime=15.0,
        igp_timers=LinkStateTimers(fib_update_delay=0.4,
                                   fib_update_jitter=1.2),
    )


def _run(duration: float, tracer=None, metrics: bool = False,
         sink_path: Path | None = None):
    """One timed scenario run; returns (wall_seconds, run, record_count)."""
    registry = None
    previous = None
    sink = None
    if sink_path is not None:
        sink = open(sink_path, "w", encoding="utf-8")
        tracer = Tracer(sink=sink)
    if metrics:
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
    try:
        scenario = BackboneScenario(_config(duration))
        t0 = time.perf_counter()
        run = scenario.run(tracer=tracer)
        if metrics:
            run.engine.register_metrics(registry)
            run.monitor.register_metrics(registry)
            registry.collect()
        wall = time.perf_counter() - t0
    finally:
        if previous is not None:
            set_registry(previous)
        if sink is not None:
            tracer.close()
            sink.close()
    records = len(tracer.records) if tracer is not None and tracer.keep else 0
    return wall, run, records


def _trace_bytes(run):
    return [(round(rec.timestamp, 12), rec.data)
            for rec in run.trace.records]


def test_enabled_obs_identical_output_smoke(tmp_path):
    """CI guard: full instrumentation never changes simulator output."""
    duration = 30.0
    _, plain, _ = _run(duration)
    _, traced, n_records = _run(duration, metrics=True,
                                sink_path=tmp_path / "trace.jsonl")
    assert _trace_bytes(traced) == _trace_bytes(plain), "trace diverged"
    assert dict(traced.engine.fate_counts) == dict(plain.engine.fate_counts)
    assert n_records > 0, "tracer saw no control-plane activity"


@pytest.mark.slow
def test_obs_overhead(emit, tmp_path):
    """Full measurement: enabled obs within 15% of the plain run."""
    duration = 60.0
    modes = {
        "obs off (default)": dict(),
        "tracer (in-memory)": dict(tracer="memory"),
        "tracer+sink+metrics": dict(metrics=True, sink=True),
    }
    rows = {}
    for label, mode in modes.items():
        walls = []
        for i in range(3):
            tracer = Tracer() if mode.get("tracer") == "memory" else None
            sink_path = (tmp_path / f"t{i}.jsonl") if mode.get("sink") \
                else None
            wall, run, records = _run(
                duration, tracer=tracer, metrics=mode.get("metrics", False),
                sink_path=sink_path,
            )
            walls.append(wall)
        rows[label] = {
            "wall": min(walls),
            "pps": run.engine.packets_injected / min(walls),
            "trace": _trace_bytes(run),
            "records": records,
        }

    base = rows["obs off (default)"]
    lines = [
        "Observability overhead — churn-heavy 6-PoP scenario, 60 s",
        "4 IGP flaps + 2 BGP withdrawals mid-traffic, best of 3 runs",
        "",
        f"{'mode':<24}{'wall':>8}{'packets/s':>12}{'overhead':>10}",
    ]
    for label, row in rows.items():
        overhead = (row["wall"] - base["wall"]) / base["wall"]
        lines.append(
            f"{label:<24}{row['wall']:>7.2f}s{row['pps']:>12,.0f}"
            f"{overhead:>9.1%}"
        )
        assert row["trace"] == base["trace"], f"{label}: output diverged"
    traced = rows["tracer+sink+metrics"]
    lines += [
        "",
        f"trace records per run: {traced['records']:,}",
        "disabled path is the baseline: instrumented code holds null",
        "tracer/instrument references; no per-packet branches added.",
    ]
    emit("obs_overhead", "\n".join(lines))

    for label, row in rows.items():
        overhead = (row["wall"] - base["wall"]) / base["wall"]
        assert overhead < 0.15, (
            f"{label}: overhead {overhead:.1%} exceeds the 15% bound"
        )
