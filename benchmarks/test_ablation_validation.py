"""Ablation — the validation rules of step 2 (Sec. IV-A.2).

Two checks:

* the 2-element rule: a trace salted with link-layer duplicate pairs
  (SONET protection / token-ring artifacts) yields no false loops with
  validation on;
* the prefix-consistency rule only ever removes streams, and on the
  simulated traces removes few (the loops are real).
"""

import random

from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.report import format_table
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder


def _salted_trace():
    """Background + 40 duplicate pairs + one real loop."""
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    builder.add_background(2000, 0.0, 120.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    for i in range(40):
        builder.add_duplicate_pair(1.0 + i * 2.5)
    builder.add_loop(60.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=3,
                     replicas_per_packet=6, spacing=0.01,
                     packet_gap=0.012, entry_ttl=40)
    return builder.build()


def test_duplicate_rejection(emit, benchmark):
    trace = _salted_trace()
    result = benchmark.pedantic(
        lambda: LoopDetector().detect(trace), rounds=3, iterations=1
    )
    emit("ablation_duplicates", format_table(
        ["metric", "value"],
        [
            ["records", len(trace)],
            ["duplicate pairs salted", 40],
            ["candidate streams", len(result.candidate_streams)],
            ["validated streams", result.stream_count],
            ["loops", result.loop_count],
        ],
        title="Ablation — link-layer duplicates are not loops",
    ))
    # Only the three real streams survive; the duplicates never even
    # chain (equal TTLs), let alone validate.
    assert result.stream_count == 3
    assert result.loop_count == 1


def test_validation_is_conservative(table1_results, emit, benchmark):
    def sweep():
        rows = []
        for name, result in table1_results.items():
            lax = LoopDetector(DetectorConfig(
                check_prefix_consistency=False,
                check_gap_consistency=False,
            )).detect(result.trace)
            rows.append((name, result.stream_count, lax.stream_count,
                         result.validation.rejected_too_small,
                         result.validation.rejected_prefix_conflict))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_validation", format_table(
        ["trace", "validated", "without validation", "rejected small",
         "rejected conflict"],
        [list(row) for row in rows],
        title="Ablation — effect of the validation rules",
    ))

    for name, strict, lax, _, _ in rows:
        assert strict <= lax
        # Validation keeps the bulk of real streams on these traces.
        if lax:
            assert strict / lax >= 0.5
