"""Extension — IGP convergence time (the paper's Sec. II-B grounding).

The paper ties loop durations to convergence: detection + flooding +
SPF + FIB update "typically converge in seconds", with contemporaneous
measurements of ~5–10 s after a failure, and the observed loop
durations "mostly under 10 seconds" agree.  This bench measures
failure-to-consistent-FIBs time across topologies and timer presets:

* with realistic default timers, convergence is seconds (well under
  10 s) — matching both the cited measurements and Figure 9's loops;
* with the slow-FIB preset used by the long-loop scenarios, it
  stretches accordingly, bounding those traces' IGP loop durations.
"""

import random

from repro.core.report import format_table
from repro.routing.convergence import convergence_time_distribution
from repro.routing.linkstate import LinkStateTimers
from repro.routing.topology import backbone_topology, ring_topology
from repro.stats.cdf import EmpiricalCdf


def test_convergence_time(emit, benchmark):
    def sweep():
        presets = {
            "default": LinkStateTimers(),
            "slow FIB": LinkStateTimers(fib_update_delay=0.4,
                                        fib_update_jitter=1.2),
        }
        topologies = {
            "ring-6": lambda rng: ring_topology(
                6, propagation_delay=0.003
            ),
            "backbone-8": lambda rng: backbone_topology(pops=8, rng=rng),
        }
        results = {}
        for preset_name, timers in presets.items():
            for topo_name, factory in topologies.items():
                durations = convergence_time_distribution(
                    factory, timers, trials=8, base_seed=42
                )
                results[f"{topo_name} / {preset_name}"] = (
                    EmpiricalCdf.from_samples(durations)
                )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [name, f"{cdf.median:.2f} s", f"{cdf.quantile(0.9):.2f} s",
         f"{cdf.max:.2f} s"]
        for name, cdf in results.items()
    ]
    emit("convergence_time", format_table(
        ["configuration", "median", "p90", "max"],
        rows,
        title="Extension — IGP convergence time after a link failure",
    ))

    for name, cdf in results.items():
        # "Link-state protocols typically converge in seconds."
        assert cdf.max < 15.0, f"{name}: convergence too slow"
        assert cdf.median > 0.05, f"{name}: suspiciously instant"
    # Default timers: comfortably inside the paper's 5-10 s envelope.
    for name, cdf in results.items():
        if "default" in name:
            assert cdf.quantile(0.9) < 10.0
    # Slow FIB installs stretch convergence, as the scenarios rely on.
    assert (results["ring-6 / slow FIB"].median
            > results["ring-6 / default"].median)
