"""Extension — utilization overhead and reordering (Sec. VI's remarks).

The paper notes loops inflate link utilization (replica crossings are
duplicate bytes, raising queueing delay for everyone) and that escaped
packets arrive out of order.  Asserted shape: overhead is tiny overall
but concentrated in loop minutes; some looped deliveries are reordered.
"""

from repro.core.impact import (
    reordering_impact_from_engine,
    utilization_overhead,
)
from repro.core.report import format_table


def test_utilization_overhead(table1_results, emit, benchmark):
    overheads = benchmark.pedantic(
        lambda: {
            name: utilization_overhead(result.trace, result.streams)
            for name, result in table1_results.items()
        },
        rounds=3,
        iterations=1,
    )
    rows = [
        [name,
         overhead.overhead_bytes,
         f"{overhead.overall_overhead_fraction:.4%}",
         f"{overhead.peak_minute_overhead_fraction:.2%}"]
        for name, overhead in overheads.items()
    ]
    emit("impact_utilization", format_table(
        ["trace", "overhead bytes", "overall share", "peak minute share"],
        rows,
        title="Extension — link utilization overhead of replicas",
    ))

    for name, overhead in overheads.items():
        assert overhead.overhead_bytes > 0, f"{name}: no loop bytes?"
        # Overall the overhead is small...
        assert overhead.overall_overhead_fraction < 0.25
        # ...but concentrated: the worst minute's share beats the mean.
        assert overhead.peak_minute_overhead_fraction >= (
            overhead.overall_overhead_fraction
        )


def test_reordering(table1_runs, emit, benchmark):
    impacts = benchmark.pedantic(
        lambda: {
            name: reordering_impact_from_engine(run.engine)
            for name, run in table1_runs.items()
        },
        rounds=3,
        iterations=1,
    )
    rows = [
        [name, impact.total_looped_deliveries,
         impact.reordered_deliveries,
         f"{impact.reordering_fraction:.2f}"]
        for name, impact in impacts.items()
    ]
    emit("impact_reordering", format_table(
        ["trace", "looped deliveries", "reordered", "fraction"],
        rows,
        title="Extension — out-of-order delivery of escaped packets",
    ))

    # Somewhere across the traces, escaped packets do get reordered.
    total_reordered = sum(
        impact.reordered_deliveries for impact in impacts.values()
    )
    total_looped = sum(
        impact.total_looped_deliveries for impact in impacts.values()
    )
    assert total_looped > 0
    assert total_reordered > 0
    for impact in impacts.values():
        assert impact.reordered_deliveries <= impact.total_looped_deliveries
