"""Extension — how packet sampling degrades detection.

Monitoring infrastructure often samples (1-in-N packets).  The sweep
measures the effect on the real scenario traces, and the result is more
nuanced than "sampling is fatal": kept replicas of one stream still
chain (their TTL gaps become multiples of the loop size, which the
delta >= 2 rule happily accepts), so *long* streams survive moderate
sampling.  What dies first are short streams — under ~3N replicas at
1-in-N, there is usually not enough left to clear the 3-replica
evidence bar.  Traces whose loops are brief (backbone3's fast-IGP
loops) therefore collapse quickly, while long-stream traces degrade
gracefully; by 1-in-16 every trace has lost most of its streams.
"""

import random

from repro.core.detector import LoopDetector
from repro.core.report import format_table

FACTORS = (1, 2, 4, 8, 16)


def test_sampling_sweep(table1_results, emit, benchmark):
    def sweep():
        counts: dict[str, dict[int, int]] = {}
        for name, result in table1_results.items():
            counts[name] = {}
            for factor in FACTORS:
                sampled = result.trace.sample(factor, random.Random(factor))
                counts[name][factor] = LoopDetector().detect(
                    sampled
                ).stream_count
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name] + [by_factor[f] for f in FACTORS]
            for name, by_factor in counts.items()]
    emit("sampling_requirement", format_table(
        ["trace"] + [f"1-in-{f}" for f in FACTORS],
        rows,
        title="Extension — detected streams vs packet sampling factor",
    ))

    for name, by_factor in counts.items():
        full = by_factor[1]
        assert full > 0
        # Degradation is monotone in the factor (within noise).
        assert by_factor[16] <= by_factor[8] + 2
        assert by_factor[8] <= by_factor[4] + 2
        # By 1-in-16, most streams are gone on every trace.
        assert by_factor[16] <= full / 2, (
            f"{name}: sampling barely hurt? {by_factor}"
        )
    # The short-stream trace (backbone3, fast IGP loops) collapses much
    # faster than the long-stream traces.
    b3 = counts["backbone3"]
    assert b3[8] <= b3[1] / 2
    assert b3[16] <= max(1, b3[1] // 8)
