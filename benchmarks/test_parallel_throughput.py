"""Scaling — sharded parallel engine vs. the single-process baseline.

Times the offline ``LoopDetector`` and ``ParallelLoopDetector`` at 1, 2,
and 4 workers over the same 100k-record synthetic trace used by
``test_detector_throughput.py``, asserts exactness at every worker
count, and writes the scaling table to ``benchmarks/output/``.

The >= 2x speedup assertion at 4 workers only applies on a runner with
at least 4 cores: on fewer cores the worker processes time-slice one
CPU and the fork/pickle overhead dominates, which the emitted table
still documents.
"""

import os
import random
import time

import pytest

from repro.core.detector import LoopDetector
from repro.core.report import format_table
from repro.net.addr import IPv4Prefix
from repro.parallel import ParallelLoopDetector
from repro.traffic.synthetic import SyntheticTraceBuilder

JOBS = (1, 2, 4)
ROUNDS = 3


@pytest.fixture(scope="module")
def big_trace():
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    prefixes = [
        IPv4Prefix((198 << 24) | (51 << 16) | (i << 8), 24)
        for i in range(40)
    ]
    builder.add_background(100_000, 0.0, 600.0, prefixes=prefixes)
    for i in range(20):
        builder.add_loop(
            10.0 + i * 25.0,
            IPv4Prefix((192 << 24) | (i << 8), 24),
            n_packets=4,
            replicas_per_packet=8,
            spacing=0.01,
            packet_gap=0.012,
            entry_ttl=40,
        )
    return builder.build()


def _best_of(rounds, run):
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_parallel_scaling(big_trace, emit):
    cores = os.cpu_count() or 1
    baseline_seconds, baseline = _best_of(
        ROUNDS, lambda: LoopDetector().detect(big_trace)
    )
    assert baseline.stream_count == 80
    assert baseline.loop_count == 20

    rows = [[
        "offline", "-", f"{baseline_seconds:.3f}",
        f"{len(big_trace) / baseline_seconds:,.0f}", "1.00",
    ]]
    speedups = {}
    for jobs in JOBS:
        engine = ParallelLoopDetector(jobs=jobs)
        seconds, result = _best_of(
            ROUNDS, lambda engine=engine: engine.detect(big_trace)
        )
        # Exactness first: a fast wrong answer is worthless.
        assert result.stream_count == baseline.stream_count
        assert result.loop_count == baseline.loop_count
        assert result.looped_packet_count == baseline.looped_packet_count
        speedups[jobs] = baseline_seconds / seconds
        rows.append([
            f"parallel x{jobs}", jobs, f"{seconds:.3f}",
            f"{len(big_trace) / seconds:,.0f}", f"{speedups[jobs]:.2f}",
        ])

    table = format_table(
        ["Engine", "Workers", "Seconds", "Records/s", "Speedup"],
        rows,
        title=(f"Parallel scaling — {len(big_trace)} records, "
               f"{cores} core(s) available"),
    )
    emit("parallel_scaling", table)

    if cores >= 4:
        assert speedups[4] >= 2.0, (
            f"expected >= 2x speedup at 4 workers on {cores} cores, "
            f"got {speedups[4]:.2f}x"
        )
