"""Scaling — sharded parallel engine vs. the single-process baseline.

Times the offline ``LoopDetector`` and ``ParallelLoopDetector`` at 1, 2,
and 4 workers over the same 100k-record synthetic trace used by
``test_detector_throughput.py``, asserts exactness at every worker
count, and writes the scaling table to ``benchmarks/output/``.

The >= 2x speedup assertion at 4 workers only applies on a runner with
at least 4 cores: on fewer cores the worker processes time-slice one
CPU and the fork/pickle overhead dominates, which the emitted table
still documents.
"""

import os
import pickle
import random
import time

import pytest

from provenance import emit_bench, metric
from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.report import format_table
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarTrace
from repro.parallel import ParallelLoopDetector
from repro.parallel.shard import ColumnarShardPartition, ShardPartition
from repro.traffic.synthetic import SyntheticTraceBuilder

JOBS = (1, 2, 4)
ROUNDS = 3


@pytest.fixture(scope="module")
def big_trace():
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    prefixes = [
        IPv4Prefix((198 << 24) | (51 << 16) | (i << 8), 24)
        for i in range(40)
    ]
    builder.add_background(100_000, 0.0, 600.0, prefixes=prefixes)
    for i in range(20):
        builder.add_loop(
            10.0 + i * 25.0,
            IPv4Prefix((192 << 24) | (i << 8), 24),
            n_packets=4,
            replicas_per_packet=8,
            spacing=0.01,
            packet_gap=0.012,
            entry_ttl=40,
        )
    return builder.build()


def _best_of(rounds, run):
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_parallel_scaling(big_trace, emit):
    cores = os.cpu_count() or 1
    baseline_seconds, baseline = _best_of(
        ROUNDS, lambda: LoopDetector().detect(big_trace)
    )
    assert baseline.stream_count == 80
    assert baseline.loop_count == 20

    rows = [[
        "offline", "-", f"{baseline_seconds:.3f}",
        f"{len(big_trace) / baseline_seconds:,.0f}", "1.00",
    ]]
    speedups = {}
    for jobs in JOBS:
        engine = ParallelLoopDetector(jobs=jobs)
        seconds, result = _best_of(
            ROUNDS, lambda engine=engine: engine.detect(big_trace)
        )
        # Exactness first: a fast wrong answer is worthless.
        assert result.stream_count == baseline.stream_count
        assert result.loop_count == baseline.loop_count
        assert result.looped_packet_count == baseline.looped_packet_count
        speedups[jobs] = baseline_seconds / seconds
        rows.append([
            f"parallel x{jobs}", jobs, f"{seconds:.3f}",
            f"{len(big_trace) / seconds:,.0f}", f"{speedups[jobs]:.2f}",
        ])

    table = format_table(
        ["Engine", "Workers", "Seconds", "Records/s", "Speedup"],
        rows,
        title=(f"Parallel scaling — {len(big_trace)} records, "
               f"{cores} core(s) available"),
    )
    emit("parallel_scaling", table)

    if cores >= 4:
        assert speedups[4] >= 2.0, (
            f"expected >= 2x speedup at 4 workers on {cores} cores, "
            f"got {speedups[4]:.2f}x"
        )


def test_fanout_payload_size(big_trace, emit):
    """Parent -> worker serialization: tuples vs slabs vs shared memory.

    Measures ``pickle.dumps`` of exactly what each engine ships per
    shard — the tuple path's ``(shard_id, [(index, timestamp, bytes),
    ...], config)`` jobs, the columnar path's ``(shard_id, slab,
    timestamps, lengths, config)`` payloads, and the shared-memory
    path's ``(name, *descriptor)`` control payloads (offsets into the
    one segment the parent writes; the slab bytes themselves never
    touch pickle) — and commits the byte counts alongside the segment
    size."""
    config = DetectorConfig()
    ctrace = ColumnarTrace.from_trace(big_trace)
    rows = []
    reductions = {}
    shm_reductions = {}
    for shards in (2, 4, 8):
        tuple_partition = ShardPartition(num_shards=shards)
        for i, record in enumerate(big_trace.records):
            tuple_partition.add(i, record.timestamp, record.data)
        tuple_bytes = sum(
            len(pickle.dumps((shard_id, shard, config),
                             protocol=pickle.HIGHEST_PROTOCOL))
            for shard_id, shard in enumerate(tuple_partition.shards)
            if shard
        )

        columnar_partition = ColumnarShardPartition(num_shards=shards)
        for chunk in ctrace.chunks:
            columnar_partition.add_chunk(chunk)
        columnar_bytes = sum(
            len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            for payload in columnar_partition.payloads(config)
        )

        shm_bytes, descriptors = columnar_partition.shm_layout(config)
        shm_pickled = sum(
            len(pickle.dumps(("psm_a1b2c3d4", *descriptor),
                             protocol=pickle.HIGHEST_PROTOCOL))
            for descriptor in descriptors
        )

        reductions[shards] = tuple_bytes / columnar_bytes
        shm_reductions[shards] = columnar_bytes / shm_pickled
        rows.append([
            shards, f"{tuple_bytes:,}", f"{columnar_bytes:,}",
            f"{shm_pickled:,}", f"{shm_bytes:,}",
            f"{reductions[shards]:.2f}x",
            f"{shm_reductions[shards]:,.0f}x",
        ])

    table = format_table(
        ["Shards", "Tuple-list bytes", "Columnar bytes",
         "Shm pickled bytes", "Shm segment bytes", "Columnar gain",
         "Shm pickle gain"],
        rows,
        title=(f"Fan-out payload (pickled) — {len(big_trace)} records, "
               f"measured per shard set"),
    )
    emit("parallel_fanout", table)

    # Benchmark provenance: byte counts are deterministic for a fixed
    # trace, so any drift here is a real serialization change.
    emit_bench("parallel_fanout", {
        "columnar_gain_8_shards": metric(reductions[8], "x"),
        "shm_pickle_gain_8_shards": metric(shm_reductions[8], "x"),
    })

    for shards, reduction in reductions.items():
        assert reduction > 1.0, (
            f"columnar payload not smaller at {shards} shards: "
            f"{reduction:.2f}x"
        )
    # PR 7's acceptance bar: shared memory cuts the pickled fan-out
    # payload by >= 10x (measured: ~4 orders of magnitude — only the
    # descriptors cross pickle).
    for shards, reduction in shm_reductions.items():
        assert reduction >= 10.0, (
            f"shm pickled payload not >= 10x smaller at {shards} "
            f"shards: {reduction:.2f}x"
        )
