"""Shared-memory slab fan-out: equivalence and segment lifecycle.

The engine's columnar pool fan-out writes one shared segment and ships
descriptors; these tests pin down that

* the result is identical to the pickled fan-out and the in-process
  run (streams, loops, aggregated stats);
* the segment never outlives the run — success, a SIGKILL'd worker,
  a raising worker, and a ``KeyboardInterrupt`` all leave ``/dev/shm``
  clean;
* the pickled control payload (descriptors) is orders of magnitude
  smaller than the slab bytes it replaces.
"""

import os
import pickle
import random
import signal

import pytest
from concurrent.futures.process import BrokenProcessPool

import repro.parallel.engine as engine_mod
from repro.core.detector import DetectorConfig
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarTrace
from repro.parallel.engine import ParallelLoopDetector
from repro.traffic.synthetic import SyntheticTraceBuilder


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


def _kill_worker(payload):
    """Fault-injection worker: dies hard mid-fan-out (module level so it
    pickles by reference into pool workers)."""
    os.kill(os.getpid(), signal.SIGKILL)


def _raise_worker(payload):
    raise RuntimeError("injected worker failure")


@pytest.fixture(scope="module")
def ctrace():
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    builder.add_background(3000, 0.0, 30.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(5.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=3,
                     replicas_per_packet=6, spacing=0.01, entry_ttl=40)
    return ColumnarTrace.from_trace(builder.build(), chunk_records=512)


def _fp(result):
    return (
        [tuple((r.index, r.timestamp, r.ttl) for r in s.replicas)
         for s in result.candidate_streams],
        [(str(l.prefix), l.start, l.end) for l in result.loops],
        result.scan_stats.records_scanned,
        result.scan_stats.singletons_evicted,
    )


class TestShmEquivalence:
    def test_matches_pickled_and_inprocess(self, ctrace):
        config = DetectorConfig()
        shm_engine = ParallelLoopDetector(config, jobs=2, shards=4,
                                          columnar=True)
        pickled = ParallelLoopDetector(config, jobs=2, shards=4,
                                       columnar=True, shared_memory=False)
        inproc = ParallelLoopDetector(config, jobs=1, shards=4,
                                      columnar=True)
        res_shm = shm_engine.detect_columnar(ctrace)
        res_pkl = pickled.detect_columnar(ctrace)
        res_inp = inproc.detect_columnar(ctrace)
        assert _fp(res_shm) == _fp(res_pkl) == _fp(res_inp)
        assert res_shm.parallel.shm_bytes == res_pkl.parallel.fanout_bytes
        assert res_pkl.parallel.shm_bytes == 0
        assert "via shared memory" in res_shm.parallel.render()
        snapshot = shm_engine.state_snapshot()
        assert snapshot["last_run"]["shm_bytes"] == res_shm.parallel.shm_bytes

    def test_descriptor_payload_is_tiny(self, ctrace):
        config = DetectorConfig()
        eng = ParallelLoopDetector(config, jobs=2, shards=4, columnar=True)
        partition = engine_mod.ColumnarShardPartition(num_shards=4)
        for chunk in ctrace.chunks:
            partition.add_chunk(chunk)
        _, descriptors = partition.shm_layout(config)
        pickled_bytes = sum(
            len(pickle.dumps(p)) for p in partition.payloads(config)
        )
        descriptor_bytes = sum(
            len(pickle.dumps(("psm_placeholder", *d))) for d in descriptors
        )
        assert descriptor_bytes * 10 <= pickled_bytes

    def test_inprocess_run_never_creates_segment(self, ctrace):
        eng = ParallelLoopDetector(DetectorConfig(), jobs=1, shards=4,
                                   columnar=True)
        eng.detect_columnar(ctrace)
        assert eng.last_shm_name is None


class TestSegmentLifecycle:
    def test_unlinked_after_success(self, ctrace):
        eng = ParallelLoopDetector(DetectorConfig(), jobs=2, shards=4,
                                   columnar=True)
        eng.detect_columnar(ctrace)
        assert eng.last_shm_name is not None
        assert not _segment_exists(eng.last_shm_name)

    def test_unlinked_after_worker_sigkill(self, ctrace, monkeypatch):
        monkeypatch.setattr(engine_mod, "_detect_shard_columnar_shm",
                            _kill_worker)
        eng = ParallelLoopDetector(DetectorConfig(), jobs=2, shards=4,
                                   columnar=True)
        with pytest.raises(BrokenProcessPool):
            eng.detect_columnar(ctrace)
        assert eng.last_shm_name is not None
        assert not _segment_exists(eng.last_shm_name)

    def test_unlinked_after_worker_exception(self, ctrace, monkeypatch):
        monkeypatch.setattr(engine_mod, "_detect_shard_columnar_shm",
                            _raise_worker)
        eng = ParallelLoopDetector(DetectorConfig(), jobs=2, shards=4,
                                   columnar=True)
        with pytest.raises(RuntimeError, match="injected"):
            eng.detect_columnar(ctrace)
        assert not _segment_exists(eng.last_shm_name)

    def test_unlinked_after_keyboard_interrupt(self, ctrace, monkeypatch):
        class InterruptingPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, payloads):
                raise KeyboardInterrupt

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor",
                            InterruptingPool)
        eng = ParallelLoopDetector(DetectorConfig(), jobs=2, shards=4,
                                   columnar=True)
        with pytest.raises(KeyboardInterrupt):
            eng.detect_columnar(ctrace)
        assert not _segment_exists(eng.last_shm_name)
