"""Tests for deterministic key → shard assignment."""

import random

import pytest

from repro.core import vectorize
from repro.core.replica import mask_mutable_fields
from repro.net.columnar import ColumnarChunk
from repro.parallel.shard import (
    MIN_CAPTURE,
    ColumnarShardPartition,
    ShardError,
    ShardPartition,
    assign_shard,
    partition_records,
    shard_key,
)


def _packet(ttl: int, checksum: int, payload: bytes = b"") -> bytes:
    header = bytearray(20)
    header[0] = 0x45
    header[8] = ttl
    header[10:12] = checksum.to_bytes(2, "big")
    header[12:16] = bytes([10, 0, 0, 1])
    header[16:20] = bytes([192, 0, 2, 7])
    return bytes(header) + payload


class TestShardKey:
    def test_replicas_share_a_key(self):
        a = _packet(ttl=60, checksum=0x1234, payload=b"data")
        b = _packet(ttl=55, checksum=0xBEEF, payload=b"data")
        assert shard_key(a) == shard_key(b)

    def test_key_matches_mask_equivalence(self):
        """Equal masks <=> equal shard keys, for any payload pair."""
        rng = random.Random(0)
        packets = [
            _packet(rng.randrange(1, 255), rng.randrange(65536),
                    bytes(rng.randrange(256) for _ in range(rng.randrange(8))))
            for _ in range(50)
        ]
        for a in packets:
            for b in packets:
                same_mask = mask_mutable_fields(a) == mask_mutable_fields(b)
                same_key = shard_key(a) == shard_key(b)
                assert same_mask == same_key

    def test_different_payloads_differ(self):
        a = _packet(ttl=60, checksum=0, payload=b"aaaa")
        b = _packet(ttl=60, checksum=0, payload=b"bbbb")
        assert shard_key(a) != shard_key(b)


class TestAssignShard:
    def test_replicas_land_in_same_shard(self):
        for num_shards in (1, 2, 3, 4, 7):
            a = _packet(ttl=60, checksum=0x1234, payload=b"xyz")
            b = _packet(ttl=42, checksum=0x9999, payload=b"xyz")
            assert assign_shard(a, num_shards) == assign_shard(b, num_shards)

    def test_within_range_and_deterministic(self):
        rng = random.Random(1)
        for _ in range(100):
            data = _packet(rng.randrange(1, 255), rng.randrange(65536),
                           bytes(rng.randrange(256) for _ in range(4)))
            shard = assign_shard(data, 4)
            assert 0 <= shard < 4
            assert assign_shard(data, 4) == shard

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ShardError):
            assign_shard(_packet(60, 0), 0)


class TestShardPartition:
    def test_short_records_never_reach_shards(self):
        partition = ShardPartition(num_shards=2)
        partition.add(0, 1.0, b"short")
        partition.add(1, 2.0, _packet(60, 0))
        assert partition.records_total == 2
        assert partition.records_short == 1
        assert sum(partition.shard_sizes) == 1

    def test_partition_covers_all_long_records(self):
        rng = random.Random(2)
        records = [
            (i, float(i), _packet(rng.randrange(1, 255), 0,
                                  bytes([rng.randrange(256)])))
            for i in range(200)
        ]
        partition = partition_records(records, 4)
        recovered = sorted(
            index for shard in partition.shards for index, _, _ in shard
        )
        assert recovered == list(range(200))

    def test_shards_preserve_record_order(self):
        rng = random.Random(3)
        records = [
            (i, float(i), _packet(64, 0, bytes([rng.randrange(4)])))
            for i in range(100)
        ]
        partition = partition_records(records, 3)
        for shard in partition.shards:
            indices = [index for index, _, _ in shard]
            assert indices == sorted(indices)

    def test_skew_of_empty_partition_is_zero(self):
        assert ShardPartition(num_shards=4).skew == 0.0

    def test_skew_detects_hot_shard(self):
        partition = ShardPartition(num_shards=2)
        hot = _packet(64, 0, b"hot")
        for i in range(10):
            partition.add(i, float(i), hot)
        assert partition.skew == pytest.approx(2.0)

    def test_min_capture_matches_detector_threshold(self):
        assert MIN_CAPTURE == 20


def _record_set(seed=0, count=300, lengths=(40,)):
    rng = random.Random(seed)
    records = []
    for i in range(count):
        if records and rng.random() < 0.3:
            body = bytearray(rng.choice(records)[2])
            body[8] = rng.randrange(256)
            body = bytes(body)
        else:
            body = rng.randbytes(rng.choice(lengths))
        records.append((i, i * 0.01, body))
    return records


class TestColumnarShardPartition:
    def test_skew_of_empty_partition_is_zero(self):
        assert ColumnarShardPartition(num_shards=4).skew == 0.0

    def _fill(self, num_shards, records, chunk_records=64):
        from repro.net.trace import TraceRecord

        partition = ColumnarShardPartition(num_shards=num_shards)
        for start in range(0, len(records), chunk_records):
            batch = records[start:start + chunk_records]
            chunk = ColumnarChunk.from_records(
                [TraceRecord(timestamp=t, data=d, wire_length=len(d))
                 for _, t, d in batch],
                base_index=start,
            )
            partition.add_chunk(chunk)
        return partition

    @pytest.mark.parametrize("num_shards", [1, 3, 4])
    def test_vectorized_placement_matches_scalar(
        self, num_shards, monkeypatch
    ):
        pytest.importorskip("numpy", exc_type=ImportError)
        records = _record_set()
        fast = self._fill(num_shards, records)
        monkeypatch.setattr(vectorize, "np", None)
        slow = self._fill(num_shards, records)
        assert fast.shard_sizes == slow.shard_sizes
        for shard in range(num_shards):
            assert bytes(fast._slabs[shard]) == bytes(slow._slabs[shard])
            assert fast._indices[shard] == slow._indices[shard]
            assert fast._timestamps[shard] == slow._timestamps[shard]
            assert list(fast._lengths[shard]) == list(slow._lengths[shard])

    def test_mixed_lengths_take_scalar_path_with_same_result(
        self, monkeypatch
    ):
        # Irregular chunks (no uniform stride) must fall back to the
        # per-record loop — and land every record identically.
        records = _record_set(seed=3, lengths=(20, 28, 40))
        fast = self._fill(4, records)
        monkeypatch.setattr(vectorize, "np", None)
        slow = self._fill(4, records)
        assert fast.shard_sizes == slow.shard_sizes
        for shard in range(4):
            assert bytes(fast._slabs[shard]) == bytes(slow._slabs[shard])

    def test_placement_matches_assign_contract(self):
        # Chunk-level CRC placement groups replicas exactly like the
        # per-record zlib.crc32 of the masked bytes.
        from zlib import crc32

        records = _record_set(seed=5)
        partition = self._fill(4, records)
        by_shard = {s: set(partition._indices[s]) for s in range(4)}
        for index, _, data in records:
            masked = bytearray(data)
            masked[8] = 0
            masked[10] = 0
            masked[11] = 0
            expected = crc32(bytes(masked)) % 4
            assert index in by_shard[expected]
