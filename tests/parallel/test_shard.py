"""Tests for deterministic key → shard assignment."""

import random

import pytest

from repro.core.replica import mask_mutable_fields
from repro.parallel.shard import (
    MIN_CAPTURE,
    ShardError,
    ShardPartition,
    assign_shard,
    partition_records,
    shard_key,
)


def _packet(ttl: int, checksum: int, payload: bytes = b"") -> bytes:
    header = bytearray(20)
    header[0] = 0x45
    header[8] = ttl
    header[10:12] = checksum.to_bytes(2, "big")
    header[12:16] = bytes([10, 0, 0, 1])
    header[16:20] = bytes([192, 0, 2, 7])
    return bytes(header) + payload


class TestShardKey:
    def test_replicas_share_a_key(self):
        a = _packet(ttl=60, checksum=0x1234, payload=b"data")
        b = _packet(ttl=55, checksum=0xBEEF, payload=b"data")
        assert shard_key(a) == shard_key(b)

    def test_key_matches_mask_equivalence(self):
        """Equal masks <=> equal shard keys, for any payload pair."""
        rng = random.Random(0)
        packets = [
            _packet(rng.randrange(1, 255), rng.randrange(65536),
                    bytes(rng.randrange(256) for _ in range(rng.randrange(8))))
            for _ in range(50)
        ]
        for a in packets:
            for b in packets:
                same_mask = mask_mutable_fields(a) == mask_mutable_fields(b)
                same_key = shard_key(a) == shard_key(b)
                assert same_mask == same_key

    def test_different_payloads_differ(self):
        a = _packet(ttl=60, checksum=0, payload=b"aaaa")
        b = _packet(ttl=60, checksum=0, payload=b"bbbb")
        assert shard_key(a) != shard_key(b)


class TestAssignShard:
    def test_replicas_land_in_same_shard(self):
        for num_shards in (1, 2, 3, 4, 7):
            a = _packet(ttl=60, checksum=0x1234, payload=b"xyz")
            b = _packet(ttl=42, checksum=0x9999, payload=b"xyz")
            assert assign_shard(a, num_shards) == assign_shard(b, num_shards)

    def test_within_range_and_deterministic(self):
        rng = random.Random(1)
        for _ in range(100):
            data = _packet(rng.randrange(1, 255), rng.randrange(65536),
                           bytes(rng.randrange(256) for _ in range(4)))
            shard = assign_shard(data, 4)
            assert 0 <= shard < 4
            assert assign_shard(data, 4) == shard

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ShardError):
            assign_shard(_packet(60, 0), 0)


class TestShardPartition:
    def test_short_records_never_reach_shards(self):
        partition = ShardPartition(num_shards=2)
        partition.add(0, 1.0, b"short")
        partition.add(1, 2.0, _packet(60, 0))
        assert partition.records_total == 2
        assert partition.records_short == 1
        assert sum(partition.shard_sizes) == 1

    def test_partition_covers_all_long_records(self):
        rng = random.Random(2)
        records = [
            (i, float(i), _packet(rng.randrange(1, 255), 0,
                                  bytes([rng.randrange(256)])))
            for i in range(200)
        ]
        partition = partition_records(records, 4)
        recovered = sorted(
            index for shard in partition.shards for index, _, _ in shard
        )
        assert recovered == list(range(200))

    def test_shards_preserve_record_order(self):
        rng = random.Random(3)
        records = [
            (i, float(i), _packet(64, 0, bytes([rng.randrange(4)])))
            for i in range(100)
        ]
        partition = partition_records(records, 3)
        for shard in partition.shards:
            indices = [index for index, _, _ in shard]
            assert indices == sorted(indices)

    def test_skew_of_empty_partition_is_one(self):
        assert ShardPartition(num_shards=4).skew == 1.0

    def test_skew_detects_hot_shard(self):
        partition = ShardPartition(num_shards=2)
        hot = _packet(64, 0, b"hot")
        for i in range(10):
            partition.add(i, float(i), hot)
        assert partition.skew == pytest.approx(2.0)

    def test_min_capture_matches_detector_threshold(self):
        assert MIN_CAPTURE == 20
