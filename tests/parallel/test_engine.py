"""Tests for the sharded parallel detection engine.

The load-bearing property is exactness: for any worker count, the
parallel engine must return byte-identical streams and loops to the
offline :class:`LoopDetector`.
"""

import random

import pytest

from repro.core.detector import DetectorConfig, LoopDetector
from repro.net.addr import IPv4Prefix
from repro.net.pcap import write_pcap
from repro.net.trace import Trace
from repro.parallel.engine import (
    ParallelError,
    ParallelLoopDetector,
    TraceSummary,
)
from repro.traffic.synthetic import SyntheticTraceBuilder


def stream_fingerprint(stream):
    return (
        stream.key,
        tuple((r.index, r.timestamp, r.ttl) for r in stream.replicas),
    )


def loop_fingerprint(loop):
    return (
        str(loop.prefix),
        tuple(stream_fingerprint(s) for s in loop.streams),
    )


def assert_identical(parallel_result, offline_result):
    assert ([stream_fingerprint(s) for s in parallel_result.candidate_streams]
            == [stream_fingerprint(s) for s in offline_result.candidate_streams])
    assert ([stream_fingerprint(s) for s in parallel_result.streams]
            == [stream_fingerprint(s) for s in offline_result.streams])
    assert ([loop_fingerprint(l) for l in parallel_result.loops]
            == [loop_fingerprint(l) for l in offline_result.loops])
    assert (parallel_result.looped_packet_count
            == offline_result.looped_packet_count)
    assert (parallel_result.validation.rejected_too_small
            == offline_result.validation.rejected_too_small)
    assert (parallel_result.validation.rejected_prefix_conflict
            == offline_result.validation.rejected_prefix_conflict)


@pytest.fixture(scope="module")
def mixed_trace():
    """Background plus several loops, including ones that merge and ones
    rejected by validation (a conflicting non-looped packet)."""
    builder = SyntheticTraceBuilder(rng=random.Random(7))
    prefixes = [
        IPv4Prefix((198 << 24) | (51 << 16) | (i << 8), 24) for i in range(8)
    ]
    builder.add_background(8000, 0.0, 300.0, prefixes=prefixes)
    for i in range(5):
        builder.add_loop(
            10.0 + i * 50.0,
            IPv4Prefix((192 << 24) | (i << 8), 24),
            n_packets=3,
            replicas_per_packet=6,
            spacing=0.01,
            packet_gap=0.012,
            entry_ttl=40,
        )
    # Two bursts to one prefix inside one merge gap -> they merge.
    merge_prefix = IPv4Prefix.parse("192.0.200.0/24")
    builder.add_loop(20.0, merge_prefix, n_packets=2, replicas_per_packet=5,
                     spacing=0.01, packet_gap=0.012, entry_ttl=40)
    builder.add_loop(40.0, merge_prefix, n_packets=2, replicas_per_packet=5,
                     spacing=0.01, packet_gap=0.012, entry_ttl=40)
    return builder.build()


@pytest.fixture(scope="module")
def offline_result(mixed_trace):
    return LoopDetector().detect(mixed_trace)


class TestExactEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_identical_to_offline(self, mixed_trace, offline_result, jobs):
        result = ParallelLoopDetector(jobs=jobs).detect(mixed_trace)
        assert_identical(result, offline_result)

    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_shard_count_does_not_change_results(
        self, mixed_trace, offline_result, shards
    ):
        result = ParallelLoopDetector(jobs=1, shards=shards).detect(mixed_trace)
        assert_identical(result, offline_result)

    def test_custom_config_propagates(self, mixed_trace):
        config = DetectorConfig(merge_gap=5.0, min_stream_size=4,
                                check_prefix_consistency=False,
                                check_gap_consistency=False)
        offline = LoopDetector(config).detect(mixed_trace)
        parallel = ParallelLoopDetector(config, jobs=2).detect(mixed_trace)
        assert_identical(parallel, offline)

    def test_scan_stats_match_offline_totals(self, mixed_trace,
                                             offline_result):
        result = ParallelLoopDetector(jobs=2).detect(mixed_trace)
        assert (result.scan_stats.records_scanned
                == offline_result.scan_stats.records_scanned)
        assert (result.scan_stats.records_skipped_short
                == offline_result.scan_stats.records_skipped_short)
        assert (result.scan_stats.candidate_streams
                == offline_result.scan_stats.candidate_streams)


class TestDetectFile:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_identical_to_offline_on_reread_trace(
        self, mixed_trace, tmp_path, jobs
    ):
        from repro.net.pcap import read_pcap

        path = tmp_path / "trace.pcap"
        write_pcap(mixed_trace, path)
        offline = LoopDetector().detect(read_pcap(path))
        result = ParallelLoopDetector(jobs=jobs).detect_file(
            path, chunk_records=1000
        )
        assert_identical(result, offline)

    def test_summary_matches_trace_metadata(self, mixed_trace, tmp_path):
        from repro.net.pcap import read_pcap

        path = tmp_path / "trace.pcap"
        write_pcap(mixed_trace, path)
        reread = read_pcap(path)
        result = ParallelLoopDetector(jobs=1).detect_file(path)
        summary = result.trace
        assert isinstance(summary, TraceSummary)
        assert len(summary) == len(reread)
        assert summary.duration == pytest.approx(reread.duration, abs=1e-6)
        assert summary.total_bytes == reread.total_bytes
        assert summary.average_bandwidth_bps() == pytest.approx(
            reread.average_bandwidth_bps(), rel=1e-6
        )


class TestEdgeCases:
    def test_empty_trace(self):
        result = ParallelLoopDetector(jobs=2).detect(Trace())
        assert result.candidate_streams == []
        assert result.loops == []
        assert result.parallel.records_total == 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(ParallelError):
            ParallelLoopDetector(jobs=0)
        with pytest.raises(ParallelError):
            ParallelLoopDetector(jobs=2, shards=0)

    def test_instrumentation_counters(self, mixed_trace):
        result = ParallelLoopDetector(jobs=2).detect(mixed_trace)
        stats = result.parallel
        assert stats.jobs == 2
        assert stats.shards == 2
        assert stats.records_total == len(mixed_trace)
        assert stats.wall_seconds > 0
        assert stats.records_per_sec > 0
        assert stats.shard_skew >= 1.0
        assert sum(s.records for s in stats.per_shard) == (
            stats.records_total - result.scan_stats.records_skipped_short
        )
        rendered = stats.render()
        assert "2 worker(s)" in rendered
        assert "Shard" in rendered

    def test_render_summary_accepts_parallel_result(self, mixed_trace):
        from repro.core.report import render_summary

        result = ParallelLoopDetector(jobs=1).detect(mixed_trace)
        text = render_summary(result)
        assert f"records: {len(mixed_trace)}" in text
