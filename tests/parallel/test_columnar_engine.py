"""Tests for the columnar slab fan-out in the parallel engine.

Exactness first — columnar sharding must produce byte-identical streams
and loops to the offline detector for every shard count and worker
count — then the perf contract: the slab payloads that actually cross
the process boundary must pickle smaller than the tuple-list payloads
they replace.
"""

import pickle
import random

import pytest

from repro.core.detector import DetectorConfig, LoopDetector
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarTrace
from repro.net.pcap import write_pcap
from repro.parallel.engine import ParallelLoopDetector
from repro.parallel.shard import (
    ColumnarShardPartition,
    ShardError,
    ShardPartition,
    assign_shard,
    rebuild_shard_chunk,
)
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def loop_trace():
    builder = SyntheticTraceBuilder(rng=random.Random(11))
    builder.add_background(500, 0.0, 60.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(5.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=3,
                     replicas_per_packet=6, spacing=0.01, entry_ttl=40)
    builder.add_loop(25.0, IPv4Prefix.parse("203.0.113.0/24"), n_packets=2,
                     replicas_per_packet=4, spacing=0.02, entry_ttl=50)
    return builder.build()


@pytest.fixture(scope="module")
def loop_ctrace(loop_trace):
    return ColumnarTrace.from_trace(loop_trace, chunk_records=97)


def _stream_fp(stream):
    return (
        stream.key,
        stream.first_data,
        tuple((r.index, r.timestamp, r.ttl) for r in stream.replicas),
    )


def _loop_fp(loop):
    return (str(loop.prefix),
            tuple(sorted(_stream_fp(s) for s in loop.streams)))


class TestColumnarShardPartition:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ShardError):
            ColumnarShardPartition(num_shards=0)

    def test_equal_masks_land_on_one_shard(self, loop_ctrace):
        partition = ColumnarShardPartition(num_shards=4)
        for chunk in loop_ctrace.chunks:
            partition.add_chunk(chunk)
        # Every replica of one packet must land on one shard: map each
        # record's mask to the shard holding it and check uniqueness.
        mask_to_shard = {}
        for shard_id in range(4):
            chunk = rebuild_shard_chunk(
                bytes(partition._slabs[shard_id]),
                partition._timestamps[shard_id],
                partition._lengths[shard_id],
            )
            for i in range(len(chunk)):
                data = chunk.record_bytes(i)
                masked = (data[:8] + b"\x00" + data[9:10] + b"\x00\x00"
                          + data[12:])
                assert mask_to_shard.setdefault(masked, shard_id) == shard_id

    def test_record_accounting_matches_tuple_partition(self, loop_ctrace,
                                                       loop_trace):
        columnar = ColumnarShardPartition(num_shards=3)
        for chunk in loop_ctrace.chunks:
            columnar.add_chunk(chunk)
        reference = ShardPartition(num_shards=3)
        for i, record in enumerate(loop_trace.records):
            reference.add(i, record.timestamp, record.data)
        assert columnar.records_total == reference.records_total
        assert columnar.records_short == reference.records_short
        assert sum(columnar.shard_sizes) == sum(reference.shard_sizes)

    def test_short_records_counted_not_shipped(self, loop_trace):
        from repro.net.trace import Trace, TraceRecord

        trace = Trace()
        trace.records.append(
            TraceRecord(timestamp=0.5, data=b"\x45" * 8, wire_length=8)
        )
        for record in loop_trace.records[:10]:
            trace.records.append(record)
        partition = ColumnarShardPartition(num_shards=2)
        for chunk in ColumnarTrace.from_trace(trace).chunks:
            partition.add_chunk(chunk)
        assert partition.records_total == 11
        assert partition.records_short == 1
        assert sum(partition.shard_sizes) == 10

    def test_payloads_round_trip_through_rebuild(self, loop_ctrace):
        partition = ColumnarShardPartition(num_shards=4)
        for chunk in loop_ctrace.chunks:
            partition.add_chunk(chunk)
        config = DetectorConfig()
        rebuilt_total = 0
        for shard_id, slab, timestamps, lengths, _ in \
                partition.payloads(config):
            chunk = rebuild_shard_chunk(slab, timestamps, lengths)
            assert len(chunk) == len(timestamps) == len(lengths)
            indices = partition.shard_global_indices(shard_id)
            assert len(indices) == len(chunk)
            # Offsets rebuilt from cumulative lengths cover the slab.
            last = len(chunk) - 1
            assert chunk.offsets[last] + chunk.lengths[last] == len(slab)
            rebuilt_total += len(chunk)
        assert rebuilt_total == sum(partition.shard_sizes)

    def test_payloads_narrow_lengths_to_uint16(self, loop_ctrace):
        partition = ColumnarShardPartition(num_shards=1)
        for chunk in loop_ctrace.chunks:
            partition.add_chunk(chunk)
        [(_, _, _, lengths, _)] = partition.payloads(DetectorConfig())
        assert lengths.typecode == "H"

    def test_fanout_bytes_exact_after_payloads(self, loop_ctrace):
        partition = ColumnarShardPartition(num_shards=2)
        for chunk in loop_ctrace.chunks:
            partition.add_chunk(chunk)
        nominal = partition.fanout_bytes
        payloads = partition.payloads(DetectorConfig())
        exact = partition.fanout_bytes
        assert exact == sum(
            len(slab) + 8 * len(ts) + lengths.itemsize * len(lengths)
            for _, slab, ts, lengths, _ in payloads
        )
        assert exact <= nominal  # 'H' narrowing only shrinks it

    def test_single_shard_skips_mask_hashing(self, loop_ctrace):
        # num_shards=1 routes everything to shard 0 without computing
        # masks; the payload must still carry every record.
        partition = ColumnarShardPartition(num_shards=1)
        for chunk in loop_ctrace.chunks:
            partition.add_chunk(chunk)
        assert partition.shard_sizes == [
            partition.records_total - partition.records_short
        ]

    def test_columnar_grouping_consistent_with_assign_shard(self,
                                                            loop_trace):
        # The zeroed-mask CRC and shard_key CRC differ per record, but
        # both must keep equal-mask records together: records that share
        # a tuple-partition shard key must share a columnar shard.
        partition = ColumnarShardPartition(num_shards=4)
        for chunk in ColumnarTrace.from_trace(loop_trace).chunks:
            partition.add_chunk(chunk)
        shard_of = {}
        for shard_id in range(4):
            for index in partition.shard_global_indices(shard_id):
                shard_of[index] = shard_id
        key_to_columnar_shard = {}
        for i, record in enumerate(loop_trace.records):
            if len(record.data) < 20:
                continue
            tuple_shard = assign_shard(record.data, 4)
            columnar_shard = shard_of[i]
            key = (tuple_shard, record.data[:8], record.data[9:10],
                   record.data[12:])
            assert key_to_columnar_shard.setdefault(
                key, columnar_shard
            ) == columnar_shard


class TestColumnarEngineExactness:
    def test_detect_columnar_matches_offline(self, loop_trace, loop_ctrace):
        offline = LoopDetector().detect(loop_trace)
        for shards in (1, 2, 4):
            parallel = ParallelLoopDetector(shards=shards).detect_columnar(
                loop_ctrace
            )
            assert ([_stream_fp(s) for s in parallel.candidate_streams]
                    == [_stream_fp(s) for s in offline.candidate_streams])
            assert ([_stream_fp(s) for s in parallel.streams]
                    == [_stream_fp(s) for s in offline.streams])
            assert ([_loop_fp(l) for l in parallel.loops]
                    == [_loop_fp(l) for l in offline.loops])

    def test_detect_columnar_matches_tuple_engine(self, loop_trace,
                                                  loop_ctrace):
        for shards in (1, 3):
            tuple_result = ParallelLoopDetector(shards=shards).detect(
                loop_trace
            )
            columnar_result = ParallelLoopDetector(
                shards=shards
            ).detect_columnar(loop_ctrace)
            assert ([_stream_fp(s) for s in columnar_result.streams]
                    == [_stream_fp(s) for s in tuple_result.streams])

    def test_detect_columnar_multiprocess(self, loop_trace, loop_ctrace):
        offline = LoopDetector().detect(loop_trace)
        parallel = ParallelLoopDetector(jobs=2, shards=4).detect_columnar(
            loop_ctrace
        )
        assert ([_stream_fp(s) for s in parallel.streams]
                == [_stream_fp(s) for s in offline.streams])
        assert ([_loop_fp(l) for l in parallel.loops]
                == [_loop_fp(l) for l in offline.loops])

    def test_detect_file_columnar_matches_reference_path(self, loop_trace,
                                                         tmp_path):
        path = tmp_path / "loop.pcap"
        write_pcap(loop_trace, path)
        reference = ParallelLoopDetector(shards=2).detect_file(
            path, columnar=False
        )
        columnar = ParallelLoopDetector(shards=2).detect_file(
            path, columnar=True
        )
        assert ([_stream_fp(s) for s in columnar.streams]
                == [_stream_fp(s) for s in reference.streams])
        assert ([_loop_fp(l) for l in columnar.loops]
                == [_loop_fp(l) for l in reference.loops])
        assert columnar.parallel.fanout_bytes > 0

    def test_engine_columnar_flag_routes_detect_file(self, loop_trace,
                                                     tmp_path):
        path = tmp_path / "loop.pcap"
        write_pcap(loop_trace, path)
        engine = ParallelLoopDetector(shards=2, columnar=True)
        result = engine.detect_file(path)
        assert isinstance(result.trace, ColumnarTrace)
        # Compare against offline on the *round-tripped* trace — pcap
        # quantizes timestamps to microseconds.
        from repro.net.pcap import read_pcap

        offline = LoopDetector().detect(read_pcap(path))
        assert ([_stream_fp(s) for s in result.streams]
                == [_stream_fp(s) for s in offline.streams])

    def test_custom_config_forwarded_to_workers(self, loop_trace,
                                                loop_ctrace):
        config = DetectorConfig(min_ttl_delta=3, min_stream_size=3)
        offline = LoopDetector(config).detect(loop_trace)
        parallel = ParallelLoopDetector(
            config, shards=3
        ).detect_columnar(loop_ctrace)
        assert ([_stream_fp(s) for s in parallel.streams]
                == [_stream_fp(s) for s in offline.streams])


class TestFanoutPayloadSize:
    def test_columnar_payloads_pickle_smaller_than_tuples(self, loop_trace,
                                                          loop_ctrace):
        """The perf contract: measured pickle.dumps of what actually
        crosses the process boundary, columnar vs tuple-list."""
        config = DetectorConfig()
        shards = 4

        tuple_partition = ShardPartition(num_shards=shards)
        for i, record in enumerate(loop_trace.records):
            tuple_partition.add(i, record.timestamp, record.data)
        tuple_bytes = sum(
            len(pickle.dumps((shard_id, shard, config),
                             protocol=pickle.HIGHEST_PROTOCOL))
            for shard_id, shard in enumerate(tuple_partition.shards)
            if shard
        )

        columnar_partition = ColumnarShardPartition(num_shards=shards)
        for chunk in loop_ctrace.chunks:
            columnar_partition.add_chunk(chunk)
        columnar_bytes = sum(
            len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            for payload in columnar_partition.payloads(config)
        )

        assert columnar_bytes < tuple_bytes
        # fanout_bytes tracks the measured payload closely (it excludes
        # only constant per-shard pickle framing).
        assert columnar_partition.fanout_bytes <= columnar_bytes
        assert columnar_bytes - columnar_partition.fanout_bytes < 4096

    def test_stats_report_columnar_fanout(self, loop_ctrace):
        result = ParallelLoopDetector(shards=2).detect_columnar(loop_ctrace)
        assert result.parallel.fanout_bytes > 0
        rendered = result.parallel.render()
        assert "fan-out payload" in rendered
