"""Tests for concurrent multi-trace batch runs."""

import random

import pytest

from repro.core.detector import DetectorConfig, LoopDetector
from repro.net.addr import IPv4Prefix
from repro.net.pcap import read_pcap, write_pcap
from repro.parallel.batch import (
    BatchError,
    classify_target,
    run_batch,
)
from repro.traffic.synthetic import SyntheticTraceBuilder


def _write_trace(path, seed, loops):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    builder.add_background(1500, 0.0, 60.0)
    for i in range(loops):
        builder.add_loop(5.0 + i * 20.0,
                         IPv4Prefix((192 << 24) | (i << 8), 24),
                         n_packets=2, replicas_per_packet=5, spacing=0.01,
                         packet_gap=0.012, entry_ttl=40)
    write_pcap(builder.build(), path)
    return path


class TestClassifyTarget:
    def test_existing_file_is_pcap(self, tmp_path):
        path = _write_trace(tmp_path / "a.pcap", 0, 1)
        assert classify_target(str(path)) == ("pcap", str(path))

    def test_scenario_name(self):
        assert classify_target("backbone1") == ("scenario", "backbone1")

    def test_unknown_target_rejected(self):
        with pytest.raises(BatchError):
            classify_target("not-a-scenario-or-file")


class TestRunBatch:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_pcap_batch_matches_individual_runs(self, tmp_path, jobs):
        paths = [
            str(_write_trace(tmp_path / f"t{i}.pcap", seed=i, loops=i + 1))
            for i in range(3)
        ]
        result = run_batch(paths, jobs=jobs)
        assert len(result.items) == 3
        detector = LoopDetector()
        for item, path in zip(result.items, paths):
            assert item.ok
            assert item.name == path
            expected = detector.detect(read_pcap(path))
            assert item.loops == expected.loop_count
            assert item.validated_streams == expected.stream_count
            assert item.looped_packets == expected.looped_packet_count
        assert result.total_loops == sum(i + 1 for i in range(3))

    def test_missing_file_fails_whole_call(self, tmp_path):
        with pytest.raises(BatchError):
            run_batch([str(tmp_path / "missing.pcap")])

    def test_per_trace_failure_is_isolated(self, tmp_path):
        good = str(_write_trace(tmp_path / "good.pcap", 1, 1))
        bad = tmp_path / "bad.pcap"
        bad.write_bytes(b"\x00" * 24)  # exists, but invalid magic
        result = run_batch([good, str(bad)], jobs=1)
        assert result.items[0].ok
        assert not result.items[1].ok
        assert "PcapError" in result.items[1].error
        assert result.failed == [result.items[1]]
        assert "error" in result.render()

    def test_config_propagates(self, tmp_path):
        path = str(_write_trace(tmp_path / "t.pcap", 2, 2))
        strict = run_batch([path], config=DetectorConfig(min_stream_size=9))
        lax = run_batch([path], config=DetectorConfig(min_stream_size=3))
        assert strict.items[0].validated_streams == 0
        assert lax.items[0].validated_streams > 0

    def test_scenario_batch(self):
        result = run_batch(["backbone1"], jobs=1, duration=20.0)
        item = result.items[0]
        assert item.ok
        assert item.kind == "scenario"
        assert item.records > 0

    def test_default_targets_are_table1(self):
        from repro.sim import TABLE1_SCENARIOS
        from repro.parallel.batch import classify_target

        for name in TABLE1_SCENARIOS:
            assert classify_target(name) == ("scenario", name)

    def test_rejects_bad_jobs(self):
        with pytest.raises(BatchError):
            run_batch(["backbone1"], jobs=0)

    def test_render_contains_totals(self, tmp_path):
        path = str(_write_trace(tmp_path / "t.pcap", 3, 1))
        text = run_batch([path]).render()
        assert "totals:" in text
        assert "Batch detection" in text
