"""Tests for the ICMP-echo probing baseline."""

import random

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.baselines.probing import PingProbe, ProbingError
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.failures import FailureSchedule
from repro.routing.forwarding import ForwardingEngine
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import line_topology, ring_topology

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
TARGET = IPv4Address.parse("192.0.2.9")


def _stack(topo, egress, seed=1):
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(seed))
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(seed + 1))
    bgp.originate(PREFIX, egress)
    igp.start()
    bgp.start()
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(seed + 2))
    return scheduler, igp, engine


class TestPingProbe:
    def test_all_delivered_on_healthy_network(self):
        topo = line_topology(3)
        scheduler, _, engine = _stack(topo, "R2")
        probe = PingProbe(engine, "R0", [TARGET], rate_pps=5.0,
                          bucket_width=5.0)
        probe.run(0.0, 20.0)
        scheduler.run(until=60.0)
        summary = probe.summary()
        # Float accumulation can land one probe just inside the window.
        assert summary.sent in (100, 101)
        assert summary.delivery_fraction == 1.0
        assert summary.peak_loss == 0.0

    def test_loss_spike_during_outage(self):
        topo = ring_topology(5)
        scheduler, igp, engine = _stack(topo, "R0")
        # Slow reconvergence: probes are lost while the detour settles.
        igp.timers.fib_update_delay = 1.5
        igp.timers.fib_update_jitter = 1.0
        probe = PingProbe(engine, "R2", [TARGET], rate_pps=10.0,
                          bucket_width=2.0)
        probe.run(0.0, 30.0)
        FailureSchedule().fail(10.0, "R0--R1").apply(topo, scheduler, igp)
        FailureSchedule().fail(10.0, "R0--R4").apply(topo, scheduler, igp)
        scheduler.run(until=120.0)
        summary = probe.summary()
        # Both links to the egress die: loss must spike to 100% in some
        # bucket (the prefix becomes unreachable).
        assert summary.peak_loss == 1.0
        assert summary.delivery_fraction < 1.0

    def test_mean_delay_recorded(self):
        topo = line_topology(4, propagation_delay=0.01)
        scheduler, _, engine = _stack(topo, "R3")
        probe = PingProbe(engine, "R0", [TARGET], rate_pps=2.0,
                          bucket_width=10.0)
        probe.run(0.0, 10.0)
        scheduler.run(until=60.0)
        summary = probe.summary()
        delays = list(summary.mean_delay_by_bucket.values())
        assert delays
        assert all(delay >= 0.03 for delay in delays)

    def test_round_robin_targets(self):
        topo = line_topology(2)
        scheduler, _, engine = _stack(topo, "R1")
        targets = [IPv4Address.parse("192.0.2.1"),
                   IPv4Address.parse("192.0.2.2")]
        probe = PingProbe(engine, "R0", targets, rate_pps=4.0)
        probe.run(0.0, 2.0)
        scheduler.run(until=30.0)
        dsts = {a.dst for a in engine.audits}
        assert dsts == set(targets)

    def test_validation(self):
        topo = line_topology(2)
        scheduler, _, engine = _stack(topo, "R1")
        with pytest.raises(ProbingError):
            PingProbe(engine, "R0", [], rate_pps=1.0)
        with pytest.raises(ProbingError):
            PingProbe(engine, "R0", [TARGET], rate_pps=0.0)
        probe = PingProbe(engine, "R0", [TARGET])
        with pytest.raises(ProbingError):
            probe.run(5.0, 5.0)
