"""Tests for the traceroute baseline."""

import random

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.baselines.traceroute import TracerouteBaseline, TracerouteError, TraceroutePath
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.failures import FailureSchedule
from repro.routing.forwarding import ForwardingEngine
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import line_topology, ring_topology

TARGET_PREFIX = IPv4Prefix.parse("192.0.2.0/24")
TARGET = IPv4Address.parse("192.0.2.50")


def _stack(topo, egress, seed=1):
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(seed))
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(seed + 1))
    bgp.originate(TARGET_PREFIX, egress)
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(seed + 2),
                              icmp_time_exceeded_probability=1.0)
    return scheduler, igp, bgp, engine


class TestTraceroutePath:
    def test_path_with_gaps(self):
        path = TraceroutePath(target=TARGET, started_at=0.0,
                              hops={1: IPv4Address.parse("10.0.0.1"),
                                    3: IPv4Address.parse("10.0.0.3")})
        assert path.path() == [IPv4Address.parse("10.0.0.1"), None,
                               IPv4Address.parse("10.0.0.3")]

    def test_loop_detection(self):
        a = IPv4Address.parse("10.0.0.1")
        b = IPv4Address.parse("10.0.0.2")
        assert TraceroutePath(TARGET, 0.0, {1: a, 2: b, 3: a}).has_loop()
        assert not TraceroutePath(TARGET, 0.0, {1: a, 2: b}).has_loop()

    def test_empty_path(self):
        path = TraceroutePath(TARGET, 0.0)
        assert path.path() == []
        assert not path.has_loop()


class TestProbing:
    def test_maps_stable_path(self):
        topo = line_topology(4)
        scheduler, igp, bgp, engine = _stack(topo, "R3")
        prober = TracerouteBaseline(engine, bgp, "R0", [TARGET],
                                    interval=30.0, max_ttl=6,
                                    rng=random.Random(5))
        igp.start()
        bgp.start()
        prober.run(1.0, 20.0)
        scheduler.run(until=60.0)
        assert len(prober.sessions) == 1
        session = prober.sessions[0]
        # The TTL-1 probe expires at the ingress router itself (it
        # decrements first), TTL-2 at the next hop, and so on.
        assert session.hops[1] == topo.loopback("R0")
        assert session.hops[2] == topo.loopback("R1")
        assert session.hops[3] == topo.loopback("R2")
        assert not session.has_loop()

    def test_periodic_sessions(self):
        topo = line_topology(3)
        scheduler, igp, bgp, engine = _stack(topo, "R2")
        prober = TracerouteBaseline(engine, bgp, "R0", [TARGET],
                                    interval=10.0, max_ttl=4,
                                    rng=random.Random(6))
        igp.start()
        bgp.start()
        prober.run(0.0, 35.0)
        scheduler.run(until=120.0)
        assert len(prober.sessions) == 4  # t = 0, 10, 20, 30

    def test_detects_loop_when_probing_during_convergence(self):
        topo = ring_topology(5, propagation_delay=0.002)
        scheduler, igp, bgp, engine = _stack(topo, "R0")
        # Slow the FIB path so the loop outlives a probe burst.
        igp.timers.fib_update_delay = 1.0
        igp.timers.fib_update_jitter = 2.0
        prober = TracerouteBaseline(engine, bgp, "R3", [TARGET],
                                    interval=0.5, max_ttl=10,
                                    probe_spacing=0.01,
                                    rng=random.Random(7))
        igp.start()
        bgp.start()
        FailureSchedule().fail(5.0, "R0--R4").apply(topo, scheduler, igp)
        prober.run(4.0, 10.0)
        scheduler.run(until=60.0)
        assert prober.loop_observations(), (
            "dense probing through a slow convergence window should "
            "catch the loop"
        )

    def test_misses_loop_with_sparse_probing(self):
        """Paxson-style sparse probing (minutes apart) misses a loop that
        lasts only a convergence window."""
        topo = ring_topology(5, propagation_delay=0.002)
        scheduler, igp, bgp, engine = _stack(topo, "R0")
        prober = TracerouteBaseline(engine, bgp, "R3", [TARGET],
                                    interval=120.0, max_ttl=10,
                                    rng=random.Random(8))
        igp.start()
        bgp.start()
        # Fail long after the only probe session completed.
        FailureSchedule().fail(30.0, "R0--R4").apply(topo, scheduler, igp)
        prober.run(1.0, 60.0)
        scheduler.run(until=200.0)
        assert not prober.loop_observations()

    def test_validation(self):
        topo = line_topology(2)
        scheduler, igp, bgp, engine = _stack(topo, "R1")
        with pytest.raises(TracerouteError):
            TracerouteBaseline(engine, bgp, "R0", [], interval=10.0)
        with pytest.raises(TracerouteError):
            TracerouteBaseline(engine, bgp, "R0", [TARGET], interval=0.0)
        with pytest.raises(TracerouteError):
            TracerouteBaseline(engine, bgp, "R0", [TARGET], max_ttl=0)
