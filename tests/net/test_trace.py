"""Tests for trace records and trace containers."""

import pytest

from repro.net.trace import SNAPLEN_40, Trace, TraceError, TraceRecord


class TestTraceRecord:
    def test_capture_truncates_to_snaplen(self, sample_tcp_packet):
        record = TraceRecord.capture(1.0, sample_tcp_packet, snaplen=40)
        assert len(record.data) == 40
        assert record.wire_length == len(sample_tcp_packet.pack())
        assert record.truncated

    def test_capture_small_packet_not_truncated(self, sample_udp_packet):
        record = TraceRecord.capture(1.0, sample_udp_packet, snaplen=200)
        assert not record.truncated
        assert len(record.data) == sample_udp_packet.ip.total_length

    def test_parse_round_trip(self, sample_udp_packet):
        record = TraceRecord.capture(0.5, sample_udp_packet, snaplen=200)
        parsed = record.parse()
        assert parsed.ip.dst == sample_udp_packet.ip.dst
        assert parsed.l4.dst_port == sample_udp_packet.l4.dst_port

    def test_wire_length_validation(self):
        with pytest.raises(TraceError):
            TraceRecord(timestamp=0.0, data=b"x" * 40, wire_length=20)


class TestTrace:
    def test_append_enforces_time_order(self, sample_tcp_packet):
        trace = Trace()
        trace.capture(2.0, sample_tcp_packet)
        with pytest.raises(TraceError):
            trace.capture(1.0, sample_tcp_packet)

    def test_equal_timestamps_allowed(self, sample_tcp_packet):
        trace = Trace()
        trace.capture(1.0, sample_tcp_packet)
        trace.capture(1.0, sample_tcp_packet)
        assert len(trace) == 2

    def test_duration_and_bounds(self, sample_tcp_packet):
        trace = Trace()
        trace.capture(10.0, sample_tcp_packet)
        trace.capture(25.0, sample_tcp_packet)
        assert trace.start_time == 10.0
        assert trace.end_time == 25.0
        assert trace.duration == 15.0

    def test_empty_trace_properties(self):
        trace = Trace()
        assert trace.empty
        assert trace.duration == 0.0
        with pytest.raises(TraceError):
            _ = trace.start_time

    def test_single_record_duration_zero(self, sample_tcp_packet):
        trace = Trace()
        trace.capture(5.0, sample_tcp_packet)
        assert trace.duration == 0.0

    def test_average_bandwidth(self, sample_tcp_packet):
        trace = Trace()
        trace.capture(0.0, sample_tcp_packet)
        trace.capture(1.0, sample_tcp_packet)
        wire_bytes = len(sample_tcp_packet.pack())
        assert trace.average_bandwidth_bps() == pytest.approx(
            2 * wire_bytes * 8 / 1.0
        )

    def test_time_slice_half_open(self, sample_tcp_packet):
        trace = Trace()
        for t in (0.0, 1.0, 2.0, 3.0):
            trace.capture(t, sample_tcp_packet)
        sliced = trace.time_slice(1.0, 3.0)
        assert [r.timestamp for r in sliced] == [1.0, 2.0]

    def test_filter(self, sample_tcp_packet, sample_udp_packet):
        trace = Trace(snaplen=200)
        trace.capture(0.0, sample_tcp_packet)
        trace.capture(1.0, sample_udp_packet)
        udp_only = trace.filter(lambda r: r.data[9] == 17)
        assert len(udp_only) == 1
        assert udp_only[0].timestamp == 1.0

    def test_merge_orders_records(self, sample_tcp_packet, sample_udp_packet):
        a = Trace()
        a.capture(0.0, sample_tcp_packet)
        a.capture(2.0, sample_tcp_packet)
        b = Trace()
        b.capture(1.0, sample_udp_packet)
        merged = Trace.merge([a, b], link_name="both")
        assert [r.timestamp for r in merged] == [0.0, 1.0, 2.0]
        assert merged.link_name == "both"

    def test_default_snaplen_is_40(self):
        assert Trace().snaplen == SNAPLEN_40

    def test_indexing_and_iteration(self, sample_tcp_packet):
        trace = Trace()
        trace.capture(0.0, sample_tcp_packet)
        assert trace[0].timestamp == 0.0
        assert [r.timestamp for r in trace] == [0.0]
