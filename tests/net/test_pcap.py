"""Tests for pcap file I/O."""

import struct

import pytest

from repro.net.pcap import (
    PcapError,
    PcapWarning,
    iter_pcap,
    iter_pcap_chunks,
    read_pcap,
    write_pcap,
)
from repro.net.trace import Trace


@pytest.fixture
def small_trace(sample_tcp_packet, sample_udp_packet) -> Trace:
    trace = Trace(link_name="test", snaplen=64)
    trace.capture(1000.000001, sample_tcp_packet)
    trace.capture(1000.5, sample_udp_packet)
    trace.capture(1001.25, sample_tcp_packet)
    return trace


class TestPcapRoundTrip:
    def test_round_trip_preserves_records(self, small_trace, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(small_trace, path)
        loaded = read_pcap(path, link_name="test")
        assert len(loaded) == len(small_trace)
        for original, loaded_record in zip(small_trace, loaded):
            assert loaded_record.data == original.data
            assert loaded_record.wire_length == original.wire_length
            assert loaded_record.timestamp == pytest.approx(
                original.timestamp, abs=1e-6
            )

    def test_round_trip_empty_trace(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(Trace(), path)
        assert len(read_pcap(path)) == 0

    def test_snaplen_preserved(self, small_trace, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(small_trace, path)
        assert read_pcap(path).snaplen == 64

    def test_microsecond_rollover(self, sample_tcp_packet, tmp_path):
        trace = Trace()
        trace.capture(9.9999999, sample_tcp_packet)  # rounds to 10.000000
        path = tmp_path / "roll.pcap"
        write_pcap(trace, path)
        loaded = read_pcap(path)
        assert loaded[0].timestamp == pytest.approx(10.0, abs=1e-6)


class TestPcapErrors:
    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_rejects_truncated_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_truncated_final_record_body_is_dropped_with_warning(
        self, small_trace, tmp_path
    ):
        path = tmp_path / "cut.pcap"
        write_pcap(small_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.warns(PcapWarning):
            trace = read_pcap(path)
        assert len(trace) == len(small_trace) - 1
        for original, loaded in zip(small_trace, trace):
            assert loaded.data == original.data

    def test_truncated_final_record_header_is_dropped_with_warning(
        self, small_trace, tmp_path
    ):
        path = tmp_path / "cut.pcap"
        write_pcap(small_trace, path)
        data = path.read_bytes()
        # Keep the global header, both full records, and 7 bytes of the
        # third record's 16-byte header.
        offset = 24
        for record in small_trace.records[:2]:
            offset += 16 + len(record.data)
        path.write_bytes(data[:offset + 7])
        with pytest.warns(PcapWarning):
            trace = read_pcap(path)
        assert len(trace) == 2

    def test_rejects_unknown_linktype(self, tmp_path):
        path = tmp_path / "link.pcap"
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 228)
        path.write_bytes(header)
        with pytest.raises(PcapError):
            read_pcap(path)


class TestPcapInterop:
    def test_reads_big_endian_files(self, sample_udp_packet, tmp_path):
        data = sample_udp_packet.pack()
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        record = struct.pack(">IIII", 100, 250000, len(data), len(data))
        path = tmp_path / "be.pcap"
        path.write_bytes(header + record + data)
        trace = read_pcap(path)
        assert len(trace) == 1
        assert trace[0].timestamp == pytest.approx(100.25)
        assert trace[0].data == data

    def test_reads_nanosecond_magic(self, sample_udp_packet, tmp_path):
        data = sample_udp_packet.pack()
        header = struct.pack("<IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 101)
        record = struct.pack("<IIII", 100, 500_000_000, len(data), len(data))
        path = tmp_path / "ns.pcap"
        path.write_bytes(header + record + data)
        trace = read_pcap(path)
        assert trace[0].timestamp == pytest.approx(100.5)

    def test_strips_ethernet_header(self, sample_udp_packet, tmp_path):
        ip_bytes = sample_udp_packet.pack()
        frame = b"\x00" * 12 + b"\x08\x00" + ip_bytes
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack("<IIII", 7, 0, len(frame), len(frame))
        path = tmp_path / "eth.pcap"
        path.write_bytes(header + record + frame)
        trace = read_pcap(path)
        assert trace[0].data == ip_bytes


class TestIterPcap:
    def test_iter_matches_read(self, small_trace, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(small_trace, path)
        loaded = read_pcap(path)
        streamed = list(iter_pcap(path))
        assert streamed == loaded.records

    def test_iter_empty_file(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(Trace(), path)
        assert list(iter_pcap(path)) == []

    def test_iter_warns_on_truncated_tail(self, small_trace, tmp_path):
        path = tmp_path / "cut.pcap"
        write_pcap(small_trace, path)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.warns(PcapWarning):
            streamed = list(iter_pcap(path))
        assert len(streamed) == len(small_trace) - 1

    def test_iter_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapError):
            list(iter_pcap(path))


class TestIterPcapChunks:
    @pytest.mark.parametrize("chunk_records", [1, 2, 3, 100])
    def test_chunks_round_trip(self, small_trace, tmp_path, chunk_records):
        path = tmp_path / "t.pcap"
        write_pcap(small_trace, path)
        loaded = read_pcap(path, link_name="test")
        chunks = list(iter_pcap_chunks(path, chunk_records=chunk_records,
                                       link_name="test"))
        assert all(len(c) <= chunk_records for c in chunks)
        assert all(len(c) == chunk_records for c in chunks[:-1])
        rebuilt = [record for chunk in chunks for record in chunk]
        assert rebuilt == loaded.records
        for chunk in chunks:
            assert chunk.snaplen == loaded.snaplen
            assert chunk.link_name == "test"

    def test_chunks_empty_file(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(Trace(), path)
        assert list(iter_pcap_chunks(path)) == []

    def test_rejects_bad_chunk_size(self, small_trace, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(small_trace, path)
        with pytest.raises(PcapError):
            list(iter_pcap_chunks(path, chunk_records=0))
