"""Tests for prefix-preserving anonymization."""

import random

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.anonymize import AnonymizerError, PrefixPreservingAnonymizer
from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.packet import IPPROTO_TCP, Packet
from repro.net.trace import TraceRecord

KEY = b"0123456789abcdef0123456789abcdef"


def _common_prefix_len(a: int, b: int) -> int:
    for i in range(32):
        shift = 31 - i
        if (a >> shift) & 1 != (b >> shift) & 1:
            return i
    return 32


class TestAddressMapping:
    def test_deterministic(self):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        address = IPv4Address.parse("192.0.2.55")
        assert anonymizer.anonymize_address(address) == (
            anonymizer.anonymize_address(address)
        )

    def test_different_keys_differ(self):
        a = PrefixPreservingAnonymizer(KEY)
        b = PrefixPreservingAnonymizer(b"another-secret-key-of-32-bytes!!")
        address = IPv4Address.parse("192.0.2.55")
        assert a.anonymize_address(address) != b.anonymize_address(address)

    def test_injective_on_sample(self):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        rng = random.Random(0)
        originals = {IPv4Address(rng.randrange(1 << 32)) for _ in range(500)}
        mapped = {anonymizer.anonymize_address(a) for a in originals}
        assert len(mapped) == len(originals)

    def test_prefix_preservation(self):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        rng = random.Random(1)
        for _ in range(100):
            a = rng.randrange(1 << 32)
            flip_at = rng.randrange(32)
            b = a ^ (1 << (31 - flip_at))  # differ first at bit flip_at
            mapped_a = anonymizer.anonymize_address(IPv4Address(a)).value
            mapped_b = anonymizer.anonymize_address(IPv4Address(b)).value
            assert _common_prefix_len(a, b) == _common_prefix_len(
                mapped_a, mapped_b
            )

    def test_key_length_enforced(self):
        with pytest.raises(AnonymizerError):
            PrefixPreservingAnonymizer(b"short")


class TestRecordRewriting:
    def test_addresses_rewritten_checksums_valid(self, sample_tcp_packet):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        record = TraceRecord.capture(1.0, sample_tcp_packet, snaplen=200)
        rewritten = anonymizer.anonymize_record(record)
        assert rewritten.data[12:16] != record.data[12:16]
        assert rewritten.data[16:20] != record.data[16:20]
        # IP header checksum still verifies.
        assert internet_checksum(rewritten.data[:20]) == 0

    def test_tcp_checksum_still_valid(self, sample_tcp_packet):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        record = TraceRecord.capture(1.0, sample_tcp_packet, snaplen=200)
        rewritten = anonymizer.anonymize_record(record)
        parsed = Packet.unpack(rewritten.data)
        segment = rewritten.data[20:]
        pseudo = pseudo_header(parsed.ip.src.packed, parsed.ip.dst.packed,
                               IPPROTO_TCP, len(segment))
        assert internet_checksum(pseudo + segment) == 0

    def test_everything_else_untouched(self, sample_tcp_packet):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        record = TraceRecord.capture(1.0, sample_tcp_packet, snaplen=200)
        rewritten = anonymizer.anonymize_record(record)
        before, after = record.data, rewritten.data
        changed = {i for i in range(len(before)) if before[i] != after[i]}
        # src (12-15), dst (16-19), IP checksum (10-11), TCP checksum
        # (36-37) only.
        assert changed <= {10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 36, 37}

    def test_short_record_passthrough(self):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        record = TraceRecord(timestamp=0.0, data=b"\x45\x00", wire_length=2)
        assert anonymizer.anonymize_record(record) is record

    def test_trace_rewriting(self, sample_tcp_packet, sample_udp_packet):
        from repro.net.trace import Trace

        anonymizer = PrefixPreservingAnonymizer(KEY)
        trace = Trace(snaplen=200)
        trace.capture(1.0, sample_tcp_packet)
        trace.capture(2.0, sample_udp_packet)
        rewritten = anonymizer.anonymize_trace(trace)
        assert len(rewritten) == 2
        assert [r.timestamp for r in rewritten] == [1.0, 2.0]
        assert rewritten.snaplen == 200
