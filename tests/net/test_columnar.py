"""Tests for the zero-copy columnar trace layer and the mmap reader.

The contract under test: the columnar pipeline loads *exactly* the
records the materializing reader loads — same timestamps, same bytes,
same wire lengths, same global numbering — for every byte order,
timestamp resolution, linktype, and damage mode the classic reader
handles.
"""

import struct
import warnings
from array import array

import pytest

from repro.net.columnar import ColumnarChunk, ColumnarError, ColumnarTrace
from repro.net.pcap import (
    PcapError,
    PcapWarning,
    iter_pcap,
    iter_pcap_columnar,
    read_pcap,
    read_pcap_columnar,
    write_pcap,
)
from repro.net.trace import Trace, TraceRecord
from repro.obs.metrics import MetricsRegistry, set_registry


@pytest.fixture
def small_trace(sample_tcp_packet, sample_udp_packet) -> Trace:
    trace = Trace(link_name="test", snaplen=64)
    trace.capture(1000.000001, sample_tcp_packet)
    trace.capture(1000.5, sample_udp_packet)
    trace.capture(1001.25, sample_tcp_packet)
    return trace


def _chunk(bodies, timestamps=None, base_index=0):
    """A compact chunk from raw record bodies."""
    slab = bytearray()
    offsets = array("Q")
    lengths = array("I")
    wire = array("I")
    for body in bodies:
        offsets.append(len(slab))
        lengths.append(len(body))
        wire.append(len(body))
        slab.extend(body)
    ts = array("d", timestamps or [float(i) for i in range(len(bodies))])
    return ColumnarChunk(
        data=bytes(slab), timestamps=ts, offsets=offsets,
        lengths=lengths, wire_lengths=wire, base_index=base_index,
    )


class TestColumnarChunk:
    def test_record_access(self):
        chunk = _chunk([b"aaaa", b"bb", b"cccccc"])
        assert len(chunk) == 3
        assert chunk.record_bytes(1) == b"bb"
        assert bytes(chunk.record_view(2)) == b"cccccc"
        assert chunk.global_index(2) == 2

    def test_explicit_indices_override_base(self):
        chunk = _chunk([b"aa", b"bb"])
        chunk.indices = array("Q", [7, 42])
        assert chunk.global_index(0) == 7
        assert chunk.global_index(1) == 42

    def test_base_index_offsets_numbering(self):
        chunk = _chunk([b"aa", b"bb"], base_index=100)
        assert [i for i, _, _ in chunk.iter_triples()] == [100, 101]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ColumnarError):
            ColumnarChunk(
                data=b"abc",
                timestamps=array("d", [0.0, 1.0]),
                offsets=array("Q", [0]),
                lengths=array("I", [3]),
            )

    def test_from_records_round_trip(self):
        records = [
            TraceRecord(timestamp=1.5, data=b"x" * 40, wire_length=1500),
            TraceRecord(timestamp=2.5, data=b"y" * 28, wire_length=28),
        ]
        chunk = ColumnarChunk.from_records(records)
        assert list(chunk.to_records()) == records

    def test_to_records_requires_wire_lengths(self):
        chunk = _chunk([b"aa"])
        chunk.wire_lengths = None
        with pytest.raises(ColumnarError):
            list(chunk.to_records())


class TestColumnarTrace:
    def test_summary_surface_matches_trace(self, sample_tcp_packet):
        trace = Trace(link_name="oc12", snaplen=64)
        for i in range(5):
            trace.capture(10.0 + i, sample_tcp_packet)
        ctrace = ColumnarTrace.from_trace(trace, chunk_records=2)
        assert len(ctrace.chunks) == 3
        assert len(ctrace) == len(trace)
        assert ctrace.start_time == trace.start_time
        assert ctrace.end_time == trace.end_time
        assert ctrace.duration == trace.duration
        assert ctrace.total_bytes == trace.total_bytes
        assert ctrace.average_bandwidth_bps() == pytest.approx(
            trace.average_bandwidth_bps()
        )

    def test_round_trip_to_trace(self, sample_tcp_packet, sample_udp_packet):
        trace = Trace(link_name="t", snaplen=64)
        trace.capture(1.0, sample_tcp_packet)
        trace.capture(2.0, sample_udp_packet)
        ctrace = ColumnarTrace.from_trace(trace)
        restored = ctrace.to_trace()
        assert restored.link_name == trace.link_name
        assert restored.snaplen == trace.snaplen
        assert restored.records == trace.records

    def test_empty_trace(self):
        ctrace = ColumnarTrace()
        assert ctrace.empty
        assert len(ctrace) == 0
        assert ctrace.duration == 0.0
        with pytest.raises(ColumnarError):
            ctrace.start_time


def _assert_same_records(ctrace, trace):
    """Record-for-record equality of the two representations."""
    materialized = ctrace.to_trace()
    assert len(materialized.records) == len(trace.records)
    for got, expected in zip(materialized.records, trace.records):
        assert got == expected


class TestColumnarReaderParity:
    """read_pcap_columnar loads exactly what read_pcap loads."""

    def test_little_endian_micro(self, small_trace, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(small_trace, path)
        _assert_same_records(read_pcap_columnar(path), read_pcap(path))

    def test_snaplen_and_link_name(self, small_trace, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(small_trace, path)
        ctrace = read_pcap_columnar(path, link_name="edge")
        assert ctrace.snaplen == 64
        assert ctrace.link_name == "edge"
        # Same default as read_pcap: empty unless the caller names it.
        assert read_pcap_columnar(path).link_name == ""

    def test_chunk_boundaries_preserve_numbering(self, small_trace,
                                                 tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(small_trace, path)
        chunks = list(iter_pcap_columnar(path, chunk_records=1))
        assert [c.base_index for c in chunks] == [0, 1, 2]
        flat = [t for c in chunks for t in c.iter_triples()]
        whole = read_pcap(path)
        assert [i for i, _, _ in flat] == [0, 1, 2]
        assert [d for _, _, d in flat] == [r.data for r in whole.records]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.pcap"
        path.write_bytes(b"")
        with pytest.raises(PcapError):
            read_pcap_columnar(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapError):
            list(iter_pcap_columnar(path))

    def test_records_only_no_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(PcapError):
            read_pcap_columnar(path)

    def test_header_only_file_is_empty(self, tmp_path):
        path = tmp_path / "hdr.pcap"
        write_pcap(Trace(), path)
        ctrace = read_pcap_columnar(path)
        assert ctrace.empty
        assert ctrace.snaplen == read_pcap(path).snaplen


def _write_exotic(path, magic, endian, records, snaplen=65535,
                  linktype=101):
    """Hand-build a pcap file in any byte order / resolution."""
    header = struct.pack(f"{endian}IHHiIII", magic, 2, 4, 0, 0, snaplen,
                         linktype)
    blob = bytearray(header)
    for seconds, fraction, captured, wire, body in records:
        blob += struct.pack(f"{endian}IIII", seconds, fraction, captured,
                            wire)
        blob += body
    path.write_bytes(bytes(blob))


class TestPcapEdgeCasesBothReaders:
    """Every edge case through read_pcap AND read_pcap_columnar."""

    MAGIC = 0xA1B2C3D4
    MAGIC_NS = 0xA1B23C4D

    def _both(self, path):
        trace = read_pcap(path)
        ctrace = read_pcap_columnar(path)
        _assert_same_records(ctrace, trace)
        return trace, ctrace

    def test_big_endian_magic(self, tmp_path):
        path = tmp_path / "be.pcap"
        body = bytes(range(40))
        _write_exotic(path, self.MAGIC, ">",
                      [(100, 250_000, 40, 1500, body)])
        trace, ctrace = self._both(path)
        assert trace[0].timestamp == pytest.approx(100.25)
        assert trace[0].data == body
        assert trace[0].wire_length == 1500

    def test_nanosecond_magic(self, tmp_path):
        path = tmp_path / "ns.pcap"
        body = bytes(40)
        _write_exotic(path, self.MAGIC_NS, "<",
                      [(7, 500_000_000, 40, 40, body)])
        trace, ctrace = self._both(path)
        assert trace[0].timestamp == pytest.approx(7.5)
        # Bit-identical float arithmetic, not merely approximate.
        assert ctrace.chunks[0].timestamps[0] == trace[0].timestamp

    def test_big_endian_nanosecond(self, tmp_path):
        path = tmp_path / "bens.pcap"
        _write_exotic(path, self.MAGIC_NS, ">",
                      [(1, 1, 24, 24, bytes(24))])
        trace, _ = self._both(path)
        assert trace[0].timestamp == pytest.approx(1.000000001)

    def test_ethernet_mac_header_stripped(self, tmp_path):
        path = tmp_path / "eth.pcap"
        mac = bytes(14)
        ip = bytes(range(2, 42))
        _write_exotic(path, self.MAGIC, "<",
                      [(5, 0, 54, 68, mac + ip)], linktype=1)
        trace, ctrace = self._both(path)
        assert trace[0].data == ip
        assert trace[0].wire_length == 54  # 68 - 14 MAC bytes

    def test_snaplen_shorter_than_wire_length(self, tmp_path):
        path = tmp_path / "cap.pcap"
        body = bytes(40)
        _write_exotic(path, self.MAGIC, "<",
                      [(1, 0, 40, 1500, body)], snaplen=40)
        trace, ctrace = self._both(path)
        assert trace[0].data == body
        assert trace[0].wire_length == 1500
        assert trace.snaplen == ctrace.snaplen == 40

    def test_zero_length_record_body(self, tmp_path):
        path = tmp_path / "zero.pcap"
        _write_exotic(path, self.MAGIC, "<",
                      [(1, 0, 0, 0, b""),
                       (2, 0, 40, 40, bytes(40))])
        trace, ctrace = self._both(path)
        assert trace[0].data == b""
        assert len(trace) == 2
        # Zero-length records still occupy a global index.
        assert ctrace.chunks[0].global_index(1) == 1

    def test_truncated_record_header_warns_on_mmap_path(
        self, small_trace, tmp_path
    ):
        path = tmp_path / "cuthdr.pcap"
        write_pcap(small_trace, path)
        data = path.read_bytes()
        # Keep the global header, both full records, and 7 bytes of the
        # third record's 16-byte header.
        offset = 24
        for record in small_trace.records[:2]:
            offset += 16 + len(record.data)
        path.write_bytes(data[:offset + 7])
        with pytest.warns(PcapWarning):
            trace = read_pcap(path)
        with pytest.warns(PcapWarning):
            ctrace = read_pcap_columnar(path)
        _assert_same_records(ctrace, trace)
        assert len(trace) == 2

    def test_truncated_record_body_warns_on_mmap_path(
        self, small_trace, tmp_path
    ):
        path = tmp_path / "cutbody.pcap"
        write_pcap(small_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.warns(PcapWarning):
            trace = read_pcap(path)
        with pytest.warns(PcapWarning):
            ctrace = read_pcap_columnar(path)
        _assert_same_records(ctrace, trace)
        assert len(trace) == len(small_trace) - 1

    def test_truncation_counted_in_metrics(self, small_trace, tmp_path):
        path = tmp_path / "cut.pcap"
        write_pcap(small_trace, path)
        path.write_bytes(path.read_bytes()[:-5])
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PcapWarning)
                read_pcap_columnar(path)
            counter = registry.counter("pcap_truncated_records_total")
            assert counter.value == 1
        finally:
            set_registry(previous)


class TestIterPcapShortRecords:
    def test_short_records_skipped_and_counted(self, tmp_path):
        path = tmp_path / "short.pcap"
        _write_exotic(path, 0xA1B2C3D4, "<", [
            (1, 0, 40, 40, bytes(40)),
            (2, 0, 8, 8, bytes(8)),       # below a full IP header
            (3, 0, 0, 0, b""),            # zero-length body
            (4, 0, 20, 20, bytes(20)),    # exactly one IP header: kept
        ])
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
        try:
            records = list(iter_pcap(path))
            assert [len(r.data) for r in records] == [40, 20]
            counter = registry.counter("pcap_short_records_skipped_total")
            assert counter.value == 2
        finally:
            set_registry(previous)

    def test_read_pcap_still_materializes_short_records(self, tmp_path):
        path = tmp_path / "short.pcap"
        _write_exotic(path, 0xA1B2C3D4, "<", [
            (1, 0, 8, 8, bytes(8)),
            (2, 0, 40, 40, bytes(40)),
        ])
        # The materializing reader keeps them (indices must line up);
        # only the streaming iterator filters.
        assert len(read_pcap(path)) == 2
        assert len(list(iter_pcap(path))) == 1
