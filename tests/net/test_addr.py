"""Tests for IPv4 addresses and prefixes."""

import random

import pytest

from repro.net.addr import AddressError, IPv4Address, IPv4Prefix


class TestIPv4Address:
    def test_parse_round_trip(self):
        address = IPv4Address.parse("192.0.2.1")
        assert str(address) == "192.0.2.1"
        assert address.value == 0xC0000201

    def test_parse_extremes(self):
        assert IPv4Address.parse("0.0.0.0").value == 0
        assert IPv4Address.parse("255.255.255.255").value == 0xFFFFFFFF

    @pytest.mark.parametrize(
        "text", ["1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", "", "1..2.3",
                 "-1.2.3.4"]
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            IPv4Address.parse(text)

    def test_value_range_checked(self):
        with pytest.raises(AddressError):
            IPv4Address(-1)
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_octets_and_from_octets(self):
        address = IPv4Address.from_octets(10, 20, 30, 40)
        assert address.octets == (10, 20, 30, 40)
        assert str(address) == "10.20.30.40"

    def test_from_octets_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Address.from_octets(256, 0, 0, 0)

    def test_packed_round_trip(self):
        address = IPv4Address.parse("203.0.113.45")
        assert IPv4Address.from_bytes(address.packed) == address
        assert len(address.packed) == 4

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(AddressError):
            IPv4Address.from_bytes(b"\x01\x02\x03")

    def test_ordering_and_hashing(self):
        a = IPv4Address.parse("10.0.0.1")
        b = IPv4Address.parse("10.0.0.2")
        assert a < b
        assert len({a, b, IPv4Address.parse("10.0.0.1")}) == 2

    def test_classful_predicates(self):
        assert IPv4Address.parse("10.0.0.1").is_class_a()
        assert IPv4Address.parse("150.1.2.3").is_class_b()
        assert IPv4Address.parse("192.0.2.1").is_class_c()
        assert IPv4Address.parse("223.255.255.255").is_class_c()
        assert IPv4Address.parse("224.0.0.1").is_multicast()
        assert not IPv4Address.parse("224.0.0.1").is_class_c()

    def test_slash24(self):
        address = IPv4Address.parse("192.0.2.99")
        assert str(address.slash24()) == "192.0.2.0/24"

    def test_int_conversion(self):
        assert int(IPv4Address.parse("0.0.0.7")) == 7


class TestIPv4Prefix:
    def test_parse_round_trip(self):
        prefix = IPv4Prefix.parse("10.1.0.0/16")
        assert str(prefix) == "10.1.0.0/16"
        assert prefix.length == 16

    def test_parse_rejects_host_bits(self):
        with pytest.raises(AddressError):
            IPv4Prefix.parse("10.1.0.1/16")

    @pytest.mark.parametrize("text", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            IPv4Prefix.parse(text)

    def test_containing_masks_host_bits(self):
        prefix = IPv4Prefix.containing(IPv4Address.parse("192.0.2.200"), 24)
        assert str(prefix) == "192.0.2.0/24"

    def test_contains(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        assert prefix.contains(IPv4Address.parse("192.0.2.255"))
        assert not prefix.contains(IPv4Address.parse("192.0.3.0"))

    def test_zero_length_prefix_contains_everything(self):
        default = IPv4Prefix.parse("0.0.0.0/0")
        assert default.contains(IPv4Address.parse("255.1.2.3"))
        assert default.num_addresses == 1 << 32

    def test_slash32(self):
        host = IPv4Prefix.containing(IPv4Address.parse("10.0.0.1"), 32)
        assert host.num_addresses == 1
        assert host.contains(IPv4Address.parse("10.0.0.1"))
        assert not host.contains(IPv4Address.parse("10.0.0.2"))

    def test_broadcast_address(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        assert str(prefix.broadcast_address) == "192.0.2.255"

    def test_overlaps(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("10.5.0.0/16")
        c = IPv4Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_subnets(self):
        subnets = list(IPv4Prefix.parse("10.0.0.0/30").subnets(32))
        assert len(subnets) == 4
        assert str(subnets[0]) == "10.0.0.0/32"
        assert str(subnets[-1]) == "10.0.0.3/32"

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(IPv4Prefix.parse("10.0.0.0/24").subnets(16))

    def test_random_address_inside(self):
        prefix = IPv4Prefix.parse("198.51.100.0/24")
        rng = random.Random(0)
        for _ in range(50):
            assert prefix.contains(prefix.random_address(rng))

    def test_ordering(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("10.0.0.0/16")
        assert a < b  # same network, shorter first
