"""Tests for the RFC 1071 checksum and incremental updates."""

import pytest

from repro.net.checksum import (
    incremental_update,
    internet_checksum,
    pseudo_header,
    verify_checksum,
)


class TestInternetChecksum:
    def test_rfc1071_worked_example(self):
        # The classic example from RFC 1071 section 3.
        data = bytes((0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7))
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_empty_input(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_padding(self):
        # Odd input is padded with a zero byte on the right.
        assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")

    def test_verify_with_embedded_checksum(self):
        data = b"\x45\x00\x00\x28" * 4
        checksum = internet_checksum(data)
        full = data + checksum.to_bytes(2, "big")
        assert verify_checksum(full)

    def test_verify_detects_corruption(self):
        data = b"\x45\x00\x00\x28" * 4
        checksum = internet_checksum(data)
        full = bytearray(data + checksum.to_bytes(2, "big"))
        full[0] ^= 0xFF
        assert not verify_checksum(bytes(full))

    def test_carry_folding(self):
        # Many 0xFFFF words force repeated carry folds.
        assert internet_checksum(b"\xff\xff" * 1000) == 0


class TestIncrementalUpdate:
    def test_matches_full_recompute_for_ttl_change(self):
        # Decrementing the TTL is the canonical RFC 1624 use case.
        header = bytearray(
            b"\x45\x00\x00\x54\x12\x34\x00\x00\x40\x06\x00\x00"
            b"\x0a\x00\x00\x01\xc0\x00\x02\x09"
        )
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        old_word = (header[8] << 8) | header[9]
        header[8] -= 1  # TTL decrement
        new_word = (header[8] << 8) | header[9]
        updated = incremental_update(checksum, old_word, new_word)
        header[10:12] = b"\x00\x00"
        assert updated == internet_checksum(bytes(header))

    def test_identity_update(self):
        assert incremental_update(0x1234, 0x5678, 0x5678) == 0x1234

    @pytest.mark.parametrize("bad", [-1, 0x10000])
    def test_rejects_out_of_range_checksum(self, bad):
        with pytest.raises(ValueError):
            incremental_update(bad, 0, 0)

    def test_rejects_out_of_range_words(self):
        with pytest.raises(ValueError):
            incremental_update(0, 0x10000, 0)


class TestPseudoHeader:
    def test_layout(self):
        pseudo = pseudo_header(b"\x0a\x00\x00\x01", b"\xc0\x00\x02\x01",
                               6, 20)
        assert len(pseudo) == 12
        assert pseudo[8] == 0
        assert pseudo[9] == 6
        assert pseudo[10:12] == (20).to_bytes(2, "big")

    def test_rejects_bad_addresses(self):
        with pytest.raises(ValueError):
            pseudo_header(b"\x0a", b"\xc0\x00\x02\x01", 6, 20)

    def test_rejects_bad_protocol(self):
        with pytest.raises(ValueError):
            pseudo_header(b"\x00" * 4, b"\x00" * 4, 300, 20)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            pseudo_header(b"\x00" * 4, b"\x00" * 4, 6, -5)


class TestIncrementalEqualsFullForAllTtls:
    def test_every_ttl_decrement_255_to_1(self):
        # The forwarding fast path patches the checksum with RFC 1624 at
        # every hop; a packet entering at TTL 255 can be patched 254
        # times before expiry, and each intermediate checksum must equal
        # a from-scratch RFC 1071 recompute or the emitted trace bytes
        # would diverge from the reference engine's.
        header = bytearray(
            b"\x45\x00\x00\x54\x12\x34\x00\x00\xff\x11\x00\x00"
            b"\x0a\x00\x00\x01\xc0\x00\x02\x09"
        )
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        for ttl in range(255, 1, -1):
            old_word = (header[8] << 8) | header[9]
            header[8] = ttl - 1
            new_word = (header[8] << 8) | header[9]
            checksum = incremental_update(checksum, old_word, new_word)
            header[10:12] = b"\x00\x00"
            assert checksum == internet_checksum(bytes(header)), (
                f"diverged at TTL {ttl} -> {ttl - 1}"
            )
            header[10:12] = checksum.to_bytes(2, "big")
            assert verify_checksum(bytes(header))

    def test_zero_checksum_corner(self):
        # Craft a word change whose correct updated checksum is 0x0000;
        # unnormalized RFC 1624 folding must reproduce exactly what the
        # full recompute emits for that data.
        data = bytearray(b"\xff\xff\x00\x00")
        checksum = internet_checksum(bytes(data))
        old_word = 0x0000
        new_word = 0xFFFF
        data[2:4] = b"\xff\xff"
        updated = incremental_update(checksum, old_word, new_word)
        assert updated == internet_checksum(bytes(data))
