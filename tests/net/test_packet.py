"""Tests for the packet model: headers, checksums, wire round-trips."""

import pytest

from repro.net.addr import IPv4Address
from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.packet import (
    ICMP_TIME_EXCEEDED,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IcmpHeader,
    IPv4Header,
    Packet,
    PacketError,
    TcpFlags,
    TcpHeader,
    UdpHeader,
    icmp_time_exceeded,
)


def _addr(text: str) -> IPv4Address:
    return IPv4Address.parse(text)


class TestIPv4Header:
    def test_pack_length_and_version(self):
        header = IPv4Header(src=_addr("10.0.0.1"), dst=_addr("10.0.0.2"))
        wire = header.pack()
        assert len(wire) == 20
        assert wire[0] == 0x45

    def test_checksum_computed_and_valid(self):
        header = IPv4Header(src=_addr("10.0.0.1"), dst=_addr("10.0.0.2"),
                            ttl=64, identification=99)
        wire = header.pack()
        assert internet_checksum(wire) == 0

    def test_unpack_round_trip(self):
        header = IPv4Header(src=_addr("172.16.5.5"), dst=_addr("192.0.2.9"),
                            ttl=77, protocol=IPPROTO_UDP,
                            identification=0xBEEF, tos=0x10,
                            flags=0x2, fragment_offset=100)
        parsed = IPv4Header.unpack(header.pack())
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.ttl == 77
        assert parsed.protocol == IPPROTO_UDP
        assert parsed.identification == 0xBEEF
        assert parsed.tos == 0x10
        assert parsed.flags == 0x2
        assert parsed.fragment_offset == 100
        assert parsed.header_valid()

    def test_explicit_checksum_emitted_verbatim(self):
        header = IPv4Header(src=_addr("10.0.0.1"), dst=_addr("10.0.0.2"),
                            checksum=0xDEAD)
        wire = header.pack()
        assert wire[10:12] == b"\xde\xad"
        assert not IPv4Header.unpack(wire).header_valid()

    def test_ttl_field_position(self):
        header = IPv4Header(src=_addr("1.1.1.1"), dst=_addr("2.2.2.2"),
                            ttl=123)
        assert header.pack()[8] == 123

    def test_unpack_rejects_short_input(self):
        with pytest.raises(PacketError):
            IPv4Header.unpack(b"\x45\x00")

    def test_unpack_rejects_non_ipv4(self):
        wire = bytearray(IPv4Header(src=_addr("1.1.1.1"),
                                    dst=_addr("2.2.2.2")).pack())
        wire[0] = 0x65  # version 6
        with pytest.raises(PacketError):
            IPv4Header.unpack(bytes(wire))

    def test_unpack_rejects_options(self):
        wire = bytearray(IPv4Header(src=_addr("1.1.1.1"),
                                    dst=_addr("2.2.2.2")).pack())
        wire[0] = 0x46  # ihl 6
        with pytest.raises(PacketError):
            IPv4Header.unpack(bytes(wire))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ttl": 256},
            {"ttl": -1},
            {"identification": 0x10000},
            {"protocol": 300},
            {"total_length": 10},
            {"flags": 8},
            {"fragment_offset": 0x2000},
        ],
    )
    def test_field_validation(self, kwargs):
        with pytest.raises(PacketError):
            IPv4Header(src=_addr("1.1.1.1"), dst=_addr("2.2.2.2"), **kwargs)


class TestTcpHeader:
    def test_pack_needs_addresses_for_checksum(self):
        tcp = TcpHeader(src_port=1234, dst_port=80)
        with pytest.raises(PacketError):
            tcp.pack()

    def test_round_trip(self):
        tcp = TcpHeader(src_port=1234, dst_port=80, seq=111, ack=222,
                        flags=TcpFlags.SYN | TcpFlags.ACK, window=4096,
                        urgent=7)
        wire = tcp.pack(_addr("10.0.0.1"), _addr("10.0.0.2"), b"payload")
        parsed = TcpHeader.unpack(wire)
        assert parsed.src_port == 1234
        assert parsed.dst_port == 80
        assert parsed.seq == 111
        assert parsed.ack == 222
        assert parsed.flags == TcpFlags.SYN | TcpFlags.ACK
        assert parsed.window == 4096
        assert parsed.urgent == 7

    def test_checksum_covers_pseudo_header_and_payload(self):
        tcp = TcpHeader(src_port=5, dst_port=6)
        src, dst = _addr("10.0.0.1"), _addr("10.0.0.2")
        payload = b"hello world!"
        wire = tcp.pack(src, dst, payload)
        pseudo = pseudo_header(src.packed, dst.packed, IPPROTO_TCP,
                               len(wire) + len(payload))
        assert internet_checksum(pseudo + wire + payload) == 0

    def test_checksum_differs_for_different_payloads(self):
        tcp = TcpHeader(src_port=5, dst_port=6)
        src, dst = _addr("10.0.0.1"), _addr("10.0.0.2")
        wire_a = tcp.pack(src, dst, b"payload-a")
        wire_b = tcp.pack(src, dst, b"payload-b")
        assert wire_a[16:18] != wire_b[16:18]

    def test_port_validation(self):
        with pytest.raises(PacketError):
            TcpHeader(src_port=-1, dst_port=80)
        with pytest.raises(PacketError):
            TcpHeader(src_port=80, dst_port=70000)


class TestUdpHeader:
    def test_round_trip(self):
        udp = UdpHeader(src_port=53, dst_port=5353)
        wire = udp.pack(_addr("10.0.0.1"), _addr("10.0.0.2"), b"abc")
        parsed = UdpHeader.unpack(wire)
        assert parsed.src_port == 53
        assert parsed.dst_port == 5353

    def test_zero_checksum_becomes_ffff(self):
        # RFC 768: a computed checksum of zero is sent as all-ones.
        udp = UdpHeader(src_port=0, dst_port=0, length=8)
        # Find a payload yielding checksum 0 is fiddly; instead check the
        # invariant on the packed result: never 0 when computed.
        wire = udp.pack(_addr("0.0.0.0"), _addr("0.0.0.0"), b"")
        assert wire[6:8] != b"\x00\x00"

    def test_length_validation(self):
        with pytest.raises(PacketError):
            UdpHeader(src_port=1, dst_port=2, length=4)


class TestIcmpHeader:
    def test_round_trip(self):
        icmp = IcmpHeader(icmp_type=8, code=0, identifier=42, sequence=7)
        parsed = IcmpHeader.unpack(icmp.pack())
        assert parsed.icmp_type == 8
        assert parsed.identifier == 42
        assert parsed.sequence == 7

    def test_checksum_covers_payload(self):
        icmp = IcmpHeader(icmp_type=8)
        wire_a = icmp.pack(payload=b"aaaa")
        wire_b = icmp.pack(payload=b"bbbb")
        assert wire_a[2:4] != wire_b[2:4]

    def test_type_validation(self):
        with pytest.raises(PacketError):
            IcmpHeader(icmp_type=256)


class TestPacket:
    def test_build_fixes_total_length(self, sample_tcp_packet):
        expected = 20 + 20 + len(sample_tcp_packet.payload)
        assert sample_tcp_packet.ip.total_length == expected

    def test_build_fixes_udp_length(self, sample_udp_packet):
        assert sample_udp_packet.l4.length == 8 + len(
            sample_udp_packet.payload
        )

    def test_pack_unpack_round_trip(self, sample_tcp_packet):
        wire = sample_tcp_packet.pack()
        parsed = Packet.unpack(wire)
        assert parsed.ip.src == sample_tcp_packet.ip.src
        assert parsed.l4.src_port == sample_tcp_packet.l4.src_port
        assert parsed.payload == sample_tcp_packet.payload

    def test_unpack_truncated_keeps_partial_payload(self, sample_tcp_packet):
        wire = sample_tcp_packet.pack()[:40]
        parsed = Packet.unpack(wire)
        assert parsed.l4 is not None  # 40 bytes cover IP + TCP headers
        assert parsed.payload == b""

    def test_unpack_strict_rejects_truncation(self, sample_tcp_packet):
        wire = sample_tcp_packet.pack()[:40]
        with pytest.raises(PacketError):
            Packet.unpack(wire, allow_truncated=False)

    def test_forwarded_changes_only_ttl_and_checksum(self, sample_tcp_packet):
        before = sample_tcp_packet.pack()
        after = sample_tcp_packet.forwarded(3).pack()
        assert len(before) == len(after)
        diff = [i for i in range(len(before)) if before[i] != after[i]]
        assert set(diff) <= {8, 10, 11}
        assert after[8] == before[8] - 3

    def test_forwarded_rejects_ttl_exhaustion(self, sample_tcp_packet):
        with pytest.raises(PacketError):
            sample_tcp_packet.forwarded(sample_tcp_packet.ip.ttl + 1)

    def test_l4_checksum_exposed(self, sample_udp_packet):
        wire = sample_udp_packet.pack()
        parsed = Packet.unpack(wire)
        assert parsed.l4_checksum == int.from_bytes(wire[26:28], "big")


class TestIcmpTimeExceeded:
    def test_reply_shape(self, sample_tcp_packet):
        router = _addr("10.99.99.1")
        reply = icmp_time_exceeded(sample_tcp_packet, router,
                                   identification=5)
        assert reply.ip.src == router
        assert reply.ip.dst == sample_tcp_packet.ip.src
        assert reply.ip.protocol == IPPROTO_ICMP
        assert reply.l4.icmp_type == ICMP_TIME_EXCEEDED

    def test_quotes_original_header_and_8_bytes(self, sample_tcp_packet):
        reply = icmp_time_exceeded(sample_tcp_packet, _addr("10.99.99.1"))
        quoted = reply.payload
        assert quoted[:20] == sample_tcp_packet.ip.pack()
        assert len(quoted) == 28

    def test_quoted_identification_recoverable(self, sample_tcp_packet):
        reply = icmp_time_exceeded(sample_tcp_packet, _addr("10.99.99.1"))
        quoted_id = int.from_bytes(reply.payload[4:6], "big")
        assert quoted_id == sample_tcp_packet.ip.identification
