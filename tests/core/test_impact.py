"""Tests for the loss/delay impact analysis."""

import random

import pytest

from repro.net.addr import IPv4Prefix
from repro.core.detector import LoopDetector
from repro.core.impact import (
    delay_impact_from_engine,
    escape_analysis,
    loss_impact_from_engine,
)
from repro.routing.forwarding import PacketFate
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


class TestEscapeAnalysis:
    def _streams(self, *, entry_ttl, replicas, ttl_delta=2):
        builder = SyntheticTraceBuilder(rng=random.Random(0))
        builder.add_loop(1.0, PREFIX, ttl_delta=ttl_delta, n_packets=1,
                         replicas_per_packet=replicas, spacing=0.02,
                         entry_ttl=entry_ttl)
        return LoopDetector().detect(builder.build()).streams

    def test_expired_packet_classified(self):
        # TTL 10, delta 2: replicas at 10,8,6,4,2 — last TTL 2 <= delta,
        # the packet died in the loop.
        streams = self._streams(entry_ttl=10, replicas=5)
        analysis = escape_analysis(streams)
        assert analysis.expired == 1
        assert analysis.escaped == 0
        assert analysis.expiry_fraction == 1.0

    def test_escaped_packet_classified(self):
        # TTL 40 but only 5 replicas: stream stops with TTL 32 > delta —
        # the packet left the loop alive.
        streams = self._streams(entry_ttl=40, replicas=5)
        analysis = escape_analysis(streams)
        assert analysis.escaped == 1
        assert analysis.expired == 0
        assert analysis.escape_fraction == 1.0

    def test_extra_delay_at_least_stream_duration(self):
        streams = self._streams(entry_ttl=40, replicas=5)
        analysis = escape_analysis(streams)
        duration = streams[0].duration
        assert analysis.extra_delay_cdf.min >= duration

    def test_empty_input(self):
        analysis = escape_analysis([])
        assert analysis.total_streams == 0
        assert analysis.escape_fraction == 0.0
        assert analysis.extra_delay_cdf.empty


class TestEngineImpact:
    @pytest.fixture(scope="class")
    def run(self):
        from tests.conftest import small_sim

        return small_sim(seed=11, duration=90.0)

    def test_loss_impact_shapes(self, run):
        impact = loss_impact_from_engine(run.engine)
        assert 0.0 <= impact.overall_loss_fraction <= 1.0
        assert impact.overall_loop_loss_fraction <= impact.overall_loss_fraction
        assert 0.0 <= impact.peak_loop_share_of_loss <= 1.0
        assert impact.peak_loop_loss_rate <= 1.0

    def test_loop_loss_matches_fate_counts(self, run):
        impact = loss_impact_from_engine(run.engine)
        assert impact.loop_loss_by_minute.total == (
            run.engine.fate_counts[PacketFate.TTL_EXPIRED]
        )

    def test_packets_by_minute_total(self, run):
        impact = loss_impact_from_engine(run.engine)
        assert impact.packets_by_minute.total == run.engine.packets_injected

    def test_delay_impact(self, run):
        impact = delay_impact_from_engine(run.engine)
        assert impact.mean_normal_delay > 0.0
        assert impact.escaped_count == len(
            run.engine.looped_delivered_delays
        )
        if impact.escaped_count:
            # Escaped-loop packets were delayed beyond the normal transit.
            assert impact.mean_extra_delay >= 0.0
