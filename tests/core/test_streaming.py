"""Tests for the streaming (online) detector."""

import random

import pytest

from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
OTHER = IPv4Prefix.parse("198.51.100.0/24")


def _loop_trace(seed=0, loops=2, background=500):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    builder.add_background(background, 0.0, 400.0, prefixes=[OTHER])
    for i in range(loops):
        builder.add_loop(20.0 + i * 150.0, PREFIX, n_packets=3,
                         replicas_per_packet=6, spacing=0.01,
                         packet_gap=0.012, entry_ttl=40)
    return builder.build()


def _compare(trace, config=None):
    offline = LoopDetector(config).detect(trace)
    streaming = StreamingLoopDetector(config)
    online_loops = streaming.process_trace(trace)
    return offline, online_loops, streaming


def _loop_key(loop):
    return (loop.prefix, round(loop.start, 6), round(loop.end, 6),
            loop.stream_count, loop.replica_count)


class TestEquivalenceWithOffline:
    def test_synthetic_trace(self):
        trace = _loop_trace()
        offline, online, _ = _compare(trace)
        assert sorted(map(_loop_key, online)) == sorted(
            map(_loop_key, offline.loops)
        )

    def test_clean_trace_detects_nothing(self):
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_background(1000, 0.0, 100.0)
        trace = builder.build()
        offline, online, streaming = _compare(trace)
        assert online == []
        assert offline.loop_count == 0
        assert streaming.stats.loops_emitted == 0

    def test_duplicates_rejected(self):
        builder = SyntheticTraceBuilder(rng=random.Random(2))
        builder.add_background(200, 0.0, 60.0, prefixes=[OTHER])
        for i in range(10):
            builder.add_duplicate_pair(5.0 + i * 3.0)
        trace = builder.build()
        _, online, _ = _compare(trace)
        assert online == []

    def test_prefix_conflict_rejected(self):
        builder = SyntheticTraceBuilder(rng=random.Random(3))
        builder.add_loop(10.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_background(1, 10.02, 10.03, prefixes=[PREFIX])
        trace = builder.build()
        offline, online, streaming = _compare(trace)
        assert offline.loop_count == 0
        assert online == []
        assert streaming.stats.streams_rejected_conflict == 1

    def test_merge_gap_respected(self):
        trace = _loop_trace(loops=2)  # episodes 150 s apart
        config = DetectorConfig(merge_gap=200.0)
        offline, online, _ = _compare(trace, config)
        assert offline.loop_count == 1
        assert len(online) == 1

    def test_simulated_trace(self):
        from tests.conftest import small_sim

        run = small_sim(seed=11, duration=90.0)
        offline, online, _ = _compare(run.trace)
        assert sorted(map(_loop_key, online)) == sorted(
            map(_loop_key, offline.loops)
        )

    def test_singleton_in_merge_window_defers_close(self):
        """Hypothesis-found regression: the second episode's first
        replica is still an unchained singleton when the open loop's
        merge deadline fires.  Closing then splits what offline merges —
        the loop must stay open until the singleton resolves."""
        builder = SyntheticTraceBuilder(rng=random.Random(0))
        for when in (10.0, 10.0 + 2 * 12.375):
            builder.add_loop(when, IPv4Prefix.parse("192.0.0.0/24"),
                             ttl_delta=2, n_packets=2,
                             replicas_per_packet=9, spacing=0.28125,
                             packet_gap=0.5625, entry_ttl=18)
        trace = builder.build()
        config = DetectorConfig(merge_gap=22.0)
        offline, online, _ = _compare(trace, config)
        # The episodes sit just inside the merge gap: one loop, both ways.
        assert offline.loop_count == 1
        assert sorted(map(_loop_key, online)) == sorted(
            map(_loop_key, offline.loops)
        )


class TestStreamingBehaviour:
    def test_loops_emitted_incrementally(self):
        trace = _loop_trace(loops=2)
        streaming = StreamingLoopDetector()
        emitted_during = []
        for record in trace:
            emitted_during.extend(
                streaming.process(record.timestamp, record.data)
            )
        # The first episode (t≈20) closes during the feed: the second
        # episode starts 150 s later, past the 60 s merge gap.
        assert len(emitted_during) >= 1
        tail = streaming.flush()
        assert len(emitted_during) + len(tail) == 2

    def test_callback_invoked(self):
        trace = _loop_trace(loops=1)
        seen = []
        streaming = StreamingLoopDetector(on_loop=seen.append)
        streaming.process_trace(trace)
        assert len(seen) == 1
        assert seen[0].prefix == PREFIX

    def test_out_of_order_records_rejected(self):
        streaming = StreamingLoopDetector()
        streaming.process(5.0, b"\x00" * 20)
        with pytest.raises(ValueError):
            streaming.process(4.0, b"\x00" * 20)

    def test_short_records_counted(self):
        streaming = StreamingLoopDetector()
        streaming.process(1.0, b"\x45\x00")
        assert streaming.stats.skipped_short == 1

    def test_flush_is_idempotent(self):
        trace = _loop_trace(loops=1)
        streaming = StreamingLoopDetector()
        streaming.process_trace(trace)
        assert streaming.flush() == []

    def test_memory_bounded_state(self):
        """After quiet time passes, per-prefix state is pruned."""
        builder = SyntheticTraceBuilder(rng=random.Random(4))
        builder.add_background(60_000, 0.0, 6000.0, prefixes=[OTHER])
        trace = builder.build()
        streaming = StreamingLoopDetector()
        streaming.process_trace(trace)
        # History is pruned to the sliding horizon at worst every
        # 20k records, so retained state stays far below the feed size.
        total_history = sum(
            len(entries) for entries in streaming._history.values()
        )
        assert total_history < 21_000
