"""Tests for text rendering of tables and figures."""

import random

import pytest

from repro.net.addr import IPv4Prefix
from repro.core.analysis import (
    traffic_type_distribution,
    ttl_delta_distribution,
)
from repro.core.detector import LoopDetector
from repro.core.report import (
    format_table,
    render_cdf,
    render_destination_classes,
    render_distribution,
    render_summary,
    render_table1,
    render_table2,
    render_traffic_types,
)
from repro.stats.cdf import EmpiricalCdf
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


@pytest.fixture
def detection():
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    builder.add_background(50, 0.0, 30.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(5.0, PREFIX, n_packets=2, replicas_per_packet=5,
                     spacing=0.01, packet_gap=0.012, entry_ttl=40)
    return LoopDetector().detect(builder.build())


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table


class TestRenderers:
    def test_table1(self, detection):
        text = render_table1({"backbone1": detection})
        assert "Table I" in text
        assert "backbone1" in text
        assert str(len(detection.trace)) in text

    def test_table2(self, detection):
        text = render_table2({"t": detection})
        assert "Table II" in text
        assert str(detection.stream_count) in text
        assert str(detection.loop_count) in text

    def test_render_distribution(self, detection):
        text = render_distribution(
            ttl_delta_distribution(detection.streams), "Fig 2"
        )
        assert "Fig 2" in text
        assert "1.000" in text  # all streams delta 2

    def test_render_traffic_types(self, detection):
        text = render_traffic_types(
            traffic_type_distribution(detection.trace), "Fig 5"
        )
        assert "TCP" in text
        assert "MCAST" in text

    def test_render_cdf(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        text = render_cdf(cdf, "Fig X", unit=" s")
        assert "p50" in text
        assert "Fig X" in text
        assert "4 s" in text

    def test_render_cdf_empty(self):
        text = render_cdf(EmpiricalCdf.from_samples([]), "Empty")
        assert "no samples" in text

    def test_render_destination_classes(self, detection):
        text = render_destination_classes(detection)
        assert "Figure 7" in text

    def test_render_summary(self, detection):
        text = render_summary(detection)
        assert "routing loops: 1" in text
        assert "validated streams: 2" in text
