"""Equivalence tests: batched columnar step-1 kernel vs the reference.

The columnar kernel must be *behaviourally indistinguishable* from
``detect_replicas_indexed`` fed the same records — same streams, same
replica indices, same keys, same first_data bytes — on synthetic loop
traces, pcap round trips, and through the full three-step pipeline.
"""

import random

import pytest

from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.replica import (
    ReplicaScanStats,
    detect_replicas,
    detect_replicas_columnar,
    detect_replicas_indexed,
)
from repro.core.streaming import StreamingLoopDetector
from repro.core.streams import PrefixIndex
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarTrace
from repro.net.pcap import read_pcap, read_pcap_columnar, write_pcap
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def loop_trace():
    builder = SyntheticTraceBuilder(rng=random.Random(7))
    builder.add_background(400, 0.0, 60.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(5.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=3,
                     replicas_per_packet=6, spacing=0.01, entry_ttl=40)
    builder.add_loop(20.0, IPv4Prefix.parse("203.0.113.0/24"), n_packets=2,
                     replicas_per_packet=4, spacing=0.02, entry_ttl=50)
    return builder.build()


def _assert_streams_equal(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert a.key == b.key
        assert a.first_data == b.first_data
        assert a.src == b.src
        assert a.dst == b.dst
        assert a.protocol == b.protocol
        assert a.replicas == b.replicas


class TestColumnarKernelEquivalence:
    def test_matches_reference_on_synthetic_trace(self, loop_trace):
        ctrace = ColumnarTrace.from_trace(loop_trace)
        _assert_streams_equal(
            detect_replicas_columnar(ctrace.chunks),
            detect_replicas(loop_trace),
        )

    def test_matches_across_chunk_boundaries(self, loop_trace):
        reference = detect_replicas(loop_trace)
        for chunk_records in (1, 7, 100, 65_536):
            ctrace = ColumnarTrace.from_trace(loop_trace,
                                              chunk_records=chunk_records)
            _assert_streams_equal(
                detect_replicas_columnar(ctrace.chunks), reference
            )

    def test_matches_through_pcap_mmap_reader(self, loop_trace, tmp_path):
        path = tmp_path / "loop.pcap"
        write_pcap(loop_trace, path)
        ctrace = read_pcap_columnar(path)
        trace = read_pcap(path)
        _assert_streams_equal(
            detect_replicas_columnar(ctrace.chunks),
            detect_replicas(trace),
        )

    def test_matches_on_loop_free_trace(self):
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_background(200, 0.0, 30.0)
        trace = builder.build()
        ctrace = ColumnarTrace.from_trace(trace)
        streams = detect_replicas_columnar(ctrace.chunks)
        assert streams == detect_replicas(trace) == []

    def test_accepts_columnar_trace_directly(self, loop_trace):
        ctrace = ColumnarTrace.from_trace(loop_trace)
        _assert_streams_equal(
            detect_replicas_columnar(ctrace),
            detect_replicas_columnar(ctrace.chunks),
        )

    def test_parameters_forwarded(self, loop_trace):
        ctrace = ColumnarTrace.from_trace(loop_trace)
        for kwargs in ({"min_ttl_delta": 3}, {"max_replica_gap": 0.005}):
            _assert_streams_equal(
                detect_replicas_columnar(ctrace.chunks, **kwargs),
                detect_replicas(loop_trace, **kwargs),
            )

    def test_scan_stats_match(self, loop_trace):
        ctrace = ColumnarTrace.from_trace(loop_trace)
        ref_stats = ReplicaScanStats()
        col_stats = ReplicaScanStats()
        detect_replicas(loop_trace, stats=ref_stats)
        detect_replicas_columnar(ctrace.chunks, stats=col_stats)
        assert col_stats.records_scanned == ref_stats.records_scanned
        assert col_stats.records_skipped_short == \
            ref_stats.records_skipped_short
        assert col_stats.candidate_streams == ref_stats.candidate_streams

    def test_eviction_cadence_matches_reference(self, loop_trace):
        ctrace = ColumnarTrace.from_trace(loop_trace, chunk_records=37)
        for interval in (10, 113, 0):
            ref_stats = ReplicaScanStats()
            col_stats = ReplicaScanStats()
            _assert_streams_equal(
                detect_replicas_columnar(ctrace.chunks,
                                         eviction_interval=interval,
                                         stats=col_stats),
                detect_replicas(loop_trace, eviction_interval=interval,
                                stats=ref_stats),
            )
            assert col_stats.singletons_evicted == \
                ref_stats.singletons_evicted

    def test_mixed_regular_and_irregular_chunks(self, loop_trace):
        # Strip the stride declaration from every other chunk so the
        # same stream keys chain across the bulk-masked path and the
        # per-record fallback — a singleton stored by one path must be
        # promotable by the other.
        import dataclasses

        reference = detect_replicas(loop_trace)
        for chunk_records in (5, 37):
            ctrace = ColumnarTrace.from_trace(loop_trace,
                                              chunk_records=chunk_records)
            mixed = [
                dataclasses.replace(chunk, stride=None) if i % 2 else chunk
                for i, chunk in enumerate(ctrace.chunks)
            ]
            _assert_streams_equal(detect_replicas_columnar(mixed), reference)

    def test_sharded_subset_carries_global_indices(self, loop_trace):
        # Feeding only a subset (with original indices) must produce
        # streams whose member indices line up with the full trace — the
        # property the parallel engine depends on.
        reference = detect_replicas(loop_trace)
        keep = {i for stream in reference for i in stream.member_indices()}
        subset = [(i, r.timestamp, r.data)
                  for i, r in enumerate(loop_trace.records) if i in keep]
        _assert_streams_equal(detect_replicas_indexed(subset), reference)


class TestFullPipelineEquivalence:
    def test_detect_columnar_matches_detect(self, loop_trace):
        detector = LoopDetector()
        reference = detector.detect(loop_trace)
        columnar = detector.detect_columnar(
            ColumnarTrace.from_trace(loop_trace)
        )
        _assert_streams_equal(columnar.streams, reference.streams)
        assert len(columnar.loops) == len(reference.loops)
        for a, b in zip(columnar.loops, reference.loops):
            assert a.prefix == b.prefix
            assert a.start == b.start
            assert a.end == b.end
            assert a.replica_count == b.replica_count

    def test_detect_columnar_with_custom_config(self, loop_trace):
        config = DetectorConfig(min_stream_size=3, prefix_length=16)
        detector = LoopDetector(config)
        reference = detector.detect(loop_trace)
        columnar = detector.detect_columnar(
            ColumnarTrace.from_trace(loop_trace)
        )
        _assert_streams_equal(columnar.streams, reference.streams)


class TestStreamingColumnarEquivalence:
    def test_process_trace_columnar_matches_process_trace(self, loop_trace):
        reference = StreamingLoopDetector().process_trace(loop_trace)
        columnar = StreamingLoopDetector().process_trace_columnar(
            ColumnarTrace.from_trace(loop_trace, chunk_records=53)
        )
        assert len(columnar) == len(reference)
        for a, b in zip(columnar, reference):
            assert a.prefix == b.prefix
            assert a.start == b.start
            assert a.end == b.end
            assert a.replica_count == b.replica_count


class TestPrefixIndexChunked:
    def test_add_chunk_matches_add_record(self, loop_trace):
        ctrace = ColumnarTrace.from_trace(loop_trace, chunk_records=41)
        by_record = PrefixIndex(prefix_length=24)
        for i, record in enumerate(loop_trace.records):
            by_record.add_record(i, record.timestamp, record.data)
        by_chunk = PrefixIndex(prefix_length=24)
        for chunk in ctrace.chunks:
            by_chunk.add_chunk(chunk)
        assert by_chunk._by_prefix == by_record._by_prefix
        for stream in detect_replicas(loop_trace):
            prefix = stream.dst_prefix(24)
            assert (by_chunk.records_in_window(prefix, 0.0, 120.0)
                    == by_record.records_in_window(prefix, 0.0, 120.0))
