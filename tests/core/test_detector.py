"""Tests for the detector facade."""

import random

import pytest

from repro.net.addr import IPv4Prefix
from repro.core.detector import DetectionResult, DetectorConfig, DetectorError, LoopDetector
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
OTHER = IPv4Prefix.parse("198.51.100.0/24")


def _trace(seed=0, loops=2, background=200):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    builder.add_background(background, 0.0, 100.0, prefixes=[OTHER])
    for i in range(loops):
        builder.add_loop(10.0 + i * 30.0, PREFIX, n_packets=3,
                         replicas_per_packet=5, spacing=0.01,
                         packet_gap=0.012, entry_ttl=40)
    return builder.build()


class TestConfig:
    def test_defaults_match_paper(self):
        config = DetectorConfig()
        assert config.min_ttl_delta == 2
        assert config.min_stream_size == 3
        assert config.prefix_length == 24
        assert config.merge_gap == 60.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_ttl_delta": 0},
            {"min_stream_size": 1},
            {"prefix_length": 33},
            {"prefix_length": 4},
            {"merge_gap": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(DetectorError):
            DetectorConfig(**kwargs)


class TestPipeline:
    def test_full_pipeline_counts(self):
        result = LoopDetector().detect(_trace(loops=2))
        assert isinstance(result, DetectionResult)
        assert len(result.candidate_streams) == 6
        assert result.stream_count == 6
        assert result.looped_packet_count == 6
        assert result.looped_record_count == 30
        # 30-second spacing < 60 s gap and the prefix is quiet between:
        # one merged loop.
        assert result.loop_count == 1

    def test_smaller_merge_gap_splits_loops(self):
        config = DetectorConfig(merge_gap=10.0)
        result = LoopDetector(config).detect(_trace(loops=2))
        assert result.loop_count == 2

    def test_clean_trace_detects_nothing(self):
        result = LoopDetector().detect(_trace(loops=0))
        assert result.stream_count == 0
        assert result.loop_count == 0

    def test_scan_stats_populated(self):
        trace = _trace()
        result = LoopDetector().detect(trace)
        assert result.scan_stats.records_scanned == len(trace)
        assert result.scan_stats.candidate_streams == 6

    def test_validation_disabled_config(self):
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_background(1, 1.02, 1.03, prefixes=[PREFIX])
        trace = builder.build()
        strict = LoopDetector().detect(trace)
        assert strict.stream_count == 0
        lax = LoopDetector(
            DetectorConfig(check_prefix_consistency=False,
                           check_gap_consistency=False)
        ).detect(trace)
        assert lax.stream_count == 1

    def test_detect_is_deterministic(self):
        trace = _trace(seed=5)
        a = LoopDetector().detect(trace)
        b = LoopDetector().detect(trace)
        assert a.stream_count == b.stream_count
        assert [l.start for l in a.loops] == [l.start for l in b.loops]

    def test_empty_trace(self):
        from repro.net.trace import Trace

        result = LoopDetector().detect(Trace())
        assert result.stream_count == 0
        assert result.loop_count == 0

    def test_prefix_length_16_groups_wider(self):
        """With /16 validation, two /24s in one /16 merge into one loop."""
        builder = SyntheticTraceBuilder(rng=random.Random(2))
        a = IPv4Prefix.parse("192.0.2.0/24")
        b = IPv4Prefix.parse("192.0.3.0/24")
        builder.add_loop(1.0, a, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_loop(1.2, b, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        trace = builder.build()
        per24 = LoopDetector().detect(trace)
        assert per24.loop_count == 2
        per16 = LoopDetector(DetectorConfig(prefix_length=16)).detect(trace)
        assert per16.loop_count == 1
