"""Tests for the streaming detector's chunk-level batched tier.

``process_chunk`` must be byte-identical to a record-by-record
``process`` feed — same loops, stats, eviction cadence, and state
snapshots — whether a chunk takes the vectorized fast tier or degrades
to the per-record fallback.
"""

import random
from dataclasses import asdict
from types import SimpleNamespace

import pytest

from repro.core import vectorize
from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarChunk, ColumnarTrace
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
OTHER = IPv4Prefix.parse("198.51.100.0/24")

needs_numpy = pytest.mark.skipif(
    not vectorize.HAVE_NUMPY, reason="batched tier requires numpy"
)


def _loop_trace(seed=0, loops=2, background=500, span=400.0):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    builder.add_background(background, 0.0, span, prefixes=[OTHER])
    for i in range(loops):
        builder.add_loop(20.0 + i * 150.0, PREFIX, n_packets=3,
                         replicas_per_packet=6, spacing=0.01,
                         packet_gap=0.012, entry_ttl=40)
    return builder.build()


def _loop_key(loop):
    return (loop.prefix, round(loop.start, 6), round(loop.end, 6),
            loop.stream_count, loop.replica_count)


def _feed_per_record(trace, config=None):
    detector = StreamingLoopDetector(config)
    loops = []
    for record in trace:
        loops.extend(detector.process(record.timestamp, record.data))
    return detector, loops


def _feed_chunked(trace, chunk_records, config=None):
    detector = StreamingLoopDetector(config)
    loops = []
    for chunk in ColumnarTrace.from_trace(trace, chunk_records).chunks:
        loops.extend(detector.process_chunk(chunk))
    return detector, loops


def _assert_identical(trace, chunk_records, config=None):
    ref, ref_loops = _feed_per_record(trace, config)
    fast, fast_loops = _feed_chunked(trace, chunk_records, config)
    # Pre-flush state must match too, not just the final loop set.
    assert fast.state_snapshot() == ref.state_snapshot()
    fast_loops.extend(fast.flush())
    ref_loops.extend(ref.flush())
    assert list(map(_loop_key, fast_loops)) \
        == list(map(_loop_key, ref_loops))
    assert asdict(fast.stats) == asdict(ref.stats)
    assert fast.state_snapshot() == ref.state_snapshot()
    return fast_loops


class TestEquivalence:
    @needs_numpy
    @pytest.mark.parametrize("chunk_records", [64, 256, 4096])
    def test_chunked_feed_matches_per_record(self, chunk_records):
        loops = _assert_identical(_loop_trace(), chunk_records)
        assert len(loops) == 2

    @needs_numpy
    def test_mid_chunk_evictions(self):
        # Sparse background across a long span: singleton deadlines
        # expire mid-chunk, exercising the arithmetic eviction against
        # the sidecar's ascending deadline column.
        trace = _loop_trace(seed=5, loops=1, background=2000,
                            span=4000.0)
        _assert_identical(trace, 256)

    @needs_numpy
    def test_cross_chunk_streams_promote(self):
        # Replica spacing ~ chunk boundary: a loop's streams straddle
        # chunks, so sidecar singletons from chunk k must be promoted
        # when chunk k+1 presents the matching key.
        trace = _loop_trace(seed=9, loops=2)
        loops = _assert_identical(trace, 48)
        assert len(loops) == 2

    @needs_numpy
    def test_offline_detector_agrees(self):
        trace = _loop_trace(seed=3)
        detector, loops = _feed_chunked(trace, 128)
        loops.extend(detector.flush())
        offline = LoopDetector().detect(trace)
        assert sorted(map(_loop_key, loops)) \
            == sorted(map(_loop_key, offline.loops))

    @needs_numpy
    def test_custom_config_flows_through(self):
        config = DetectorConfig(merge_gap=200.0)
        loops = _assert_identical(_loop_trace(), 256, config)
        assert len(loops) == 1  # 150 s apart: merged under the big gap

    def test_fallback_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vectorize, "HAVE_NUMPY", False)
        loops = _assert_identical(_loop_trace(), 256)
        assert len(loops) == 2


class TestTierSelection:
    @needs_numpy
    def test_batched_tier_parks_singletons(self):
        trace = _loop_trace(seed=1, loops=0, background=200, span=60.0)
        detector = StreamingLoopDetector()
        detector.process_chunk(ColumnarTrace.from_trace(trace).chunks[0])
        assert detector._bulk_batches  # sidecar engaged, not _singletons

    @needs_numpy
    def test_tiny_chunks_take_the_fallback(self):
        trace = _loop_trace(seed=1, loops=0, background=31, span=10.0)
        detector = StreamingLoopDetector()
        chunk = ColumnarTrace.from_trace(trace).chunks[0]
        assert len(chunk) < 32
        detector.process_chunk(chunk)
        assert not detector._bulk_batches

    @needs_numpy
    def test_irregular_chunks_take_the_fallback(self):
        trace = _loop_trace(seed=1, loops=0, background=64, span=20.0)
        chunk = ColumnarTrace.from_trace(trace).chunks[0]
        irregular = ColumnarChunk(
            data=chunk.data, timestamps=chunk.timestamps,
            offsets=chunk.offsets, lengths=chunk.lengths,
            base_index=chunk.base_index, stride=None,
        )
        detector = StreamingLoopDetector()
        detector.process_chunk(irregular)
        assert not detector._bulk_batches
        ref, _ = _feed_per_record(trace)
        assert detector.state_snapshot() == ref.state_snapshot()

    @needs_numpy
    def test_sidecar_cap_materializes(self):
        # >64 live batches would make the per-chunk hash probes
        # super-linear; the safety valve folds the sidecar back.
        trace = _loop_trace(seed=2, loops=0, background=70 * 40,
                            span=50.0)
        detector = StreamingLoopDetector()
        for chunk in ColumnarTrace.from_trace(trace, 40).chunks:
            detector.process_chunk(chunk)
            assert len(detector._bulk_batches) <= 65
        ref, _ = _feed_per_record(trace)
        assert detector.state_snapshot() == ref.state_snapshot()


class TestInterleaving:
    @needs_numpy
    def test_chunk_then_per_record(self):
        trace = _loop_trace(seed=4)
        split = len(trace.records) // 2
        detector = StreamingLoopDetector()
        loops = []
        columnar = ColumnarTrace.from_trace(trace, split)
        loops.extend(detector.process_chunk(columnar.chunks[0]))
        # A per-record feed after a batched chunk folds the sidecar
        # back into exact state before probing it.
        for record in trace.records[split:]:
            loops.extend(detector.process(record.timestamp, record.data))
        loops.extend(detector.flush())
        assert not detector._bulk_batches
        ref, ref_loops = _feed_per_record(trace)
        ref_loops.extend(ref.flush())
        assert list(map(_loop_key, loops)) \
            == list(map(_loop_key, ref_loops))
        assert detector.state_snapshot() == ref.state_snapshot()

    @needs_numpy
    def test_time_regression_rejected_identically(self):
        trace = _loop_trace(seed=6, loops=0, background=64, span=20.0)
        chunk = ColumnarTrace.from_trace(trace).chunks[0]
        detector = StreamingLoopDetector()
        detector.process_chunk(chunk)
        with pytest.raises(ValueError, match="time-ordered"):
            detector.process(0.0, b"x" * 40)
        stale = SimpleNamespace(
            timestamp=0.0, data=trace.records[0].data,
            wire_length=trace.records[0].wire_length,
        )
        stale_chunk = ColumnarChunk.from_records([stale] * 40)
        with pytest.raises(ValueError, match="time-ordered"):
            detector.process_chunk(stale_chunk)
