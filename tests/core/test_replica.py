"""Tests for step 1: replica detection."""

import random

import pytest

from repro.net.addr import IPv4Prefix
from repro.net.trace import Trace, TraceRecord
from repro.core.replica import (
    ReplicaError,
    ReplicaScanStats,
    detect_replicas,
    mask_mutable_fields,
)
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
OTHER = IPv4Prefix.parse("198.51.100.0/24")


def _trace_with_loop(**loop_kwargs):
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    defaults = dict(ttl_delta=2, n_packets=1, replicas_per_packet=5,
                    entry_ttl=40)
    defaults.update(loop_kwargs)
    builder.add_background(30, 0.0, 5.0, prefixes=[OTHER])
    loop = builder.add_loop(2.0, PREFIX, **defaults)
    return builder.build(), loop


class TestMask:
    def test_masks_exactly_ttl_and_checksum(self, sample_tcp_packet):
        wire = sample_tcp_packet.pack()[:40]
        masked = mask_mutable_fields(wire)
        assert len(masked) == len(wire)
        assert masked[8] == 0
        assert masked[10:12] == b"\x00\x00"
        restored = [i for i in range(len(wire)) if masked[i] != wire[i]]
        assert set(restored) <= {8, 10, 11}

    def test_replicas_share_mask(self, sample_tcp_packet):
        a = sample_tcp_packet.pack()[:40]
        b = sample_tcp_packet.forwarded(4).pack()[:40]
        assert mask_mutable_fields(a) == mask_mutable_fields(b)


class TestDetection:
    def test_finds_planted_stream(self):
        trace, loop = _trace_with_loop()
        streams = detect_replicas(trace)
        assert len(streams) == 1
        stream = streams[0]
        assert stream.size == 5
        assert stream.ttl_delta == 2
        assert PREFIX.contains(stream.dst)

    def test_replica_timestamps_match_ground_truth(self):
        trace, loop = _trace_with_loop()
        stream = detect_replicas(trace)[0]
        expected = [t for t, _ in loop.streams[0]]
        assert [r.timestamp for r in stream.replicas] == pytest.approx(
            expected
        )

    def test_background_yields_no_streams(self):
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_background(500, 0.0, 10.0)
        assert detect_replicas(builder.build()) == []

    def test_multiple_packets_multiple_streams(self):
        trace, _ = _trace_with_loop(n_packets=4)
        streams = detect_replicas(trace)
        assert len(streams) == 4

    def test_link_layer_duplicates_not_chained(self):
        """Identical TTLs (delta 0) never form a stream."""
        builder = SyntheticTraceBuilder(rng=random.Random(2))
        builder.add_duplicate_pair(1.0)
        assert detect_replicas(builder.build()) == []

    def test_min_ttl_delta_respected(self):
        trace, _ = _trace_with_loop(ttl_delta=2)
        assert detect_replicas(trace, min_ttl_delta=3) == []

    def test_larger_delta_accepted(self):
        trace, _ = _trace_with_loop(ttl_delta=5, entry_ttl=50)
        streams = detect_replicas(trace)
        assert len(streams) == 1
        assert streams[0].ttl_delta == 5

    def test_max_replica_gap_splits_streams(self):
        trace, _ = _trace_with_loop(spacing=10.0, replicas_per_packet=3,
                                    entry_ttl=40)
        # 10-second spacing exceeds the default 5-second chaining gap.
        streams = detect_replicas(trace, max_replica_gap=5.0)
        assert streams == []
        streams = detect_replicas(trace, max_replica_gap=30.0)
        assert len(streams) == 1

    def test_increasing_ttl_not_chained(self, sample_tcp_packet):
        trace = Trace()
        low = sample_tcp_packet.forwarded(10)
        trace.capture(1.0, low)
        trace.capture(1.1, sample_tcp_packet)  # higher TTL after
        assert detect_replicas(trace) == []

    def test_short_records_skipped(self):
        trace = Trace()
        trace.append(TraceRecord(timestamp=0.0, data=b"\x45\x00", wire_length=2))
        stats = ReplicaScanStats()
        assert detect_replicas(trace, stats=stats) == []
        assert stats.records_skipped_short == 1

    def test_streams_sorted_by_start(self):
        builder = SyntheticTraceBuilder(rng=random.Random(3))
        builder.add_loop(5.0, PREFIX, n_packets=1, replicas_per_packet=3,
                         entry_ttl=30)
        builder.add_loop(1.0, OTHER, n_packets=1, replicas_per_packet=3,
                         entry_ttl=30)
        streams = detect_replicas(builder.build())
        assert [s.start for s in streams] == sorted(s.start for s in streams)

    def test_parameter_validation(self):
        trace = Trace()
        with pytest.raises(ReplicaError):
            detect_replicas(trace, min_ttl_delta=0)
        with pytest.raises(ReplicaError):
            detect_replicas(trace, max_replica_gap=0.0)

    def test_eviction_keeps_results_identical(self):
        builder = SyntheticTraceBuilder(rng=random.Random(4))
        builder.add_background(2000, 0.0, 100.0, prefixes=[OTHER])
        builder.add_loop(50.0, PREFIX, n_packets=2, replicas_per_packet=6,
                         entry_ttl=40)
        trace = builder.build()
        with_eviction = detect_replicas(trace, eviction_interval=500)
        without = detect_replicas(trace, eviction_interval=0)
        key = lambda ss: [(s.start, s.size) for s in ss]
        assert key(with_eviction) == key(without)
        assert len(with_eviction) == 2


class TestStreamProperties:
    def test_duration_and_spacing(self):
        trace, _ = _trace_with_loop(spacing=0.01, replicas_per_packet=5,
                                    jitter=0.0)
        stream = detect_replicas(trace)[0]
        assert stream.duration == pytest.approx(0.04, abs=1e-9)
        assert stream.mean_spacing == pytest.approx(0.01, abs=1e-9)

    def test_ttl_deltas_list(self):
        trace, _ = _trace_with_loop(ttl_delta=2, replicas_per_packet=4)
        stream = detect_replicas(trace)[0]
        assert stream.ttl_deltas() == [2, 2, 2]

    def test_dst_prefix(self):
        trace, _ = _trace_with_loop()
        stream = detect_replicas(trace)[0]
        assert stream.dst_prefix(24) == PREFIX

    def test_member_indices_are_trace_positions(self):
        trace, _ = _trace_with_loop()
        stream = detect_replicas(trace)[0]
        for index in stream.member_indices():
            record = trace[index]
            dst = int.from_bytes(record.data[16:20], "big")
            assert PREFIX.contains(
                type(stream.dst)(dst)
            )

    def test_singleton_properties_raise(self):
        from repro.core.replica import Replica, ReplicaStream
        from repro.net.addr import IPv4Address

        stream = ReplicaStream(
            key=b"", replicas=[Replica(0, 0.0, 10)],
            src=IPv4Address.parse("1.1.1.1"),
            dst=IPv4Address.parse("2.2.2.2"),
            protocol=6, first_data=b"",
        )
        with pytest.raises(ReplicaError):
            _ = stream.ttl_delta
        with pytest.raises(ReplicaError):
            _ = stream.mean_spacing
