"""Tests for step 3: merging replica streams into routing loops."""

import random

import pytest

from repro.net.addr import IPv4Prefix
from repro.core.merge import MergeError, merge_streams
from repro.core.replica import detect_replicas
from repro.core.streams import validate_streams
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
OTHER = IPv4Prefix.parse("198.51.100.0/24")


def _detect(builder):
    trace = builder.build()
    candidates = detect_replicas(trace)
    valid = validate_streams(candidates, trace).valid
    return trace, valid


class TestOverlapMerging:
    def test_overlapping_streams_merge(self):
        builder = SyntheticTraceBuilder(rng=random.Random(0))
        builder.add_loop(1.0, PREFIX, n_packets=5, replicas_per_packet=5,
                         spacing=0.01, packet_gap=0.01, entry_ttl=40)
        trace, valid = _detect(builder)
        assert len(valid) == 5
        loops = merge_streams(valid, trace)
        assert len(loops) == 1
        assert loops[0].stream_count == 5
        assert loops[0].replica_count == 25

    def test_different_prefixes_never_merge(self):
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_loop(1.0, PREFIX, n_packets=2, replicas_per_packet=4,
                         spacing=0.01, entry_ttl=40)
        builder.add_loop(1.0, OTHER, n_packets=2, replicas_per_packet=4,
                         spacing=0.01, entry_ttl=40)
        trace, valid = _detect(builder)
        loops = merge_streams(valid, trace)
        assert len(loops) == 2
        assert {loop.prefix for loop in loops} == {PREFIX, OTHER}


class TestGapMerging:
    def test_nearby_streams_merge_across_quiet_gap(self):
        builder = SyntheticTraceBuilder(rng=random.Random(2))
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_loop(20.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        trace, valid = _detect(builder)
        loops = merge_streams(valid, trace, merge_gap=60.0)
        assert len(loops) == 1
        assert loops[0].duration == pytest.approx(19.04, abs=0.01)

    def test_streams_beyond_gap_stay_separate(self):
        builder = SyntheticTraceBuilder(rng=random.Random(3))
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_loop(120.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        trace, valid = _detect(builder)
        loops = merge_streams(valid, trace, merge_gap=60.0)
        assert len(loops) == 2

    def test_noisy_gap_blocks_merge(self):
        """A non-looped packet to the prefix inside the gap means the loop
        ended in between: the streams are two distinct loops."""
        builder = SyntheticTraceBuilder(rng=random.Random(4))
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_background(1, 10.0, 10.5, prefixes=[PREFIX])
        builder.add_loop(20.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        trace, valid = _detect(builder)
        assert len(valid) == 2  # windows themselves are clean
        loops = merge_streams(valid, trace, merge_gap=60.0)
        assert len(loops) == 2

    def test_gap_check_can_be_disabled(self):
        builder = SyntheticTraceBuilder(rng=random.Random(5))
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_background(1, 10.0, 10.5, prefixes=[PREFIX])
        builder.add_loop(20.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        trace, valid = _detect(builder)
        loops = merge_streams(valid, trace, merge_gap=60.0,
                              check_gap_consistency=False)
        assert len(loops) == 1

    def test_zero_merge_gap_only_merges_overlaps(self):
        builder = SyntheticTraceBuilder(rng=random.Random(6))
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_loop(2.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        trace, valid = _detect(builder)
        loops = merge_streams(valid, trace, merge_gap=0.0)
        assert len(loops) == 2

    def test_negative_merge_gap_rejected(self):
        with pytest.raises(MergeError):
            merge_streams([], None, merge_gap=-1.0)


class TestLoopProperties:
    def test_loop_bounds(self):
        builder = SyntheticTraceBuilder(rng=random.Random(7))
        builder.add_loop(3.0, PREFIX, n_packets=2, replicas_per_packet=4,
                         spacing=0.02, packet_gap=0.01, entry_ttl=40,
                         jitter=0.0)
        trace, valid = _detect(builder)
        loops = merge_streams(valid, trace)
        loop = loops[0]
        assert loop.start == pytest.approx(3.0)
        assert loop.end == pytest.approx(3.07)
        assert loop.duration == pytest.approx(0.07)

    def test_loop_ttl_delta_is_modal(self):
        builder = SyntheticTraceBuilder(rng=random.Random(8))
        builder.add_loop(1.0, PREFIX, n_packets=3, replicas_per_packet=4,
                         ttl_delta=2, spacing=0.01, packet_gap=0.01,
                         entry_ttl=40)
        trace, valid = _detect(builder)
        loops = merge_streams(valid, trace)
        assert loops[0].ttl_delta == 2

    def test_loops_sorted_by_start(self):
        builder = SyntheticTraceBuilder(rng=random.Random(9))
        builder.add_loop(10.0, PREFIX, n_packets=1, replicas_per_packet=4,
                         spacing=0.01, entry_ttl=40)
        builder.add_loop(1.0, OTHER, n_packets=1, replicas_per_packet=4,
                         spacing=0.01, entry_ttl=40)
        trace, valid = _detect(builder)
        loops = merge_streams(valid, trace)
        assert [l.start for l in loops] == sorted(l.start for l in loops)

    def test_empty_input(self):
        builder = SyntheticTraceBuilder(rng=random.Random(10))
        builder.add_background(5, 0.0, 1.0)
        trace = builder.build()
        assert merge_streams([], trace) == []
