"""Tests for persistent-loop classification and injection."""

import random

import pytest

from repro.core.detector import LoopDetector
from repro.core.persistent import (
    LoopClass,
    PersistenceCriteria,
    classify_loops,
    inject_static_route_conflict,
    persistent_fraction,
)
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def _loops_from_synthetic(*loop_specs):
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    for start, prefix, n_packets, packet_gap in loop_specs:
        builder.add_loop(start, prefix, n_packets=n_packets,
                         replicas_per_packet=4, spacing=0.01,
                         packet_gap=packet_gap, entry_ttl=40)
    return LoopDetector().detect(builder.build()).loops


class TestCriteria:
    def test_validation(self):
        with pytest.raises(ValueError):
            PersistenceCriteria(max_transient_duration=0.0)
        with pytest.raises(ValueError):
            PersistenceCriteria(recurrence_count=1)


class TestClassification:
    def test_short_loop_is_transient(self):
        loops = _loops_from_synthetic((10.0, PREFIX, 3, 0.02))
        [classified] = classify_loops(loops)
        assert classified.loop_class is LoopClass.TRANSIENT

    def test_long_loop_is_persistent(self):
        # One "loop" whose replica streams stretch over 5 minutes
        # (packets keep looping far beyond any convergence horizon).
        loops = _loops_from_synthetic((10.0, PREFIX, 12, 30.0))
        assert loops[0].duration > 180.0
        [classified] = classify_loops(loops)
        assert classified.loop_class is LoopClass.PERSISTENT
        assert "duration" in classified.reason

    def test_chronic_recurrence_is_persistent(self):
        # Five short episodes on the same prefix within 30 minutes.
        specs = [(100.0 + i * 200.0, PREFIX, 3, 0.02) for i in range(5)]
        loops = _loops_from_synthetic(*specs)
        assert len(loops) == 5
        classified = classify_loops(loops)
        assert all(item.loop_class is LoopClass.PERSISTENT
                   for item in classified)
        assert all("chronically" in item.reason for item in classified)

    def test_sparse_recurrence_stays_transient(self):
        criteria = PersistenceCriteria(recurrence_count=4,
                                       recurrence_horizon=300.0)
        specs = [(100.0 + i * 400.0, PREFIX, 3, 0.02) for i in range(4)]
        loops = _loops_from_synthetic(*specs)
        classified = classify_loops(loops, criteria)
        assert all(item.loop_class is LoopClass.TRANSIENT
                   for item in classified)

    def test_persistent_fraction(self):
        loops = _loops_from_synthetic(
            (10.0, PREFIX, 3, 0.02),
            (50.0, IPv4Prefix.parse("198.51.100.0/24"), 12, 30.0),
        )
        classified = classify_loops(loops)
        assert persistent_fraction(classified) == pytest.approx(0.5)

    def test_empty(self):
        assert classify_loops([]) == []
        assert persistent_fraction([]) == 0.0


class TestInjectedPersistentLoop:
    def test_static_conflict_creates_unresolving_loop(self):
        """End to end: misconfigure two routers, run traffic for minutes,
        and confirm the detector + classifier flag a persistent loop."""
        import random as random_module

        from repro.capture.monitor import LinkMonitor
        from repro.net.addr import IPv4Address
        from repro.net.packet import IPv4Header, Packet, UdpHeader
        from repro.routing import (
            BgpProcess,
            EventScheduler,
            ForwardingEngine,
            LinkStateProtocol,
        )
        from repro.routing.topology import line_topology

        topo = line_topology(3, propagation_delay=0.002)
        scheduler = EventScheduler()
        igp = LinkStateProtocol(topo, scheduler,
                                rng=random_module.Random(1))
        bgp = BgpProcess(topo, scheduler, igp, rng=random_module.Random(2))
        victim = IPv4Prefix.parse("203.0.113.0/24")
        bgp.originate(victim, "R2")  # upstream routers have a route
        igp.start()
        bgp.start()
        # ... but R1 and R2 are misconfigured with conflicting statics.
        inject_static_route_conflict(bgp, topo, victim, "R1", "R2")
        engine = ForwardingEngine(topo, scheduler, igp, bgp,
                                  rng=random_module.Random(3))
        monitor = LinkMonitor(engine, "R1", "R2")

        rng = random_module.Random(4)
        for i in range(80):
            when = 1.0 + i * 5.0  # packets spread over ~7 minutes
            ip = IPv4Header(src=IPv4Address.parse("10.0.0.5"),
                            dst=victim.random_address(rng),
                            ttl=60, identification=i)
            packet = Packet.build(ip, UdpHeader(src_port=999, dst_port=80),
                                  b"x")
            engine.inject_at(when, packet, "R0")
        scheduler.run(until=600.0)
        monitor.finalize()

        from repro.routing.forwarding import PacketFate

        assert engine.fate_counts[PacketFate.TTL_EXPIRED] == 80

        detection = LoopDetector().detect(monitor.trace)
        assert detection.loop_count >= 1
        classified = classify_loops(detection.loops)
        assert any(item.loop_class is LoopClass.PERSISTENT
                   for item in classified)
