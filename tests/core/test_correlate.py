"""Tests for loop–routing-data correlation."""

import random

import pytest

from repro.core.correlate import (
    LoopCause,
    cause_summary,
    correlate_loops,
)
from repro.core.detector import LoopDetector
from repro.net.addr import IPv4Prefix
from repro.routing.journal import EventKind, RoutingJournal


def _loop(prefix_text: str, start: float, end: float):
    """A minimal RoutingLoop carcass for unit tests."""
    from repro.core.merge import RoutingLoop
    from repro.core.replica import Replica, ReplicaStream
    from repro.net.addr import IPv4Address

    prefix = IPv4Prefix.parse(prefix_text)
    dst = prefix.random_address(random.Random(0))
    stream = ReplicaStream(
        key=b"",
        replicas=[Replica(0, start, 40), Replica(1, end, 38)],
        src=IPv4Address.parse("10.0.0.1"),
        dst=dst,
        protocol=6,
        first_data=b"",
    )
    return RoutingLoop(prefix=prefix, streams=[stream])


class TestAttribution:
    def test_egp_trigger(self):
        journal = RoutingJournal()
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        journal.record(95.0, EventKind.BGP_WITHDRAW_SENT, "pop0",
                       prefix=prefix)
        loops = [_loop("192.0.2.0/24", 100.0, 101.0)]
        [attribution] = correlate_loops(loops, journal)
        assert attribution.cause is LoopCause.EGP
        assert len(attribution.egp_triggers) == 1

    def test_igp_trigger(self):
        journal = RoutingJournal()
        journal.record(99.0, EventKind.LINK_DOWN, "pop0", detail="a--b")
        loops = [_loop("192.0.2.0/24", 100.0, 101.0)]
        [attribution] = correlate_loops(loops, journal)
        assert attribution.cause is LoopCause.IGP

    def test_mixed(self):
        journal = RoutingJournal()
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        journal.record(95.0, EventKind.BGP_WITHDRAW_SENT, "pop0",
                       prefix=prefix)
        journal.record(99.0, EventKind.LINK_DOWN, "pop0")
        loops = [_loop("192.0.2.0/24", 100.0, 101.0)]
        [attribution] = correlate_loops(loops, journal)
        assert attribution.cause is LoopCause.MIXED

    def test_unknown_when_quiet(self):
        journal = RoutingJournal()
        journal.record(1.0, EventKind.SPF_RUN, "pop0")  # not a trigger
        loops = [_loop("192.0.2.0/24", 100.0, 101.0)]
        [attribution] = correlate_loops(loops, journal)
        assert attribution.cause is LoopCause.UNKNOWN

    def test_wrong_prefix_not_attributed_to_egp(self):
        journal = RoutingJournal()
        other = IPv4Prefix.parse("198.51.100.0/24")
        journal.record(99.0, EventKind.BGP_WITHDRAW_SENT, "pop0",
                       prefix=other)
        loops = [_loop("192.0.2.0/24", 100.0, 101.0)]
        [attribution] = correlate_loops(loops, journal)
        assert attribution.cause is LoopCause.UNKNOWN

    def test_trigger_outside_window_ignored(self):
        journal = RoutingJournal()
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        journal.record(10.0, EventKind.BGP_WITHDRAW_SENT, "pop0",
                       prefix=prefix)
        loops = [_loop("192.0.2.0/24", 100.0, 101.0)]
        [attribution] = correlate_loops(loops, journal, egp_lead=40.0)
        assert attribution.cause is LoopCause.UNKNOWN

    def test_window_validation(self):
        with pytest.raises(ValueError):
            correlate_loops([], RoutingJournal(), egp_lead=-1.0)

    def test_cause_summary(self):
        journal = RoutingJournal()
        journal.record(99.0, EventKind.LINK_DOWN, "pop0")
        loops = [_loop("192.0.2.0/24", 100.0, 101.0),
                 _loop("198.51.100.0/24", 100.5, 101.5)]
        summary = cause_summary(correlate_loops(loops, journal))
        assert summary[LoopCause.IGP] == 2
        assert summary[LoopCause.EGP] == 0


class TestScenarioCorrelation:
    @pytest.fixture(scope="class")
    def attributed(self):
        from tests.conftest import small_sim

        run = small_sim(seed=11, duration=90.0)
        detection = LoopDetector().detect(run.trace)
        return run, correlate_loops(detection.loops, run.journal)

    def test_every_loop_attributed(self, attributed):
        run, attributions = attributed
        assert attributions
        summary = cause_summary(attributions)
        # In a simulation where every loop comes from an injected event,
        # no loop should be UNKNOWN.
        assert summary[LoopCause.UNKNOWN] == 0

    def test_triggers_precede_or_overlap_loops(self, attributed):
        _, attributions = attributed
        for attribution in attributions:
            for event in (attribution.egp_triggers
                          + attribution.igp_triggers):
                assert event.time <= attribution.loop.end + 2.0
