"""Tests for step 2: replica-stream validation."""

import random

import pytest

from repro.net.addr import IPv4Prefix
from repro.core.replica import detect_replicas
from repro.core.streams import PrefixIndex, validate_streams
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
OTHER = IPv4Prefix.parse("198.51.100.0/24")


def _build(rng_seed=0):
    return SyntheticTraceBuilder(rng=random.Random(rng_seed))


class TestSizeRule:
    def test_two_element_streams_rejected(self):
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=2,
                         entry_ttl=40)
        trace = builder.build()
        candidates = detect_replicas(trace)
        assert len(candidates) == 1
        result = validate_streams(candidates, trace)
        assert result.valid == []
        assert result.rejected_too_small == 1

    def test_three_element_streams_kept(self):
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=3,
                         entry_ttl=40)
        trace = builder.build()
        result = validate_streams(detect_replicas(trace), trace)
        assert len(result.valid) == 1
        assert result.rejected == 0

    def test_min_stream_size_configurable(self):
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=4,
                         entry_ttl=40)
        trace = builder.build()
        candidates = detect_replicas(trace)
        result = validate_streams(candidates, trace, min_stream_size=5)
        assert result.rejected_too_small == 1


class TestPrefixConsistencyRule:
    def test_non_looped_packet_in_window_rejects_stream(self):
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        # A normal (single) packet to the same /24 inside the loop window.
        builder.add_background(1, 1.02, 1.03, prefixes=[PREFIX])
        trace = builder.build()
        candidates = detect_replicas(trace)
        result = validate_streams(candidates, trace)
        assert result.valid == []
        assert result.rejected_prefix_conflict == 1

    def test_non_looped_packet_outside_window_is_fine(self):
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_background(5, 10.0, 11.0, prefixes=[PREFIX])
        trace = builder.build()
        result = validate_streams(detect_replicas(trace), trace)
        assert len(result.valid) == 1

    def test_other_prefix_traffic_never_conflicts(self):
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_background(50, 0.9, 1.2, prefixes=[OTHER])
        trace = builder.build()
        result = validate_streams(detect_replicas(trace), trace)
        assert len(result.valid) == 1

    def test_concurrent_streams_same_prefix_support_each_other(self):
        """All packets to the prefix loop, in overlapping streams: all
        valid — each stream's members cover the others' windows."""
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=4, replicas_per_packet=5,
                         spacing=0.01, packet_gap=0.015, entry_ttl=40)
        trace = builder.build()
        result = validate_streams(detect_replicas(trace), trace)
        assert len(result.valid) == 4

    def test_two_element_streams_still_count_as_members(self):
        """A 2-replica stream fails the size rule but its packets are
        still 'looping', so they must not invalidate neighbors."""
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_loop(1.015, PREFIX, n_packets=1, replicas_per_packet=2,
                         spacing=0.01, entry_ttl=30)
        trace = builder.build()
        candidates = detect_replicas(trace)
        assert len(candidates) == 2
        result = validate_streams(candidates, trace)
        assert len(result.valid) == 1
        assert result.rejected_too_small == 1
        assert result.rejected_prefix_conflict == 0

    def test_check_can_be_disabled(self):
        builder = _build()
        builder.add_loop(1.0, PREFIX, n_packets=1, replicas_per_packet=5,
                         spacing=0.01, entry_ttl=40)
        builder.add_background(1, 1.02, 1.03, prefixes=[PREFIX])
        trace = builder.build()
        result = validate_streams(detect_replicas(trace), trace,
                                  check_prefix_consistency=False)
        assert len(result.valid) == 1

    def test_empty_candidates(self):
        builder = _build()
        builder.add_background(10, 0.0, 1.0)
        trace = builder.build()
        result = validate_streams([], trace)
        assert result.valid == []
        assert result.rejected == 0


class TestPrefixIndex:
    def test_window_query(self):
        builder = _build()
        builder.add_background(20, 0.0, 10.0, prefixes=[PREFIX])
        trace = builder.build()
        index = PrefixIndex(trace, 24)
        all_records = index.records_in_window(PREFIX, 0.0, 10.0)
        assert len(all_records) == 20
        early = index.records_in_window(PREFIX, 0.0, 5.0)
        assert 0 < len(early) < 20

    def test_window_is_inclusive(self):
        builder = _build()
        builder.add_background(1, 1.0, 1.0001, prefixes=[PREFIX])
        trace = builder.build()
        t = trace[0].timestamp
        index = PrefixIndex(trace, 24)
        assert index.records_in_window(PREFIX, t, t) == [0]

    def test_has_non_member(self):
        builder = _build()
        builder.add_background(3, 0.0, 1.0, prefixes=[PREFIX])
        trace = builder.build()
        index = PrefixIndex(trace, 24)
        assert index.has_non_member(PREFIX, 0.0, 1.0, members=set())
        assert not index.has_non_member(PREFIX, 0.0, 1.0,
                                        members={0, 1, 2})

    def test_wrong_length_query_rejected(self):
        builder = _build()
        builder.add_background(1, 0.0, 1.0)
        index = PrefixIndex(builder.build(), 24)
        with pytest.raises(ValueError):
            index.records_in_window(IPv4Prefix.parse("10.0.0.0/16"),
                                    0.0, 1.0)
