"""Tests for JSON serialization of detection results."""

import json
import random

import pytest

from repro.core.detector import LoopDetector
from repro.core.serialize import (
    FORMAT_VERSION,
    loops_from_dict,
    loops_from_json,
    result_to_dict,
    result_to_json,
)
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


@pytest.fixture
def detection():
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    builder.add_background(100, 0.0, 60.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(10.0, PREFIX, n_packets=2, replicas_per_packet=5,
                     spacing=0.01, packet_gap=0.012, entry_ttl=40)
    return LoopDetector().detect(builder.build(link_name="testlink"))


class TestSerialization:
    def test_dict_structure(self, detection):
        payload = result_to_dict(detection)
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["trace"]["link"] == "testlink"
        assert payload["summary"]["loops"] == 1
        assert payload["summary"]["validated_streams"] == 2
        assert len(payload["loops"]) == 1
        loop = payload["loops"][0]
        assert loop["prefix"] == "192.0.2.0/24"
        assert loop["ttl_delta"] == 2
        assert len(loop["streams"]) == 2

    def test_json_round_trip_is_valid_json(self, detection):
        text = result_to_json(detection)
        payload = json.loads(text)
        assert payload["summary"]["loops"] == 1

    def test_loops_reloadable(self, detection):
        text = result_to_json(detection)
        loops = loops_from_json(text)
        assert len(loops) == 1
        original = detection.loops[0]
        reloaded = loops[0]
        assert reloaded.prefix == original.prefix
        assert reloaded.start == pytest.approx(original.start)
        assert reloaded.end == pytest.approx(original.end)
        assert reloaded.ttl_delta == original.ttl_delta
        assert reloaded.replica_count == original.replica_count

    def test_reloaded_streams_support_analysis(self, detection):
        from repro.core.analysis import (
            stream_size_cdf,
            ttl_delta_distribution,
        )

        loops = loops_from_json(result_to_json(detection))
        streams = [stream for loop in loops for stream in loop.streams]
        assert ttl_delta_distribution(streams).mode() == 2
        assert stream_size_cdf(streams).max == 5

    def test_version_checked(self, detection):
        payload = result_to_dict(detection)
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            loops_from_dict(payload)

    def test_empty_result(self):
        from repro.net.trace import Trace

        result = LoopDetector().detect(Trace())
        payload = result_to_dict(result)
        assert payload["loops"] == []
        assert loops_from_dict(payload) == []


class TestCliJson:
    def test_detect_json_flag(self, detection, tmp_path, capsys):
        from repro.cli import main
        from repro.net.pcap import write_pcap

        path = tmp_path / "t.pcap"
        write_pcap(detection.trace, path)
        code = main(["detect", str(path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["loops"] == 1

    def test_detect_streaming_flag(self, detection, tmp_path, capsys):
        from repro.cli import main
        from repro.net.pcap import write_pcap

        path = tmp_path / "t.pcap"
        write_pcap(detection.trace, path)
        code = main(["detect", str(path), "--streaming"])
        assert code == 0
        out = capsys.readouterr().out
        assert "routing loops: 1" in out
        assert "192.0.2.0/24" in out
