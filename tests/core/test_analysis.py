"""Tests for the per-figure analysis functions."""

import random

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, TcpFlags, TcpHeader, UdpHeader, IcmpHeader
from repro.net.trace import Trace, TraceRecord
from repro.core.analysis import (
    classify_bytes,
    classify_record,
    destination_class_fractions,
    destination_timeseries,
    loop_duration_cdf,
    looped_traffic_type_distribution,
    spacing_cdf,
    stream_duration_cdf,
    stream_size_cdf,
    traffic_type_distribution,
    traffic_type_fractions,
    ttl_delta_distribution,
)
from repro.core.detector import LoopDetector
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def _record(packet: Packet) -> TraceRecord:
    return TraceRecord.capture(0.0, packet, snaplen=40)


def _ip(dst="192.0.2.1", proto=6):
    return IPv4Header(src=IPv4Address.parse("10.0.0.1"),
                      dst=IPv4Address.parse(dst), ttl=64, protocol=proto)


class TestClassification:
    def test_tcp_synack_multi_label(self):
        packet = Packet.build(_ip(), TcpHeader(
            src_port=1, dst_port=2, flags=TcpFlags.SYN | TcpFlags.ACK
        ))
        labels = classify_record(_record(packet))
        assert labels == {"TCP", "SYN", "ACK"}

    def test_plain_data_segment(self):
        packet = Packet.build(_ip(), TcpHeader(
            src_port=1, dst_port=2, flags=TcpFlags.ACK | TcpFlags.PSH
        ))
        assert classify_record(_record(packet)) == {"TCP", "ACK", "PSH"}

    def test_udp(self):
        packet = Packet.build(_ip(), UdpHeader(src_port=1, dst_port=2))
        assert classify_record(_record(packet)) == {"UDP"}

    def test_multicast_udp_labelled_mcast(self):
        packet = Packet.build(_ip(dst="224.0.1.1"),
                              UdpHeader(src_port=1, dst_port=2))
        assert classify_record(_record(packet)) == {"MCAST"}

    def test_icmp(self):
        packet = Packet.build(_ip(proto=1), IcmpHeader(icmp_type=8))
        assert classify_record(_record(packet)) == {"ICMP"}

    def test_other_protocol(self):
        packet = Packet.build(_ip(proto=47), None, b"gre-payload")
        assert classify_record(_record(packet)) == {"OTHER"}

    def test_short_capture_unclassified(self):
        assert classify_bytes(b"\x45\x00") == frozenset()

    def test_truncated_tcp_header_still_tcp(self):
        packet = Packet.build(_ip(), TcpHeader(src_port=1, dst_port=2,
                                               flags=TcpFlags.SYN))
        record = TraceRecord.capture(0.0, packet, snaplen=30)
        labels = classify_record(record)
        assert "TCP" in labels
        assert "SYN" not in labels  # flags byte not captured


class TestDistributions:
    @pytest.fixture
    def detection(self):
        builder = SyntheticTraceBuilder(rng=random.Random(0))
        builder.add_background(100, 0.0, 60.0,
                               prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
        builder.add_loop(5.0, PREFIX, ttl_delta=2, n_packets=4,
                         replicas_per_packet=6, spacing=0.01,
                         packet_gap=0.012, entry_ttl=40)
        builder.add_loop(40.0, IPv4Prefix.parse("203.0.113.0/24"),
                         ttl_delta=3, n_packets=2, replicas_per_packet=4,
                         spacing=0.015, packet_gap=0.02, entry_ttl=30)
        return LoopDetector().detect(builder.build())

    def test_ttl_delta_distribution(self, detection):
        dist = ttl_delta_distribution(detection.streams)
        assert dist.counts[2] == 4
        assert dist.counts[3] == 2
        assert dist.mode() == 2

    def test_stream_size_cdf(self, detection):
        cdf = stream_size_cdf(detection.streams)
        assert cdf.n == 6
        assert cdf.max == 6
        assert cdf.min == 4

    def test_spacing_cdf(self, detection):
        cdf = spacing_cdf(detection.streams)
        assert 0.009 < cdf.min < 0.011
        assert 0.014 < cdf.max < 0.017

    def test_stream_duration_cdf(self, detection):
        cdf = stream_duration_cdf(detection.streams)
        assert cdf.n == 6
        assert cdf.max < 0.1

    def test_loop_duration_cdf(self, detection):
        cdf = loop_duration_cdf(detection.loops)
        assert cdf.n == len(detection.loops) == 2

    def test_traffic_type_distribution_all(self, detection):
        dist = traffic_type_distribution(detection.trace)
        fractions = traffic_type_fractions(dist)
        assert fractions["TCP"] + fractions["UDP"] > 0.8
        assert fractions["TCP"] >= fractions["SYN"]

    def test_looped_traffic_type_distribution(self, detection):
        dist = looped_traffic_type_distribution(detection.streams)
        fractions = traffic_type_fractions(dist)
        assert sum(
            fractions[label] for label in ("TCP", "UDP", "MCAST", "ICMP",
                                           "OTHER")
        ) >= 1.0 - 1e-9

    def test_traffic_type_fractions_empty(self):
        from repro.stats.hist import CategoricalDistribution

        assert traffic_type_fractions(CategoricalDistribution()) == {}

    def test_destination_timeseries(self, detection):
        series = destination_timeseries(detection.streams)
        assert len(series) == 6
        times = [t for t, _ in series]
        assert all(0.0 <= t <= 60.0 for t in times)
        for _, dst in series:
            assert isinstance(dst, IPv4Address)

    def test_destination_class_fractions(self, detection):
        fractions = destination_class_fractions(detection.streams)
        assert fractions["C"] == pytest.approx(1.0)  # both prefixes class C

    def test_destination_class_fractions_empty(self):
        assert destination_class_fractions([]) == {}
