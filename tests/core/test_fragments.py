"""Detector behaviour with IP fragments.

Fragments of one datagram share the IP identification but differ in
fragment offset / MF flag (and lengths), so their masked headers differ:
the detector treats each fragment as its own packet.  A looping
fragment therefore produces its own replica stream — which is the
correct semantics: every copy on the link is a genuine extra crossing.
"""

import random
from dataclasses import replace

import pytest

from repro.core.detector import LoopDetector
from repro.core.replica import detect_replicas, mask_mutable_fields
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.net.trace import Trace

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def _fragments(ident: int = 77, ttl: int = 40):
    """First and second fragment of one UDP datagram."""
    src = IPv4Address.parse("10.4.4.4")
    dst = IPv4Address.parse("192.0.2.9")
    first = Packet.build(
        IPv4Header(src=src, dst=dst, ttl=ttl, identification=ident,
                   flags=0x1),  # MF set
        UdpHeader(src_port=53, dst_port=53),
        b"A" * 24,
    )
    # Continuation fragment: no L4 header, offset 4 (x8 bytes).
    second_ip = IPv4Header(src=src, dst=dst, ttl=ttl,
                           identification=ident, flags=0x0,
                           fragment_offset=4, protocol=17)
    second = Packet.build(second_ip, None, b"B" * 24)
    return first, second


class TestFragmentSemantics:
    def test_fragments_have_distinct_keys(self):
        first, second = _fragments()
        key_a = mask_mutable_fields(first.pack()[:40])
        key_b = mask_mutable_fields(second.pack()[:40])
        assert key_a != key_b

    def test_non_looping_fragments_not_replicas(self):
        """Two fragments of one datagram crossing once each never chain
        (their offsets differ), even though they share the IP id."""
        first, second = _fragments()
        trace = Trace()
        trace.capture(1.0, first)
        trace.capture(1.001, second)
        assert detect_replicas(trace) == []

    def test_looping_fragments_form_parallel_streams(self):
        """Both fragments caught in the same loop each produce a stream;
        validation accepts them (all packets to the prefix loop)."""
        first, second = _fragments()
        trace = Trace()
        t = 10.0
        for round_index in range(5):
            hops = round_index * 2
            trace.capture(t, first.forwarded(hops) if hops else first)
            trace.capture(t + 0.0001,
                          second.forwarded(hops) if hops else second)
            t += 0.01
        result = LoopDetector().detect(trace)
        assert result.stream_count == 2
        assert result.loop_count == 1
        assert {stream.size for stream in result.streams} == {5}

    def test_fragment_offset_participates_in_identity(self):
        """Same id, same everything, different offset: never replicas
        even with decreasing TTL."""
        first, _ = _fragments()
        moved = Packet(
            ip=replace(first.ip, fragment_offset=8, ttl=first.ip.ttl - 2,
                       checksum=None),
            l4=first.l4,
            payload=first.payload,
        )
        trace = Trace()
        trace.capture(1.0, first)
        trace.capture(1.01, moved)
        assert detect_replicas(trace) == []
