"""Tests for utilization overhead and reordering impact."""

import random

import pytest

from repro.core.detector import LoopDetector
from repro.core.impact import (
    reordering_impact_from_engine,
    utilization_overhead,
)
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


class TestUtilizationOverhead:
    def _detection(self, replicas=6, n_packets=3):
        builder = SyntheticTraceBuilder(rng=random.Random(0))
        builder.add_background(200, 0.0, 120.0,
                               prefixes=[IPv4Prefix.parse(
                                   "198.51.100.0/24")])
        builder.add_loop(30.0, PREFIX, n_packets=n_packets,
                         replicas_per_packet=replicas, spacing=0.01,
                         packet_gap=0.012, entry_ttl=40)
        return LoopDetector().detect(builder.build())

    def test_overhead_counts_extra_crossings_only(self):
        result = self._detection(replicas=6, n_packets=3)
        overhead = utilization_overhead(result.trace, result.streams)
        # 3 packets x 6 replicas: 3 first crossings are legitimate,
        # 15 are overhead.
        overhead_records = sum(
            stream.size - 1 for stream in result.streams
        )
        assert overhead_records == 15
        assert overhead.overhead_bytes > 0
        assert overhead.overall_overhead_fraction < 0.5

    def test_overhead_localized_in_time(self):
        result = self._detection()
        overhead = utilization_overhead(result.trace, result.streams,
                                        bucket_width=60.0)
        # All loop activity is at t=30: only bucket 0 has overhead.
        assert set(overhead.overhead_by_minute.counts) == {0}
        assert overhead.peak_minute_overhead_fraction > (
            overhead.overall_overhead_fraction
        )

    def test_no_streams_no_overhead(self):
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_background(100, 0.0, 60.0)
        trace = builder.build()
        overhead = utilization_overhead(trace, [])
        assert overhead.overhead_bytes == 0
        assert overhead.overall_overhead_fraction == 0.0


class TestReorderingImpact:
    @pytest.fixture(scope="class")
    def run(self):
        from tests.conftest import small_sim

        return small_sim(seed=11, duration=90.0)

    def test_shape(self, run):
        impact = reordering_impact_from_engine(run.engine)
        assert impact.reordered_deliveries <= impact.total_looped_deliveries
        assert 0.0 <= impact.reordering_fraction <= 1.0

    def test_escaped_packets_get_reordered(self, run):
        """Looped deliveries are delayed by hundreds of ms while their
        destination keeps receiving: some must arrive out of order (the
        paper's observation).  Not all — a looped packet delivered at the
        tail of an episode has nothing overtaking it."""
        impact = reordering_impact_from_engine(run.engine)
        if impact.total_looped_deliveries >= 5:
            assert impact.reordered_deliveries >= 1
            assert impact.reordering_fraction > 0.05

    def test_no_loops_no_reordering(self):
        import random as random_module

        from repro.net.addr import IPv4Address
        from repro.net.packet import IPv4Header, Packet, UdpHeader
        from repro.routing import (
            BgpProcess,
            EventScheduler,
            ForwardingEngine,
            LinkStateProtocol,
        )
        from repro.routing.topology import line_topology

        topo = line_topology(3)
        scheduler = EventScheduler()
        igp = LinkStateProtocol(topo, scheduler,
                                rng=random_module.Random(1))
        bgp = BgpProcess(topo, scheduler, igp, rng=random_module.Random(2))
        bgp.originate(PREFIX, "R2")
        igp.start()
        bgp.start()
        engine = ForwardingEngine(topo, scheduler, igp, bgp,
                                  rng=random_module.Random(3))
        for i in range(20):
            ip = IPv4Header(src=IPv4Address.parse("10.0.0.1"),
                            dst=IPv4Address.parse("192.0.2.5"),
                            ttl=64, identification=i)
            engine.inject(Packet.build(
                ip, UdpHeader(src_port=1, dst_port=2), b""), "R0")
        scheduler.run(until=10.0)
        impact = reordering_impact_from_engine(engine)
        assert impact.total_looped_deliveries == 0
        assert impact.reordering_fraction == 0.0
