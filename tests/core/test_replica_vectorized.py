"""The vectorized step-1 kernel tier and its numpy building blocks.

Three contracts:

* the vectorize primitives match their scalar oracles exactly
  (``crc32_rows`` vs ``zlib.crc32``; the hash weight table is
  prefix-stable as it grows);
* ``detect_replicas_vectorized`` returns byte-identical streams AND
  scan stats to the reference and pure-python columnar kernels on
  every layout — regular, padded strides, irregular, mixed, heavy
  eviction;
* tier dispatch: ``resolve_kernel`` / ``detect_replicas_with_kernel``
  route correctly, ``auto`` degrades to ``columnar`` without numpy, and
  ``DetectorConfig`` rejects unknown tiers.
"""

import random
import zlib
from array import array

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core import vectorize
from repro.core.detector import DetectorConfig, DetectorError
from repro.core.replica import (
    KERNEL_TIERS,
    ReplicaError,
    ReplicaScanStats,
    detect_replicas,
    detect_replicas_columnar,
    detect_replicas_vectorized,
    detect_replicas_with_kernel,
    resolve_kernel,
)
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarChunk, ColumnarTrace
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
BACKGROUND = IPv4Prefix.parse("198.51.100.0/24")


def _stream_fp(stream):
    return (
        stream.key,
        stream.first_data,
        tuple((r.index, r.timestamp, r.ttl) for r in stream.replicas),
    )


def _fps(streams):
    return [_stream_fp(s) for s in streams]


def _loop_trace(seed=0, background=400):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    builder.add_background(background, 0.0, 30.0, prefixes=[BACKGROUND])
    builder.add_loop(5.0, PREFIX, n_packets=3, replicas_per_packet=6,
                     spacing=0.01, entry_ttl=40)
    builder.add_loop(12.0, PREFIX, n_packets=2, replicas_per_packet=4,
                     spacing=0.02, entry_ttl=30)
    return builder.build()


def _chunks_from_bodies(bodies, chunk_records=7, spacing=0.01):
    """Irregular chunks: packed back to back, no declared stride."""
    chunks = []
    for start in range(0, len(bodies), chunk_records):
        batch = bodies[start:start + chunk_records]
        slab = bytearray()
        offsets = array("Q")
        lengths = array("I")
        for body in batch:
            offsets.append(len(slab))
            lengths.append(len(body))
            slab.extend(body)
        chunks.append(ColumnarChunk(
            data=bytes(slab),
            timestamps=array("d", [(start + i) * spacing
                                   for i in range(len(batch))]),
            offsets=offsets,
            lengths=lengths,
            base_index=start,
        ))
    return chunks


def _all_tiers(chunks, **kwargs):
    """Run all three tiers with fresh stats; return [(fps, stats)]."""
    out = []
    for impl in (None, detect_replicas_columnar, detect_replicas_vectorized):
        stats = ReplicaScanStats()
        if impl is None:
            streams = detect_replicas_with_kernel(
                chunks, kernel="reference", stats=stats, **kwargs
            )
        else:
            streams = impl(chunks, stats=stats, **kwargs)
        out.append((_fps(streams), (stats.records_scanned,
                                    stats.records_skipped_short,
                                    stats.singletons_evicted,
                                    stats.candidate_streams)))
    return out


def _assert_tiers_identical(chunks, **kwargs):
    reference, columnar, vectorized = _all_tiers(chunks, **kwargs)
    assert columnar == reference
    assert vectorized == reference


class TestVectorizePrimitives:
    def test_crc32_rows_matches_zlib(self):
        rng = np.random.default_rng(1)
        for length in (1, 7, 20, 40, 64):
            rows = rng.integers(0, 256, (50, length), dtype=np.uint8)
            expected = [zlib.crc32(row.tobytes()) for row in rows]
            assert vectorize.crc32_rows(rows).tolist() == expected

    def test_hash_weights_prefix_stable(self):
        short = vectorize.hash_weights(5).copy()
        long = vectorize.hash_weights(vectorize._WEIGHT_BLOCK * 2 + 3)
        assert (long[:5] == short).all()
        assert (long % 2 == 1).all()  # odd weights: full-period mixing

    def test_hash_rows_equal_rows_equal_hash(self):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 256, (8, 37), dtype=np.uint8)
        doubled = np.vstack([rows, rows])
        hashes = vectorize.hash_rows(doubled)
        assert (hashes[:8] == hashes[8:]).all()
        assert vectorize.hash_row_bytes(rows[3].tobytes()) == int(hashes[3])


class TestVectorizedKernelEquivalence:
    def test_regular_chunks(self):
        trace = _loop_trace()
        ctrace = ColumnarTrace.from_trace(trace, chunk_records=100)
        _assert_tiers_identical(ctrace.chunks)
        # and the reference detector agrees stream for stream
        vec = detect_replicas_vectorized(ctrace.chunks)
        assert _fps(vec) == _fps(detect_replicas(trace))

    def test_padded_stride(self):
        # stride > record length: rows are strided slices, not packed.
        trace = _loop_trace(seed=3)
        base = ColumnarTrace.from_trace(trace, chunk_records=64).chunks
        padded = []
        for chunk in base:
            length = chunk.lengths[0]
            stride = length + 9
            slab = bytearray()
            offsets = array("Q")
            for i in range(len(chunk.lengths)):
                offsets.append(len(slab))
                slab += chunk.record_bytes(i)
                slab += b"\xaa" * (stride - length)
            padded.append(ColumnarChunk(
                data=bytes(slab),
                timestamps=chunk.timestamps,
                offsets=offsets,
                lengths=chunk.lengths,
                base_index=chunk.base_index,
                stride=stride,
            ))
        _assert_tiers_identical(padded)

    def test_irregular_and_short_bodies(self):
        rng = random.Random(5)
        bodies = []
        for i in range(200):
            if rng.random() < 0.2:
                bodies.append(rng.randbytes(rng.randrange(0, 20)))
            elif bodies and rng.random() < 0.4:
                dup = bytearray(rng.choice(bodies))
                if len(dup) > 8:
                    dup[8] = rng.randrange(256)
                bodies.append(bytes(dup))
            else:
                bodies.append(rng.randbytes(rng.choice([20, 28, 40])))
        _assert_tiers_identical(_chunks_from_bodies(bodies))

    def test_mixed_regular_and_irregular_chunks(self):
        trace = _loop_trace(seed=7, background=150)
        regular = ColumnarTrace.from_trace(trace, chunk_records=50).chunks
        rng = random.Random(11)
        irregular = _chunks_from_bodies(
            [rng.randbytes(rng.choice([20, 40])) for _ in range(60)],
        )
        # interleave, rebasing irregular indices after the regular ones
        total = sum(len(c.lengths) for c in regular)
        rebased = [
            ColumnarChunk(
                data=c.data, timestamps=c.timestamps, offsets=c.offsets,
                lengths=c.lengths, base_index=total + c.base_index,
            )
            for c in irregular
        ]
        _assert_tiers_identical(regular + rebased)

    @pytest.mark.parametrize("eviction_interval", [1, 7, 64, 997])
    def test_heavy_eviction(self, eviction_interval):
        trace = _loop_trace(seed=13, background=800)
        ctrace = ColumnarTrace.from_trace(trace, chunk_records=128)
        _assert_tiers_identical(
            ctrace.chunks,
            max_replica_gap=0.05,
            eviction_interval=eviction_interval,
        )

    def test_empty_input(self):
        assert detect_replicas_vectorized([]) == []

    def test_parameter_validation(self):
        with pytest.raises(ReplicaError):
            detect_replicas_vectorized([], min_ttl_delta=0)
        with pytest.raises(ReplicaError):
            detect_replicas_vectorized([], max_replica_gap=-1.0)


class TestTierDispatch:
    def test_resolve_auto_prefers_vectorized(self):
        assert resolve_kernel("auto") == "vectorized"
        for tier in ("reference", "columnar", "vectorized"):
            assert resolve_kernel(tier) == tier

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ReplicaError):
            resolve_kernel("simd")

    def test_auto_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vectorize, "np", None)
        monkeypatch.setattr(vectorize, "HAVE_NUMPY", False)
        assert resolve_kernel("auto") == "columnar"

    def test_vectorized_falls_back_without_numpy(self, monkeypatch):
        trace = _loop_trace(seed=17, background=100)
        ctrace = ColumnarTrace.from_trace(trace, chunk_records=64)
        expected = _fps(detect_replicas_columnar(ctrace.chunks))
        monkeypatch.setattr(vectorize, "np", None)
        monkeypatch.setattr(vectorize, "HAVE_NUMPY", False)
        assert _fps(detect_replicas_vectorized(ctrace.chunks)) == expected

    def test_with_kernel_accepts_trace_and_chunk_list(self):
        trace = _loop_trace(seed=19, background=100)
        ctrace = ColumnarTrace.from_trace(trace, chunk_records=64)
        by_trace = detect_replicas_with_kernel(ctrace, kernel="vectorized")
        by_list = detect_replicas_with_kernel(ctrace.chunks, kernel="auto")
        assert _fps(by_trace) == _fps(by_list)

    def test_config_validates_kernel(self):
        for tier in KERNEL_TIERS:
            assert DetectorConfig(kernel=tier).kernel == tier
        with pytest.raises(DetectorError):
            DetectorConfig(kernel="simd")
