"""Tests for multi-vantage monitoring and loop-event merging."""

import random

import pytest

from repro.capture.multimonitor import MonitorArray
from repro.core.detector import LoopDetector
from repro.core.vantage import (
    detect_on_all,
    merge_loop_events,
    summarize_vantages,
)
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.routing import (
    BgpProcess,
    EventScheduler,
    FailureSchedule,
    ForwardingEngine,
    LinkStateProtocol,
    LinkStateTimers,
)
from repro.routing.topology import ring_topology

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def _two_sided_loop_run():
    """A 2-router loop watched from both directions of its link."""
    topo = ring_topology(5, propagation_delay=0.002)
    scheduler = EventScheduler()
    igp = LinkStateProtocol(
        topo, scheduler,
        timers=LinkStateTimers(fib_update_delay=0.6, fib_update_jitter=1.2),
        rng=random.Random(1),
    )
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
    bgp.originate(PREFIX, "R0")
    igp.start()
    bgp.start()
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(3))
    array = MonitorArray(engine, [("R4", "R3"), ("R3", "R4"),
                                  ("R1", "R0")])
    FailureSchedule().fail(5.0, "R0--R4").apply(topo, scheduler, igp)
    rng = random.Random(4)
    t = 4.9
    for i in range(400):
        ip = IPv4Header(src=IPv4Address.parse("10.0.0.3"),
                        dst=PREFIX.random_address(rng), ttl=60,
                        identification=i)
        engine.inject_at(
            t, Packet.build(ip, UdpHeader(src_port=99, dst_port=53), b"z"),
            "R3",
        )
        t += 0.01
    scheduler.run(until=60.0)
    return array.finalize()


class TestMonitorArray:
    def test_rejects_empty_and_duplicates(self):
        topo = ring_topology(4)
        scheduler = EventScheduler()
        igp = LinkStateProtocol(topo, scheduler, rng=random.Random(0))
        bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(1))
        igp.start()
        bgp.start()
        engine = ForwardingEngine(topo, scheduler, igp, bgp)
        with pytest.raises(ValueError):
            MonitorArray(engine, [])
        with pytest.raises(ValueError):
            MonitorArray(engine, [("R0", "R1"), ("R0", "R1")])

    def test_traces_keyed_by_direction(self):
        traces = _two_sided_loop_run()
        assert set(traces) == {"R4->R3", "R3->R4", "R1->R0"}
        for trace in traces.values():
            assert trace.snaplen == 40


class TestEventMerging:
    @pytest.fixture(scope="class")
    def results(self):
        return detect_on_all(_two_sided_loop_run())

    def test_loop_seen_from_both_directions(self, results):
        # The 2-router loop on R3--R4 shows in both directions' traces.
        assert results["R4->R3"].loop_count >= 1
        assert results["R3->R4"].loop_count >= 1

    def test_merged_into_one_event(self, results):
        events = merge_loop_events(results)
        loop_events = [event for event in events
                       if event.vantage_count >= 2]
        assert loop_events, "the shared loop should merge across vantages"
        event = loop_events[0]
        assert {"R4->R3", "R3->R4"} <= set(event.vantages)

    def test_summary_overcount(self, results):
        summary = summarize_vantages(results)
        assert summary.events >= 1
        assert summary.naive_total >= summary.events
        assert summary.multi_vantage_events >= 1
        assert summary.overcount_factor >= 1.0

    def test_event_window_covers_sightings(self, results):
        for event in merge_loop_events(results):
            for loops in event.sightings.values():
                for loop in loops:
                    assert event.start <= loop.start
                    assert loop.end <= event.end

    def test_time_slack_validation(self, results):
        with pytest.raises(ValueError):
            merge_loop_events(results, time_slack=-1.0)

    def test_disjoint_events_stay_separate(self):
        """Loops to the same prefix hours apart are separate events."""
        from repro.core.merge import RoutingLoop
        from repro.core.replica import Replica, ReplicaStream

        def fake_result(start):
            stream = ReplicaStream(
                key=b"", replicas=[Replica(0, start, 40),
                                   Replica(1, start + 0.5, 38)],
                src=IPv4Address.parse("1.1.1.1"),
                dst=IPv4Address.parse("192.0.2.5"),
                protocol=6, first_data=b"",
            )

            class FakeResult:
                loops = [RoutingLoop(prefix=PREFIX, streams=[stream])]

            return FakeResult()

        results = {"a": fake_result(100.0), "b": fake_result(5000.0)}
        events = merge_loop_events(results)
        assert len(events) == 2
        assert all(event.vantage_count == 1 for event in events)
