"""Tests for initial-TTL inference (the Figure 3 mechanism check)."""

import random

import pytest

from repro.core.analysis import (
    infer_initial_ttl_base,
    initial_ttl_base_distribution,
    predicted_stream_size_steps,
)
from repro.core.detector import LoopDetector
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


class TestInference:
    @pytest.mark.parametrize(
        "observed, base",
        [(64, 64), (57, 64), (33, 64), (32, 32), (20, 32), (1, 32),
         (65, 128), (117, 128), (128, 128), (129, 255), (255, 255),
         (0, 32)],
    )
    def test_base_inference(self, observed, base):
        assert infer_initial_ttl_base(observed) == base

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            infer_initial_ttl_base(256)
        with pytest.raises(ValueError):
            infer_initial_ttl_base(-1)

    def test_distribution_over_trace(self):
        builder = SyntheticTraceBuilder(rng=random.Random(0))
        builder.add_background(300, 0.0, 10.0,
                               ttl_choices=(55, 60, 118, 120, 250))
        distribution = initial_ttl_base_distribution(builder.build())
        fractions = distribution.fractions()
        assert set(fractions) == {64, 128, 255}
        assert fractions[64] == pytest.approx(0.4, abs=0.08)

    def test_skips_short_records(self):
        from repro.net.trace import Trace, TraceRecord

        trace = Trace()
        trace.append(TraceRecord(timestamp=0.0, data=b"\x45",
                                 wire_length=1))
        assert initial_ttl_base_distribution(trace).total == 0


class TestPredictedSteps:
    def test_prediction_matches_full_runout(self):
        """Streams that run their TTL out hit exactly the predicted
        size: the Figure 3 jump mechanism, verified per stream."""
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_loop(5.0, PREFIX, ttl_delta=2, n_packets=3,
                         entry_ttl=57, spacing=0.01, packet_gap=0.012)
        result = LoopDetector().detect(builder.build())
        predicted = predicted_stream_size_steps(result.streams)
        # entry 57, delta 2 -> floor(56/2)+1 = 29 replicas.
        assert predicted == {29: 3}
        assert all(stream.size == 29 for stream in result.streams)

    def test_prediction_upper_bounds_truncated_streams(self):
        """A stream cut short by loop resolution stays below the
        prediction."""
        builder = SyntheticTraceBuilder(rng=random.Random(2))
        builder.add_loop(5.0, PREFIX, ttl_delta=2, n_packets=2,
                         entry_ttl=57, replicas_per_packet=10,
                         spacing=0.01, packet_gap=0.012)
        result = LoopDetector().detect(builder.build())
        for stream in result.streams:
            predicted_size = (stream.first_ttl - 1) // stream.ttl_delta + 1
            assert stream.size <= predicted_size
