"""Tests for queueing impact and packet-sampling degradation."""

import random

import pytest

from repro.core.detector import LoopDetector
from repro.core.impact import queueing_impact_from_engine
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.net.trace import TraceError
from repro.routing import (
    BgpProcess,
    EventScheduler,
    FailureSchedule,
    ForwardingEngine,
    LinkStateProtocol,
    LinkStateTimers,
)
from repro.routing.topology import ring_topology
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


class TestQueueingImpact:
    def _congested_loop_run(self):
        """A slow link so replica load visibly queues."""
        topo = ring_topology(5, propagation_delay=0.002,
                             capacity_bps=600_000.0,  # a slow 600 kbit/s link
                             max_queue_delay=2.0)
        scheduler = EventScheduler()
        igp = LinkStateProtocol(
            topo, scheduler,
            timers=LinkStateTimers(fib_update_delay=1.5,
                                   fib_update_jitter=1.5),
            rng=random.Random(1),
        )
        bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
        bgp.originate(PREFIX, "R0")
        igp.start()
        bgp.start()
        engine = ForwardingEngine(topo, scheduler, igp, bgp,
                                  rng=random.Random(3))
        FailureSchedule().fail(65.0, "R0--R4").apply(topo, scheduler, igp)
        rng = random.Random(4)
        t = 0.5
        for i in range(4000):
            ip = IPv4Header(src=IPv4Address.parse("10.2.2.2"),
                            dst=PREFIX.random_address(rng), ttl=200,
                            identification=i & 0xFFFF)
            packet = Packet.build(
                ip, UdpHeader(src_port=7, dst_port=7), b"q" * 400)
            engine.inject_at(t, packet, "R3")
            t += 0.03
        scheduler.run(until=180.0)
        return engine

    def test_loop_minutes_have_higher_queueing_delay(self):
        engine = self._congested_loop_run()
        impact = queueing_impact_from_engine(engine)
        assert impact.loop_loss_by_minute.total > 0, "no loop happened"
        active, quiet = impact.loop_minutes_vs_quiet_minutes()
        # Replica load congests the slow link: queueing in loop minutes
        # clearly exceeds quiet minutes (Sec. VI's utilization remark).
        assert active > quiet * 2

    def test_counters_consistent(self):
        engine = self._congested_loop_run()
        assert sum(engine.transmissions_by_minute.values()) > 0
        impact = queueing_impact_from_engine(engine)
        assert impact.overall_mean_queue_delay >= 0.0
        for minute in impact.mean_queue_delay_by_minute:
            assert engine.transmissions_by_minute.get(minute, 0) > 0


class TestSampling:
    def _trace(self):
        builder = SyntheticTraceBuilder(rng=random.Random(0))
        builder.add_background(3000, 0.0, 120.0,
                               prefixes=[IPv4Prefix.parse(
                                   "198.51.100.0/24")])
        for i in range(5):
            builder.add_loop(10.0 + i * 20.0, PREFIX, n_packets=3,
                             replicas_per_packet=8, spacing=0.01,
                             packet_gap=0.012, entry_ttl=40)
        return builder.build()

    def test_sample_validation(self):
        trace = self._trace()
        with pytest.raises(TraceError):
            trace.sample(0, random.Random(1))

    def test_sample_of_one_is_identity(self):
        trace = self._trace()
        sampled = trace.sample(1, random.Random(1))
        assert len(sampled) == len(trace)

    def test_sampling_rate(self):
        trace = self._trace()
        sampled = trace.sample(4, random.Random(1))
        assert len(sampled) == pytest.approx(len(trace) / 4, rel=0.2)

    def test_sampling_destroys_detection(self):
        """Even light sampling collapses replica streams — the reason
        the paper needed every-packet traces."""
        trace = self._trace()
        full = LoopDetector().detect(trace)
        assert full.stream_count == 15
        sampled = trace.sample(8, random.Random(2))
        degraded = LoopDetector().detect(sampled)
        assert degraded.stream_count < full.stream_count / 3
