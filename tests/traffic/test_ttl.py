"""Tests for the initial-TTL model."""

import random
from collections import Counter

import pytest

from repro.traffic.ttl import DEFAULT_TTL_MODEL, InitialTtlModel, TtlModelError


class TestValidation:
    def test_empty_bases_rejected(self):
        with pytest.raises(TtlModelError):
            InitialTtlModel(bases={})

    def test_base_out_of_range_rejected(self):
        with pytest.raises(TtlModelError):
            InitialTtlModel(bases={300: 1.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(TtlModelError):
            InitialTtlModel(bases={64: -1.0})

    def test_hop_range_ordered(self):
        with pytest.raises(TtlModelError):
            InitialTtlModel(bases={64: 1.0}, upstream_hops=(10, 5))

    def test_hops_cannot_exhaust_smallest_base(self):
        with pytest.raises(TtlModelError):
            InitialTtlModel(bases={32: 1.0}, upstream_hops=(0, 32))


class TestSampling:
    def test_sample_in_expected_range(self):
        model = InitialTtlModel(bases={64: 1.0}, upstream_hops=(3, 10))
        rng = random.Random(0)
        for _ in range(200):
            ttl = model.sample(rng)
            assert 54 <= ttl <= 61

    def test_base_weights_respected(self):
        model = InitialTtlModel(bases={64: 7.0, 128: 3.0},
                                upstream_hops=(0, 0))
        rng = random.Random(1)
        counts = Counter(model.sample_base(rng) for _ in range(5000))
        assert counts[64] / 5000 == pytest.approx(0.7, abs=0.03)

    def test_default_model_modes(self):
        """Samples land below the 64/128 bases, never above 255."""
        rng = random.Random(2)
        samples = [DEFAULT_TTL_MODEL.sample(rng) for _ in range(2000)]
        assert max(samples) <= 255
        assert min(samples) > 0
        near_64 = sum(1 for s in samples if 46 <= s <= 61)
        near_128 = sum(1 for s in samples if 110 <= s <= 125)
        assert near_64 / 2000 > 0.35
        assert near_128 / 2000 > 0.2

    def test_deterministic_for_seed(self):
        a = [DEFAULT_TTL_MODEL.sample(random.Random(9)) for _ in range(50)]
        b = [DEFAULT_TTL_MODEL.sample(random.Random(9)) for _ in range(50)]
        assert a == b
