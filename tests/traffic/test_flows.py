"""Tests for prefix populations and flow pools."""

import random
from collections import Counter

import pytest

from repro.net.addr import IPv4Prefix
from repro.traffic.flows import Flow, FlowError, FlowPool, PrefixPopulation


class TestPrefixPopulation:
    def test_requires_egresses(self):
        with pytest.raises(FlowError):
            PrefixPopulation(egresses=[])

    def test_prefix_count_and_uniqueness(self):
        pop = PrefixPopulation(egresses=["a"], n_prefixes=50,
                               rng=random.Random(0))
        assert len(pop.prefixes) == 50
        assert len(set(pop.prefixes)) == 50
        assert all(prefix.length == 24 for prefix in pop.prefixes)

    def test_class_mix_skews_to_class_c(self):
        pop = PrefixPopulation(egresses=["a"], n_prefixes=400,
                               rng=random.Random(1))
        class_c = sum(
            1 for prefix in pop.prefixes
            if prefix.network_address.is_class_c()
        )
        assert class_c / 400 == pytest.approx(0.6, abs=0.08)

    def test_every_prefix_has_primary_egress(self):
        pop = PrefixPopulation(egresses=["a", "b"], n_prefixes=30,
                               rng=random.Random(2))
        assert set(pop.primary_egress) == set(pop.prefixes)
        assert set(pop.primary_egress.values()) <= {"a", "b"}

    def test_multihoming_fraction(self):
        pop = PrefixPopulation(egresses=["a", "b"], n_prefixes=300,
                               rng=random.Random(3),
                               multihomed_fraction=0.5)
        fraction = len(pop.backup_egress) / 300
        assert fraction == pytest.approx(0.5, abs=0.08)
        for prefix, backup in pop.backup_egress.items():
            assert backup != pop.primary_egress[prefix]

    def test_single_egress_never_multihomed(self):
        pop = PrefixPopulation(egresses=["only"], n_prefixes=20,
                               rng=random.Random(4))
        assert pop.backup_egress == {}

    def test_zipf_popularity(self):
        pop = PrefixPopulation(egresses=["a"], n_prefixes=100,
                               rng=random.Random(5), zipf_s=1.2)
        rng = random.Random(6)
        counts = Counter(pop.sample_prefix(rng) for _ in range(10000))
        top = counts.most_common(1)[0][1]
        assert top / 10000 > 0.1  # head prefix carries a big share
        assert pop.popularity(pop.prefixes[0]) > pop.popularity(
            pop.prefixes[-1]
        )

    def test_popularity_of_unknown_prefix(self):
        pop = PrefixPopulation(egresses=["a"], n_prefixes=5,
                               rng=random.Random(7))
        assert pop.popularity(IPv4Prefix.parse("203.0.113.0/24")) == 0.0

    def test_originations_cover_primary_and_backup(self):
        pop = PrefixPopulation(egresses=["a", "b"], n_prefixes=40,
                               rng=random.Random(8))
        pairs = pop.originations()
        assert len(pairs) == 40 + len(pop.backup_egress)

    def test_bad_class_mix_rejected(self):
        with pytest.raises(FlowError):
            PrefixPopulation(egresses=["a"], class_mix=(0.5, 0.5, 0.5))


class TestFlowPool:
    def _pool(self, **kwargs):
        pop = PrefixPopulation(egresses=["a"], n_prefixes=20,
                               rng=random.Random(0))
        return FlowPool(pop, rng=random.Random(1), **kwargs)

    def test_flow_count(self):
        pool = self._pool(n_flows=100)
        assert len(pool.flows) == 100

    def test_flow_destinations_in_population(self):
        pool = self._pool(n_flows=50)
        prefixes = set(pool.population.prefixes)
        for flow in pool.flows:
            assert flow.dst.slash24() in prefixes

    def test_ip_id_increments_per_source(self):
        pool = self._pool(n_flows=10)
        src = pool.flows[0].src
        first = pool.next_ip_id(src)
        second = pool.next_ip_id(src)
        assert second == (first + 1) & 0xFFFF

    def test_ip_id_independent_per_source(self):
        pool = self._pool(n_flows=10)
        src_a = pool.flows[0].src
        id_a = pool.next_ip_id(src_a)
        # A different host does not advance src_a's counter.
        other = pool.flows[1].src if pool.flows[1].src != src_a else (
            pool.flows[2].src
        )
        pool.next_ip_id(other)
        assert pool.next_ip_id(src_a) == (id_a + 1) & 0xFFFF

    def test_sample_flow_returns_pool_member(self):
        pool = self._pool(n_flows=30)
        for _ in range(100):
            assert pool.sample_flow() in pool.flows

    def test_flow_port_validation(self):
        from repro.net.addr import IPv4Address

        with pytest.raises(FlowError):
            Flow(src=IPv4Address.parse("1.1.1.1"),
                 dst=IPv4Address.parse("2.2.2.2"),
                 src_port=70000, dst_port=80)
