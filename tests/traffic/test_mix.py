"""Tests for traffic mixes and packet categories."""

import random
from collections import Counter

import pytest

from repro.net.packet import TcpFlags
from repro.traffic.mix import DEFAULT_MIX, MixError, PacketCategory, TrafficMix


class TestPacketCategory:
    def test_tcp_predicates(self):
        assert PacketCategory.TCP_SYN.is_tcp
        assert not PacketCategory.UDP.is_tcp
        assert PacketCategory.ICMP_ECHO.is_icmp
        assert not PacketCategory.TCP_DATA.is_icmp

    def test_tcp_flags_mapping(self):
        assert PacketCategory.TCP_SYN.tcp_flags() == TcpFlags.SYN
        assert PacketCategory.TCP_SYNACK.tcp_flags() == (
            TcpFlags.SYN | TcpFlags.ACK
        )
        assert PacketCategory.TCP_FIN.tcp_flags() == (
            TcpFlags.FIN | TcpFlags.ACK
        )

    def test_tcp_flags_rejected_for_non_tcp(self):
        with pytest.raises(ValueError):
            PacketCategory.UDP.tcp_flags()


class TestTrafficMix:
    def test_normalization(self):
        mix = TrafficMix(weights={PacketCategory.UDP: 1.0,
                                  PacketCategory.TCP_DATA: 3.0})
        assert mix.fraction(PacketCategory.TCP_DATA) == pytest.approx(0.75)
        assert mix.fraction(PacketCategory.UDP) == pytest.approx(0.25)
        assert mix.fraction(PacketCategory.ICMP_ECHO) == 0.0

    def test_empty_mix_rejected(self):
        with pytest.raises(MixError):
            TrafficMix(weights={})

    def test_negative_weight_rejected(self):
        with pytest.raises(MixError):
            TrafficMix(weights={PacketCategory.UDP: -1.0})

    def test_all_zero_rejected(self):
        with pytest.raises(MixError):
            TrafficMix(weights={PacketCategory.UDP: 0.0})

    def test_sample_matches_weights(self):
        mix = TrafficMix(weights={PacketCategory.UDP: 1.0,
                                  PacketCategory.TCP_DATA: 9.0})
        rng = random.Random(0)
        counts = Counter(mix.sample(rng) for _ in range(5000))
        assert counts[PacketCategory.TCP_DATA] / 5000 == pytest.approx(
            0.9, abs=0.03
        )

    def test_fast_sampler_matches_weights(self):
        mix = TrafficMix(weights={PacketCategory.UDP: 2.0,
                                  PacketCategory.ICMP_ECHO: 8.0})
        draw = mix.sampler(random.Random(1))
        counts = Counter(draw() for _ in range(5000))
        assert counts[PacketCategory.ICMP_ECHO] / 5000 == pytest.approx(
            0.8, abs=0.03
        )

    def test_default_mix_is_tcp_dominated(self):
        tcp = sum(
            fraction for category, fraction in DEFAULT_MIX.normalized.items()
            if category.is_tcp
        )
        assert tcp > 0.8
        udp = DEFAULT_MIX.fraction(PacketCategory.UDP)
        assert 0.05 <= udp <= 0.15

    def test_default_syn_fin_below_one_percent(self):
        assert DEFAULT_MIX.fraction(PacketCategory.TCP_SYN) < 0.01
        assert DEFAULT_MIX.fraction(PacketCategory.TCP_FIN) < 0.01
