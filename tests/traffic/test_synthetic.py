"""Tests for the synthetic trace builder (planted ground truth)."""

import random

import pytest

from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticError, SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


class TestBackground:
    def test_background_count_and_ordering(self):
        builder = SyntheticTraceBuilder(rng=random.Random(0))
        builder.add_background(100, 0.0, 10.0)
        trace = builder.build()
        assert len(trace) == 100
        stamps = [record.timestamp for record in trace]
        assert stamps == sorted(stamps)

    def test_background_window_validation(self):
        builder = SyntheticTraceBuilder()
        with pytest.raises(SyntheticError):
            builder.add_background(5, 10.0, 10.0)

    def test_duplicate_pair_identical_bytes(self):
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_duplicate_pair(5.0)
        trace = builder.build()
        assert len(trace) == 2
        assert trace[0].data == trace[1].data


class TestPlantedLoops:
    def test_loop_replica_counts(self):
        builder = SyntheticTraceBuilder(rng=random.Random(2))
        loop = builder.add_loop(1.0, PREFIX, ttl_delta=2, n_packets=3,
                                replicas_per_packet=5, entry_ttl=60)
        trace = builder.build()
        assert len(trace) == 15
        assert len(loop.streams) == 3
        assert all(len(stream) == 5 for stream in loop.streams)

    def test_loop_ttls_decrement_by_delta(self):
        builder = SyntheticTraceBuilder(rng=random.Random(3))
        loop = builder.add_loop(0.0, PREFIX, ttl_delta=3, n_packets=1,
                                replicas_per_packet=4, entry_ttl=30)
        ttls = [ttl for _, ttl in loop.streams[0]]
        assert ttls == [30, 27, 24, 21]

    def test_default_replica_count_runs_ttl_out(self):
        builder = SyntheticTraceBuilder(rng=random.Random(4))
        loop = builder.add_loop(0.0, PREFIX, ttl_delta=2, n_packets=1,
                                entry_ttl=10)
        ttls = [ttl for _, ttl in loop.streams[0]]
        assert ttls == [10, 8, 6, 4, 2]

    def test_too_many_replicas_rejected(self):
        builder = SyntheticTraceBuilder()
        with pytest.raises(SyntheticError):
            builder.add_loop(0.0, PREFIX, ttl_delta=2, n_packets=1,
                             replicas_per_packet=40, entry_ttl=10)

    def test_replicas_differ_only_in_ttl_and_checksum(self):
        builder = SyntheticTraceBuilder(rng=random.Random(5))
        builder.add_loop(0.0, PREFIX, ttl_delta=2, n_packets=1,
                         replicas_per_packet=3, entry_ttl=20)
        trace = builder.build()
        first, second = trace[0].data, trace[1].data
        diff = [i for i in range(len(first)) if first[i] != second[i]]
        assert set(diff) <= {8, 10, 11}

    def test_loop_end_property(self):
        builder = SyntheticTraceBuilder(rng=random.Random(6))
        loop = builder.add_loop(2.0, PREFIX, spacing=0.01, n_packets=2,
                                replicas_per_packet=3, entry_ttl=30,
                                packet_gap=0.1, jitter=0.0)
        assert loop.end == pytest.approx(2.12)

    def test_parameter_validation(self):
        builder = SyntheticTraceBuilder()
        with pytest.raises(SyntheticError):
            builder.add_loop(0.0, PREFIX, ttl_delta=0)
        with pytest.raises(SyntheticError):
            builder.add_loop(0.0, PREFIX, n_packets=0)
        with pytest.raises(SyntheticError):
            builder.add_loop(0.0, PREFIX, spacing=0.0)

    def test_interleaving_with_background(self):
        builder = SyntheticTraceBuilder(rng=random.Random(7))
        builder.add_background(50, 0.0, 2.0,
                               prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
        builder.add_loop(0.5, PREFIX, n_packets=2, replicas_per_packet=4,
                         entry_ttl=20)
        trace = builder.build()
        assert len(trace) == 58
        stamps = [record.timestamp for record in trace]
        assert stamps == sorted(stamps)
