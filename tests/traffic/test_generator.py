"""Tests for the workload generator."""

import random
from collections import Counter

import pytest

from repro.net.addr import IPv4Prefix
from repro.net.packet import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP, TcpHeader
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.forwarding import ForwardingEngine
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import line_topology
from repro.traffic.flows import PrefixPopulation
from repro.traffic.generator import GeneratorError, WorkloadGenerator
from repro.traffic.mix import PacketCategory, TrafficMix


@pytest.fixture
def engine():
    topo = line_topology(3)
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(1))
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
    population = PrefixPopulation(egresses=["R2"], n_prefixes=20,
                                  rng=random.Random(3))
    for prefix, egress in population.originations():
        bgp.originate(prefix, egress)
    bgp.originate(IPv4Prefix.parse("224.0.0.0/4"), "R2")
    igp.start()
    bgp.start()
    eng = ForwardingEngine(topo, scheduler, igp, bgp, rng=random.Random(4))
    eng.population = population  # convenience for tests
    return eng


def _generator(engine, **kwargs):
    defaults = dict(rate_pps=200.0, rng=random.Random(5), n_flows=50)
    defaults.update(kwargs)
    return WorkloadGenerator(engine, engine.population, **defaults)


class TestConfiguration:
    def test_rate_must_be_positive(self, engine):
        with pytest.raises(GeneratorError):
            _generator(engine, rate_pps=0.0)

    def test_unknown_ingress_rejected(self, engine):
        with pytest.raises(GeneratorError):
            _generator(engine, ingress_weights={"ghost": 1.0})

    def test_bad_window_rejected(self, engine):
        generator = _generator(engine)
        with pytest.raises(GeneratorError):
            generator.run(10.0, 10.0)


class TestPacketConstruction:
    def test_categories_produce_correct_protocols(self, engine):
        generator = _generator(engine)
        protocol_by_category = {
            PacketCategory.TCP_DATA: IPPROTO_TCP,
            PacketCategory.UDP: IPPROTO_UDP,
            PacketCategory.ICMP_ECHO: IPPROTO_ICMP,
        }
        for category, protocol in protocol_by_category.items():
            flow = generator.flows.sample_flow()
            packet = generator._build(category, flow)
            assert packet.ip.protocol == protocol

    def test_tcp_flags_set(self, engine):
        generator = _generator(engine)
        flow = generator.flows.sample_flow()
        packet = generator._build(PacketCategory.TCP_SYN, flow)
        assert isinstance(packet.l4, TcpHeader)
        assert packet.l4.flags & 0x02

    def test_multicast_destination_is_class_d(self, engine):
        generator = _generator(engine)
        flow = generator.flows.sample_flow()
        packet = generator._build(PacketCategory.MULTICAST, flow)
        assert packet.ip.dst.is_multicast()

    def test_other_category_uses_raw_protocol(self, engine):
        generator = _generator(engine)
        flow = generator.flows.sample_flow()
        packet = generator._build(PacketCategory.OTHER, flow)
        assert packet.ip.protocol in (47, 50)
        assert packet.l4 is None

    def test_control_segments_have_no_payload(self, engine):
        generator = _generator(engine)
        flow = generator.flows.sample_flow()
        for category in (PacketCategory.TCP_SYN, PacketCategory.TCP_FIN,
                         PacketCategory.TCP_RST):
            packet = generator._build(category, flow)
            assert packet.payload == b""

    def test_packets_have_valid_wire_form(self, engine):
        from repro.net.packet import Packet

        generator = _generator(engine)
        for _ in range(50):
            packet, ingress = generator.next_packet()
            wire = packet.pack()
            parsed = Packet.unpack(wire)
            assert parsed.ip.dst == packet.ip.dst
            assert ingress in engine.topology.routers

    def test_ttl_values_follow_model(self, engine):
        generator = _generator(engine)
        ttls = [generator.next_packet()[0].ip.ttl for _ in range(300)]
        # Multicast packets are clamped to <= 32; everything else follows
        # the model (bases minus upstream hops).
        assert all(0 < ttl <= 255 for ttl in ttls)
        assert any(ttl > 100 for ttl in ttls)  # 128-base population present


class TestScheduling:
    def test_poisson_arrivals_hit_target_rate(self, engine):
        generator = _generator(engine, rate_pps=500.0)
        generator.run(0.0, 20.0)
        engine.scheduler.run(until=30.0)
        expected = 500.0 * 20.0
        assert engine.packets_injected >= 0.85 * expected
        # ICMP time-exceeded replies can push the count slightly above.
        assert generator.stats.packets <= 1.15 * expected

    def test_stats_track_categories(self, engine):
        generator = _generator(engine, rate_pps=300.0)
        generator.run(0.0, 10.0)
        engine.scheduler.run(until=20.0)
        assert sum(generator.stats.by_category.values()) == (
            generator.stats.packets
        )
        assert generator.stats.by_category.get(
            PacketCategory.TCP_DATA, 0
        ) > 0

    def test_deterministic_given_seeds(self):
        def build():
            topo = line_topology(3)
            scheduler = EventScheduler()
            igp = LinkStateProtocol(topo, scheduler, rng=random.Random(1))
            bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
            population = PrefixPopulation(egresses=["R2"], n_prefixes=10,
                                          rng=random.Random(3))
            for prefix, egress in population.originations():
                bgp.originate(prefix, egress)
            igp.start()
            bgp.start()
            eng = ForwardingEngine(topo, scheduler, igp, bgp,
                                   rng=random.Random(4))
            gen = WorkloadGenerator(eng, population, rate_pps=100.0,
                                    rng=random.Random(5), n_flows=20)
            gen.run(0.0, 5.0)
            scheduler.run(until=10.0)
            return eng.packets_injected, eng.fate_counts

        assert build() == build()

    def test_custom_mix_respected(self, engine):
        mix = TrafficMix(weights={PacketCategory.UDP: 1.0})
        generator = _generator(engine, mix=mix, rate_pps=200.0)
        generator.run(0.0, 5.0)
        engine.scheduler.run(until=10.0)
        assert set(generator.stats.by_category) == {PacketCategory.UDP}
