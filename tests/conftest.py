"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, TcpFlags, TcpHeader, UdpHeader


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def sample_tcp_packet() -> Packet:
    ip = IPv4Header(
        src=IPv4Address.parse("10.1.2.3"),
        dst=IPv4Address.parse("192.0.2.77"),
        ttl=62,
        identification=4242,
    )
    tcp = TcpHeader(src_port=40000, dst_port=80, seq=1000, ack=2000,
                    flags=TcpFlags.ACK | TcpFlags.PSH)
    return Packet.build(ip, tcp, b"GET / HTTP/1.0\r\n")


@pytest.fixture
def sample_udp_packet() -> Packet:
    ip = IPv4Header(
        src=IPv4Address.parse("172.16.0.9"),
        dst=IPv4Address.parse("198.51.100.5"),
        ttl=120,
        identification=77,
    )
    udp = UdpHeader(src_port=5353, dst_port=53)
    return Packet.build(ip, udp, b"\x12\x34query")


@pytest.fixture
def dest_prefix() -> IPv4Prefix:
    return IPv4Prefix.parse("192.0.2.0/24")


def small_sim(seed: int = 7, pops: int = 6, rate: float = 400.0,
              duration: float = 60.0):
    """A compact simulated run for tests that need real loops.

    Returns the ScenarioRun.  Built on demand (not a fixture) so tests
    can vary parameters; see tests/integration for session-scoped reuse.
    """
    from repro.sim.backbone import BackboneScenario, ScenarioConfig

    config = ScenarioConfig(
        name=f"test-{seed}",
        seed=seed,
        pops=pops,
        extra_edges=2,
        duration=duration,
        rate_pps=rate,
        n_prefixes=60,
        n_flows=400,
        igp_flaps=4,
        flap_downtime=(3.0, 10.0),
        bgp_withdrawals=2,
        withdrawal_holdtime=20.0,
    )
    return BackboneScenario(config).run()


@pytest.fixture(scope="session")
def shared_run():
    """One medium simulated run shared across the test session."""
    return small_sim(seed=11, duration=90.0)


@pytest.fixture(scope="session")
def shared_detection(shared_run):
    from repro.core.detector import LoopDetector

    return LoopDetector().detect(shared_run.trace)
