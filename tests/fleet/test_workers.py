"""Tests for the process backend: worker fan-out, relay parity, and
crash recovery when the crashing thing is a whole worker process.

Process spawns are slow (~0.5 s each on CI), so the live tests share
small fleets and generous-but-bounded polling helpers.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal

import pytest

from repro.fleet.config import FleetConfig
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.workers import (
    ProcessFleetSupervisor,
    build_supervisor,
    partition_links,
    resolve_workers,
)
from repro.net.addr import IPv4Prefix
from repro.net.pcap import write_pcap
from repro.obs.metrics import parse_prometheus
from repro.traffic.synthetic import SyntheticTraceBuilder


def build_trace(seed: int = 7):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    builder.add_background(200, 0.0, 60.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(10.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=3,
                     replicas_per_packet=6, spacing=0.02, entry_ttl=40)
    builder.add_loop(35.0, IPv4Prefix.parse("203.0.113.0/24"), n_packets=2,
                     replicas_per_packet=5, spacing=0.05, entry_ttl=50)
    return builder.build()


@pytest.fixture(scope="module")
def good_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("workers") / "good.pcap"
    write_pcap(build_trace(), path)
    return path


def fleet_config(*links, workers=1, max_restarts=5, backoff=0.1):
    return FleetConfig.from_dict({
        "fleet": {"backend": "process", "workers": workers,
                  "restart": {"max_restarts": max_restarts,
                              "backoff_base": backoff,
                              "backoff_cap": 0.5,
                              "jitter": 0.0}},
        "links": list(links),
    })


def pcap_link(link_id, path):
    return {"id": link_id, "source": {"kind": "pcap", "path": str(path)}}


def watch_link(link_id, directory):
    return {"id": link_id,
            "source": {"kind": "watch", "directory": str(directory)}}


async def poll_until(supervisor, predicate, timeout=30.0, interval=0.1):
    """Poll ``predicate(snapshot)`` until it holds; False on timeout."""
    for _ in range(int(timeout / interval)):
        if predicate(supervisor.snapshot()):
            return True
        await asyncio.sleep(interval)
    return False


def link_row(snapshot, link_id):
    return next(row for row in snapshot["links"] if row["id"] == link_id)


class TestPartitioning:
    def test_round_robin_groups(self):
        config = fleet_config(
            pcap_link("a", "x.pcap"), pcap_link("b", "x.pcap"),
            pcap_link("c", "x.pcap"), workers=2)
        groups = partition_links(config.links, 2)
        assert [[link.id for link in group] for group in groups] \
            == [["a", "c"], ["b"]]

    def test_never_more_workers_than_links(self):
        config = fleet_config(pcap_link("a", "x.pcap"), workers=8)
        assert resolve_workers(config) == 1

    def test_auto_workers_capped_by_cpu_count(self):
        config = FleetConfig.from_dict({
            "fleet": {"backend": "process"},
            "links": [pcap_link(f"l{i}", "x.pcap") for i in range(64)],
        })
        assert resolve_workers(config) == min(64, os.cpu_count() or 1)

    def test_empty_groups_dropped(self):
        config = fleet_config(pcap_link("a", "x.pcap"), workers=1)
        assert len(partition_links(config.links, 1)) == 1


class TestBuildSupervisor:
    def test_thread_backend_default(self, good_pcap):
        config = FleetConfig.from_dict(
            {"links": [pcap_link("a", good_pcap)]})
        assert isinstance(build_supervisor(config), FleetSupervisor)

    def test_process_backend(self, good_pcap):
        config = fleet_config(pcap_link("a", good_pcap))
        assert isinstance(build_supervisor(config),
                          ProcessFleetSupervisor)


class TestEndpointParity:
    """Both backends must serve byte-compatible document *shapes* —
    the parity criterion the HTTP API relies on."""

    def run_both(self, good_pcap):
        config_thread = FleetConfig.from_dict(
            {"links": [pcap_link("a", good_pcap)]})
        thread = FleetSupervisor(config_thread)
        asyncio.run(thread.run())
        process = ProcessFleetSupervisor(fleet_config(
            pcap_link("a", good_pcap)))
        asyncio.run(process.run())
        return thread, process

    def test_snapshot_and_metrics_shapes_match(self, good_pcap):
        thread, process = self.run_both(good_pcap)
        snap_thread = thread.snapshot()
        snap_process = process.snapshot()
        assert sorted(snap_thread) == sorted(snap_process)
        row_thread = link_row(snap_thread, "a")
        row_process = link_row(snap_process, "a")
        assert sorted(row_thread) == sorted(row_process)
        assert row_process["state"] == "stopped"
        assert row_process["records"] == row_thread["records"]
        assert row_process["loops"] == row_thread["loops"] == 2
        # Same per-link document keys.
        state_thread = thread.pipelines["a"].state()
        state_process = process.pipelines["a"].state()
        assert sorted(state_thread) == sorted(state_process)
        assert (state_process["recorder"]["records"]
                == state_thread["recorder"]["records"])
        # Same metric series on both sides of the process boundary.
        parsed_thread = parse_prometheus(thread.render_metrics())
        parsed_process = parse_prometheus(process.render_metrics())
        for kind in ("counters", "gauges", "histograms"):
            assert sorted(parsed_thread[kind]) \
                == sorted(parsed_process[kind]), kind

    def test_perf_and_rate_surface(self, good_pcap):
        _, process = self.run_both(good_pcap)
        perf = process.pipelines["a"].perf()
        assert {stage["name"] for stage in perf["stages"]} \
            >= {"detect.feed", "detect.flush"}
        assert process.pipelines["a"].records_per_s() == pytest.approx(
            link_row(process.snapshot(), "a")["records_per_s"])
        monitor = process.pipelines["a"].monitor
        assert monitor is not None
        assert monitor.state()["recorder"]["records"] > 0
        assert set(monitor.samples()) == {
            "stream_sizes", "stream_durations", "replica_spacings",
            "loop_durations"}


class TestLifecycle:
    def test_placeholder_rows_before_first_bundle(self, good_pcap):
        supervisor = ProcessFleetSupervisor(fleet_config(
            pcap_link("a", good_pcap)))
        snapshot = supervisor.snapshot()
        row = link_row(snapshot, "a")
        assert row["state"] == "starting"
        assert row["records"] == 0
        assert supervisor.pipelines["a"].monitor is None
        assert supervisor.pipelines["a"].registry is None

    def test_finite_sources_complete_naturally(self, good_pcap):
        supervisor = ProcessFleetSupervisor(fleet_config(
            pcap_link("a", good_pcap), pcap_link("b", good_pcap),
            workers=2))
        asyncio.run(supervisor.run())
        snapshot = supervisor.snapshot()
        assert snapshot["states"] == {"stopped": 2}
        assert all(row["records"] > 0 for row in snapshot["links"])

    def test_restart_relays_to_the_owning_worker(self, tmp_path,
                                                 good_pcap):
        watch = tmp_path / "captures"
        watch.mkdir()
        write_pcap(build_trace(), watch / "w-0001.pcap")
        supervisor = ProcessFleetSupervisor(fleet_config(
            watch_link("w", watch)))

        async def scenario():
            run = asyncio.ensure_future(supervisor.run())
            assert await poll_until(
                supervisor,
                lambda s: (link_row(s, "w")["state"] == "running"
                           and link_row(s, "w")["records"] > 0))
            assert supervisor.request_restart("w") is True
            assert supervisor.request_restart("nope") is False
            assert await poll_until(
                supervisor,
                lambda s: link_row(s, "w")["restarts_total"] >= 1)
            supervisor.shutdown()
            await run

        asyncio.run(scenario())
        assert link_row(supervisor.snapshot(), "w")["state"] == "stopped"

    def test_killed_worker_degrades_then_recovers(self, tmp_path):
        watch = tmp_path / "captures"
        watch.mkdir()
        write_pcap(build_trace(), watch / "w-0001.pcap")
        supervisor = ProcessFleetSupervisor(fleet_config(
            watch_link("w", watch)))
        seen = {"degraded": False}

        async def scenario():
            run = asyncio.ensure_future(supervisor.run())
            assert await poll_until(
                supervisor,
                lambda s: (link_row(s, "w")["state"] == "running"
                           and link_row(s, "w")["records"] > 0))
            pid = supervisor.handles["worker-0"].pid
            assert pid is not None
            os.kill(pid, signal.SIGKILL)

            def recovered(snapshot):
                state = link_row(snapshot, "w")["state"]
                if state == "degraded":
                    seen["degraded"] = True
                return seen["degraded"] and state == "running"

            assert await poll_until(supervisor, recovered)
            supervisor.shutdown()
            await run

        asyncio.run(scenario())
        row = link_row(supervisor.snapshot(), "w")
        # The worker's death is charged to the links it took down, and
        # stays visible after the respawned worker starts fresh.
        assert row["crashes_total"] >= 1
        assert row["state"] == "stopped"
        # The degraded transition survives the respawned worker's fresh
        # inner history, and the recovery shows after it.
        history = [entry["state"] for entry in row["history"]]
        assert "degraded" in history
        assert history.index("degraded") < len(history) - 1
