"""Tests for the supervised-task state machine and restart policy."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.fleet.task import RestartPolicy, SupervisedTask, TaskState


class TestRestartPolicy:
    def test_delay_doubles_up_to_cap(self):
        policy = RestartPolicy(backoff_base=1.0, backoff_cap=8.0,
                               jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(i, rng) for i in range(1, 7)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_only_stretches(self):
        policy = RestartPolicy(backoff_base=1.0, backoff_cap=1.0,
                               jitter=0.5)
        rng = random.Random(42)
        for _ in range(100):
            delay = policy.delay(1, rng)
            assert 1.0 <= delay <= 1.5

    @pytest.mark.parametrize("kwargs", [
        {"max_restarts": -1},
        {"backoff_base": 0.0},
        {"backoff_base": 2.0, "backoff_cap": 1.0},
        {"jitter": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RestartPolicy(**kwargs)


class Recorder:
    """Fake sleeper + clock so the machine runs without real waiting."""

    def __init__(self):
        self.delays: list[float] = []
        self.now = 0.0

    async def sleep(self, delay: float) -> None:
        self.delays.append(delay)
        self.now += delay
        await asyncio.sleep(0)

    def clock(self) -> float:
        return self.now


def make_task(body, policy=None, recorder=None) -> SupervisedTask:
    recorder = recorder or Recorder()
    return SupervisedTask(
        "link", body, policy=policy or RestartPolicy(jitter=0.0),
        clock=recorder.clock, sleep=recorder.sleep,
        rng=random.Random(0),
    )


def states(task: SupervisedTask) -> list[str]:
    return [entry["state"] for entry in task.history]


class TestSupervisedTask:
    def test_clean_completion(self):
        async def body():
            await asyncio.sleep(0)

        async def scenario():
            task = make_task(body)
            await task.start()
            return task

        task = asyncio.run(scenario())
        assert task.state is TaskState.STOPPED
        assert task.runs_completed == 1
        assert task.crashes_total == 0
        assert states(task) == ["starting", "running", "stopped"]

    def test_crash_restarts_with_backoff_then_fails(self):
        recorder = Recorder()

        async def body():
            raise RuntimeError("pcap truncated")

        async def scenario():
            policy = RestartPolicy(max_restarts=3, backoff_base=0.5,
                                   backoff_cap=10.0, jitter=0.0)
            task = make_task(body, policy=policy, recorder=recorder)
            await task.start()
            return task

        task = asyncio.run(scenario())
        assert task.state is TaskState.FAILED
        # 3 restarts allowed -> 4 runs total, 3 backoff sleeps.
        assert task.crashes_total == 4
        assert recorder.delays == [0.5, 1.0, 2.0]
        assert "pcap truncated" in task.last_error
        assert "budget exhausted" in task.history[-1]["detail"]
        expected = (["starting", "running", "degraded"] * 3
                    + ["starting", "running", "failed"])
        assert states(task) == expected

    def test_success_resets_crash_count(self):
        attempts = []

        async def body():
            attempts.append(None)
            if len(attempts) < 3:
                raise RuntimeError("flaky start")

        async def scenario():
            task = make_task(body, policy=RestartPolicy(max_restarts=2,
                                                        jitter=0.0))
            await task.start()
            return task

        task = asyncio.run(scenario())
        assert task.state is TaskState.STOPPED
        assert task.crashes == 0
        assert task.crashes_total == 2
        assert task.runs_completed == 1

    def test_stop_cancels_a_hung_body(self):
        async def scenario():
            ready = asyncio.Event()

            async def body():
                ready.set()
                await asyncio.Event().wait()  # hangs forever

            task = make_task(body)
            task.start()
            await ready.wait()
            assert task.state is TaskState.RUNNING
            await task.stop()
            return task

        task = asyncio.run(scenario())
        assert task.state is TaskState.STOPPED
        assert task.history[-1]["detail"] == "cancelled"

    def test_manual_restart_does_not_consume_budget(self):
        runs = []

        async def scenario():
            async def body():
                runs.append(None)
                await asyncio.Event().wait()  # hangs until cancelled

            task = make_task(body, policy=RestartPolicy(max_restarts=0))
            task.start()
            for _ in range(10):
                await asyncio.sleep(0)
                if runs:
                    break
            assert task.state is TaskState.RUNNING
            task.restart()
            for _ in range(20):
                await asyncio.sleep(0)
                if len(runs) == 2:
                    break
            assert task.state is TaskState.RUNNING
            await task.stop()
            return task

        task = asyncio.run(scenario())
        assert len(runs) == 2
        assert task.restarts_total == 1
        assert task.crashes_total == 0

    def test_restart_rearms_a_failed_task(self):
        attempts = []

        async def scenario():
            async def body():
                attempts.append(None)
                if len(attempts) == 1:
                    raise RuntimeError("bad capture")

            task = make_task(body, policy=RestartPolicy(max_restarts=0))
            await task.start()
            assert task.state is TaskState.FAILED
            task.restart()
            await asyncio.sleep(0)
            inner = task._task
            assert inner is not None
            await inner
            return task

        task = asyncio.run(scenario())
        assert task.state is TaskState.STOPPED
        assert len(attempts) == 2
        assert task.runs_completed == 1

    def test_restart_during_backoff_skips_the_wait(self):
        attempts = []

        async def scenario():
            async def body():
                attempts.append(None)
                if len(attempts) == 1:
                    raise RuntimeError("transient")
                await asyncio.Event().wait()

            # Enormous backoff: only a restart can get past it.
            policy = RestartPolicy(max_restarts=5, backoff_base=3600.0,
                                   backoff_cap=3600.0, jitter=0.0)
            task = SupervisedTask("link", body, policy=policy,
                                  rng=random.Random(0))
            task.start()
            for _ in range(10):
                await asyncio.sleep(0)
            assert task.state is TaskState.DEGRADED
            task.restart()
            for _ in range(10):
                await asyncio.sleep(0)
            assert task.state is TaskState.RUNNING
            await task.stop()
            return task

        task = asyncio.run(scenario())
        assert len(attempts) == 2

    def test_snapshot_is_json_ready(self):
        async def body():
            await asyncio.sleep(0)

        async def scenario():
            task = make_task(body)
            await task.start()
            return task.snapshot()

        snapshot = asyncio.run(scenario())
        import json

        json.dumps(snapshot)
        assert snapshot["name"] == "link"
        assert snapshot["state"] == "stopped"
        assert [h["state"] for h in snapshot["history"]] == [
            "starting", "running", "stopped"
        ]
