"""Tests for the fleet supervisor: crash recovery and reporting."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.fleet.config import FleetConfig
from repro.fleet.supervisor import FleetSupervisor
from repro.net.addr import IPv4Prefix
from repro.net.pcap import write_pcap
from repro.obs.metrics import parse_prometheus
from repro.traffic.synthetic import SyntheticTraceBuilder


def build_trace(seed: int = 7):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    builder.add_background(200, 0.0, 60.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(10.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=3,
                     replicas_per_packet=6, spacing=0.02, entry_ttl=40)
    builder.add_loop(35.0, IPv4Prefix.parse("203.0.113.0/24"), n_packets=2,
                     replicas_per_packet=5, spacing=0.05, entry_ttl=50)
    return builder.build()


@pytest.fixture(scope="module")
def good_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet") / "good.pcap"
    write_pcap(build_trace(), path)
    return path


@pytest.fixture(scope="module")
def regressing_pcap(tmp_path_factory):
    """A capture whose final record travels back in time: it parses
    fine, feeds the detector for a while, then crashes the pipeline
    mid-stream (the streaming detector rejects time regressions)."""
    from dataclasses import replace

    path = tmp_path_factory.mktemp("fleet") / "regressing.pcap"
    trace = build_trace()
    trace.records.append(replace(trace.records[-1], timestamp=0.5))
    write_pcap(trace, path)
    return path


def fleet_config(*links, max_restarts=2):
    return FleetConfig.from_dict({
        "fleet": {"restart": {"max_restarts": max_restarts,
                              "backoff_base": 0.01,
                              "backoff_cap": 0.05,
                              "jitter": 0.0}},
        "links": list(links),
    })


def pcap_link(link_id, path):
    return {"id": link_id, "source": {"kind": "pcap", "path": str(path)}}


class TestCrashRecovery:
    def test_source_crash_backs_off_then_fails(self, regressing_pcap):
        config = fleet_config(pcap_link("bad", regressing_pcap),
                              max_restarts=2)
        supervisor = FleetSupervisor(config)
        asyncio.run(supervisor.run())
        task = supervisor.tasks["bad"]
        assert task.state.value == "failed"
        assert task.crashes_total == 3  # initial run + 2 restarts
        # Every transition of every attempt is visible to the API.
        states = [entry["state"] for entry in task.history]
        assert states == (["starting", "running", "degraded"] * 2
                          + ["starting", "running", "failed"])
        assert "budget exhausted" in task.history[-1]["detail"]
        # The crashed run still closed its books: the records parsed
        # before the truncation are visible.
        row = supervisor.pipelines["bad"].row()
        assert row["records"] > 0
        assert row["run_finished"]

    def test_one_bad_link_does_not_poison_neighbours(
            self, good_pcap, regressing_pcap):
        config = fleet_config(pcap_link("good", good_pcap),
                              pcap_link("bad", regressing_pcap),
                              max_restarts=1)
        supervisor = FleetSupervisor(config)
        asyncio.run(supervisor.run())
        snapshot = supervisor.snapshot()
        by_id = {row["id"]: row for row in snapshot["links"]}
        assert by_id["good"]["state"] == "stopped"
        assert by_id["good"]["loops"] == 2
        assert by_id["bad"]["state"] == "failed"
        assert snapshot["states"] == {"failed": 1, "stopped": 1}

    def test_run_for_stops_an_endless_watch(self, tmp_path, good_pcap):
        watch = tmp_path / "captures"
        watch.mkdir()
        (watch / "c-0001.pcap").write_bytes(good_pcap.read_bytes())
        config = fleet_config({
            "id": "w",
            "source": {"kind": "watch", "directory": str(watch),
                       "poll_interval": 0.01},
        })
        supervisor = FleetSupervisor(config)
        asyncio.run(supervisor.run(run_for=0.7))
        task = supervisor.tasks["w"]
        assert task.state.value == "stopped"
        assert supervisor.pipelines["w"].row()["loops"] == 2

    def test_watch_picks_up_new_files(self, tmp_path, good_pcap):
        watch = tmp_path / "captures"
        watch.mkdir()
        (watch / "c-0001.pcap").write_bytes(good_pcap.read_bytes())
        config = fleet_config({
            "id": "w",
            "source": {"kind": "watch", "directory": str(watch),
                       "poll_interval": 0.01},
        })
        supervisor = FleetSupervisor(config)

        async def scenario():
            supervisor.start()
            pipeline = supervisor.pipelines["w"]
            for _ in range(200):
                await asyncio.sleep(0.01)
                if pipeline.row()["records"]:
                    break
            first = pipeline.row()["records"]
            assert first > 0
            # Drop a second rotation: same records, shifted past the
            # first file so the merged feed stays time-ordered.
            from dataclasses import replace

            trace = build_trace()
            trace.records = [
                replace(record, timestamp=record.timestamp + 120.0)
                for record in trace.records
            ]
            write_pcap(trace, watch / "c-0002.pcap")
            for _ in range(300):
                await asyncio.sleep(0.01)
                if pipeline.row()["records"] == 2 * first:
                    break
            await supervisor.stop()
            return first, pipeline.row()

        first, row = asyncio.run(scenario())
        assert row["records"] == 2 * first

    def test_shutdown_stops_an_endless_watch(self, tmp_path, good_pcap):
        watch = tmp_path / "captures"
        watch.mkdir()
        (watch / "c-0001.pcap").write_bytes(good_pcap.read_bytes())
        config = fleet_config({
            "id": "w",
            "source": {"kind": "watch", "directory": str(watch),
                       "poll_interval": 0.01},
        })
        supervisor = FleetSupervisor(config)

        async def scenario():
            runner = asyncio.ensure_future(supervisor.run())
            pipeline = supervisor.pipelines["w"]
            for _ in range(200):
                await asyncio.sleep(0.01)
                if pipeline.row()["records"]:
                    break
            supervisor.shutdown()
            await asyncio.wait_for(runner, timeout=5.0)

        asyncio.run(scenario())
        assert supervisor.tasks["w"].state.value == "stopped"
        assert supervisor.pipelines["w"].row()["records"] > 0

    def test_shutdown_before_start_is_remembered(self, tmp_path,
                                                 good_pcap):
        watch = tmp_path / "captures"
        watch.mkdir()
        config = fleet_config({
            "id": "w",
            "source": {"kind": "watch", "directory": str(watch),
                       "poll_interval": 0.01},
        })
        supervisor = FleetSupervisor(config)
        supervisor.shutdown()

        async def scenario():
            await asyncio.wait_for(supervisor.run(), timeout=5.0)

        asyncio.run(scenario())
        assert supervisor.tasks["w"].state.value == "stopped"

    def test_natural_completion_leaves_failed_state(self,
                                                    regressing_pcap):
        # run() must not relabel a link that exhausted its crash
        # budget: FAILED is an operator signal, not "stopped".
        config = fleet_config(pcap_link("bad", regressing_pcap),
                              max_restarts=0)
        supervisor = FleetSupervisor(config)
        asyncio.run(supervisor.run())
        assert supervisor.tasks["bad"].state.value == "failed"

    def test_request_restart_unknown_link(self, good_pcap):
        supervisor = FleetSupervisor(
            fleet_config(pcap_link("a", good_pcap))
        )
        assert not supervisor.request_restart("nope")
        # Not started yet: even a known link cannot be restarted.
        assert not supervisor.request_restart("a")


class TestReporting:
    def test_snapshot_merges_task_and_pipeline_rows(self, good_pcap):
        config = fleet_config(pcap_link("a", good_pcap),
                              pcap_link("b", good_pcap))
        supervisor = FleetSupervisor(config)
        asyncio.run(supervisor.run())
        snapshot = supervisor.snapshot()
        assert snapshot["states"] == {"stopped": 2}
        for row in snapshot["links"]:
            assert row["state"] == "stopped"
            assert row["loops"] == 2
            assert row["crashes_total"] == 0
            assert row["source"]["kind"] == "pcap"
            assert [h["state"] for h in row["history"]] == [
                "starting", "running", "stopped"
            ]

    def test_metrics_merge_under_link_label(self, good_pcap,
                                            regressing_pcap):
        config = fleet_config(pcap_link("good", good_pcap),
                              pcap_link("bad", regressing_pcap),
                              max_restarts=0)
        supervisor = FleetSupervisor(config)
        asyncio.run(supervisor.run())
        parsed = parse_prometheus(supervisor.render_metrics())
        counters, gauges = parsed["counters"], parsed["gauges"]
        assert gauges["fleet_links"] == 2
        assert counters['fleet_task_crashes_total{link="good"}'] == 0
        assert counters['fleet_task_crashes_total{link="bad"}'] == 1
        assert gauges['fleet_task_up{link="good"}'] == 0
        # Per-link detector counters appear under the same label.
        assert counters['streaming_loops_emitted_total{link="good"}'] == 2
