"""Tests for the fleet HTTP API, including the acceptance parity run:
a 3-link fleet over real traces must reproduce, per link, exactly the
loops an independent single-trace run finds — while every endpoint
serves concurrently."""

from __future__ import annotations

import asyncio
import json
import random
import urllib.error
import urllib.request

import pytest

from repro.core.detector import DetectorConfig
from repro.core.streaming import StreamingLoopDetector
from repro.fleet.api import FleetServer
from repro.fleet.config import FleetConfig
from repro.fleet.supervisor import FleetSupervisor
from repro.net.addr import IPv4Prefix
from repro.net.pcap import read_pcap_columnar, write_pcap
from repro.traffic.synthetic import SyntheticTraceBuilder


def build_trace(seed: int):
    rng = random.Random(seed)
    builder = SyntheticTraceBuilder(rng=rng)
    builder.add_background(300, 0.0, 90.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(12.0, IPv4Prefix.parse("192.0.2.0/24"),
                     n_packets=2 + seed % 3, replicas_per_packet=6,
                     spacing=0.02, entry_ttl=40)
    builder.add_loop(40.0, IPv4Prefix.parse("203.0.113.0/24"),
                     n_packets=2, replicas_per_packet=4 + seed % 4,
                     spacing=0.05, entry_ttl=50)
    return builder.build()


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-api")
    paths = {}
    for link_id, seed in (("east", 3), ("west", 5), ("lab", 9)):
        path = root / f"{link_id}.pcap"
        write_pcap(build_trace(seed), path)
        paths[link_id] = path
    return paths


@pytest.fixture(scope="module")
def fleet(traces):
    """A finished 3-link fleet with its API still serving."""
    config = FleetConfig.from_dict({
        "fleet": {"port": 0},
        "links": [
            {"id": link_id, "source": {"kind": "pcap", "path": str(path)}}
            for link_id, path in traces.items()
        ],
    })
    supervisor = FleetSupervisor(config)
    with FleetServer(supervisor, port=0) as server:
        asyncio.run(supervisor.run())
        yield supervisor, server


def fetch(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5) as resp:
        body = resp.read().decode()
        if resp.headers.get("Content-Type", "").startswith(
                "application/json"):
            return resp.status, json.loads(body)
        return resp.status, body


def loop_rows(loops):
    return [(str(l.prefix), l.start, l.end, l.ttl_delta, l.replica_count)
            for l in loops]


class TestEndpoints:
    def test_index_lists_routes(self, fleet):
        _, server = fleet
        status, doc = fetch(server, "/")
        assert status == 200
        assert "GET /links" in doc["routes"]
        assert "POST /links/<id>/restart" in doc["routes"]

    def test_links_document(self, fleet):
        _, server = fleet
        _, doc = fetch(server, "/links")
        assert doc["states"] == {"stopped": 3}
        by_id = {row["id"]: row for row in doc["links"]}
        assert set(by_id) == {"east", "west", "lab"}
        for row in by_id.values():
            assert row["loops"] > 0
            assert row["run_finished"]
            assert [h["state"] for h in row["history"]] == [
                "starting", "running", "stopped"
            ]

    def test_per_link_state(self, fleet):
        _, server = fleet
        _, state = fetch(server, "/links/east/state")
        assert state["id"] == "east"
        assert state["finished"]
        assert state["task"]["state"] == "stopped"
        assert state["run"]["loops"] == state["detector"]["stats"][
            "loops_emitted"]
        assert state["detector"]["kernel"] == "auto"
        assert state["detector"]["resolved_kernel"] in (
            "columnar", "vectorized")

    def test_per_link_dashboard_and_metrics(self, fleet):
        _, server = fleet
        status, html = fetch(server, "/links/west/dashboard")
        assert status == 200
        assert "<html" in html.lower()
        status, text = fetch(server, "/links/west/metrics")
        assert status == 200
        assert "streaming_records_total" in text
        assert 'link="' not in text  # bare registry, no merge label

    def test_aggregated_metrics_carry_link_label(self, fleet, traces):
        _, server = fleet
        _, text = fetch(server, "/metrics")
        for link_id in traces:
            assert f'streaming_records_total{{link="{link_id}"}}' in text
        assert "fleet_links 3" in text

    def test_unknown_paths_404(self, fleet):
        _, server = fleet
        for path in ("/links/nope/state", "/links/east/nope", "/nope"):
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(server, path)
            assert err.value.code == 404

    def test_healthz(self, fleet):
        _, server = fleet
        _, doc = fetch(server, "/healthz")
        assert doc == {"status": "ok", "links": 3,
                       "states": {"stopped": 3},
                       "port": server.port}


class TestPerf:
    def test_fleet_perf_serves_all_links(self, fleet):
        """/perf carries a per-stage breakdown for every link of the
        3-link run: the stages the pipeline body times, with spans
        counted and records attributed."""
        _, server = fleet
        status, doc = fetch(server, "/perf")
        assert status == 200
        assert set(doc["links"]) == {"east", "west", "lab"}
        for link_id, perf in doc["links"].items():
            stages = {stage["name"]: stage for stage in perf["stages"]}
            assert {"source.wait", "detect.feed",
                    "detect.flush"} <= set(stages)
            feed = stages["detect.feed"]
            assert feed["count"] >= 1
            assert feed["records"] > 0
            assert feed["bytes"] > 0
            assert feed["seconds"] >= 0.0
            assert perf["queues"].get("source.prefetch") is not None

    def test_per_link_perf(self, fleet):
        _, server = fleet
        status, doc = fetch(server, "/links/east/perf")
        assert status == 200
        assert doc["link"] == "east"
        names = [stage["name"] for stage in doc["stages"]]
        assert "detect.feed" in names

    def test_index_lists_perf_routes(self, fleet):
        _, server = fleet
        _, doc = fetch(server, "/")
        assert "GET /perf" in doc["routes"]
        assert "GET /links/<id>/perf" in doc["routes"]
        assert "POST /links/<id>/profile" in doc["routes"]

    def test_post_profile_returns_collapsed_stacks(self, fleet):
        _, server = fleet
        request = urllib.request.Request(
            server.url + "/links/east/profile?seconds=0.2", method="POST"
        )
        with urllib.request.urlopen(request, timeout=10) as resp:
            assert resp.status == 200
            doc = json.loads(resp.read())
        assert doc["link"] == "east"
        assert doc["seconds"] == 0.2
        assert doc["samples"] > 0
        # Collapsed-stack format: "frame;frame;... count" lines.
        for line in doc["collapsed"].splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit()

    def test_post_profile_validates_input(self, fleet):
        _, server = fleet
        for path, code in (("/links/nope/profile", 404),
                           ("/links/east/profile?seconds=nope", 400),
                           ("/links/east/profile?seconds=99", 400),
                           ("/links/east/profile?seconds=0", 400)):
            request = urllib.request.Request(server.url + path,
                                             method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == code


class TestParity:
    def test_per_link_loops_match_independent_runs(self, fleet, traces):
        supervisor, _ = fleet
        for link_id, path in traces.items():
            independent = StreamingLoopDetector(DetectorConfig())
            expected = independent.process_trace_columnar(
                read_pcap_columnar(path)
            )
            pipeline = supervisor.pipelines[link_id]
            assert loop_rows(pipeline.current.loops) == loop_rows(expected)
            assert (pipeline.current.streaming.stats.records
                    == independent.stats.records)


class TestRestart:
    def test_post_restart_reruns_deterministically(self, traces):
        config = FleetConfig.from_dict({
            "links": [{"id": "east",
                       "source": {"kind": "pcap",
                                  "path": str(traces["east"])}}],
        })
        supervisor = FleetSupervisor(config)
        results = {}
        with FleetServer(supervisor, port=0) as server:
            async def scenario():
                await supervisor.run()
                first = loop_rows(supervisor.pipelines["east"].current.loops)
                loop = asyncio.get_running_loop()

                def post():
                    request = urllib.request.Request(
                        server.url + "/links/east/restart", method="POST"
                    )
                    with urllib.request.urlopen(request, timeout=5) as resp:
                        return resp.status, json.loads(resp.read())

                status, doc = await loop.run_in_executor(None, post)
                assert status == 202
                assert doc["status"] == "restart requested"
                # The handler hopped the restart onto this loop via
                # call_soon_threadsafe; wait for it to land, then for
                # the re-run to complete.
                task = supervisor.tasks["east"]
                for _ in range(500):
                    await asyncio.sleep(0.01)
                    if task.restarts_total == 1:
                        break
                await supervisor.wait()
                results["first"] = first
                results["task"] = supervisor.tasks["east"]

            asyncio.run(scenario())
            second = loop_rows(supervisor.pipelines["east"].current.loops)
        assert results["task"].restarts_total == 1
        assert results["task"].state.value == "stopped"
        # A restarted run rebuilds everything and reproduces the first
        # run exactly.
        assert second == results["first"]

    def test_post_restart_unknown_link_404(self, fleet):
        _, server = fleet
        request = urllib.request.Request(
            server.url + "/links/nope/restart", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 404
