"""Tests for link-pipeline internals: batched feed dispatch, byte
accounting off the event loop, prefetch depth plumbing, and the
``records_per_s`` rate tracker."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.fleet.config import FleetConfig
from repro.fleet.pipeline import LinkPipeline, _feed_batch, _RateTracker
from repro.fleet.sources import prefetch_batches
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarTrace
from repro.net.pcap import write_pcap
from repro.obs.live import LiveMonitor, attach_detector
from repro.traffic.synthetic import SyntheticTraceBuilder


def build_trace(seed: int = 7):
    builder = SyntheticTraceBuilder(rng=random.Random(seed))
    builder.add_background(300, 0.0, 60.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(10.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=3,
                     replicas_per_packet=6, spacing=0.02, entry_ttl=40)
    return builder.build()


def fresh_chain():
    monitor = LiveMonitor()
    streaming = StreamingLoopDetector()
    attach_detector(monitor, streaming)
    return streaming, monitor


class TestFeedBatch:
    def test_columnar_chunk_counts_bytes_from_length_column(self):
        trace = build_trace()
        chunk = ColumnarTrace.from_trace(trace).chunks[0]
        streaming, monitor = fresh_chain()
        _, nbytes = _feed_batch(streaming, monitor, chunk)
        assert nbytes == sum(chunk.lengths)
        assert nbytes == sum(len(r.data)
                             for r in trace.records[:len(chunk)])

    def test_pair_iterable_fallback(self):
        trace = build_trace()
        chunk = ColumnarTrace.from_trace(trace).chunks[0]
        pairs = list(chunk.iter_views())
        streaming_a, monitor_a = fresh_chain()
        loops_a, nbytes_a = _feed_batch(streaming_a, monitor_a, chunk)
        streaming_b, monitor_b = fresh_chain()
        loops_b, nbytes_b = _feed_batch(streaming_b, monitor_b, pairs)
        assert nbytes_a == nbytes_b
        assert [l.prefix for l in loops_a] == [l.prefix for l in loops_b]
        assert streaming_a.stats.records == streaming_b.stats.records


class TestRateTracker:
    def test_first_read_anchors_at_zero(self):
        tracker = _RateTracker()
        assert tracker.update(100.0, 500) == 0.0

    def test_rate_differenced_across_interval(self):
        tracker = _RateTracker(min_interval=0.2)
        tracker.update(100.0, 0)
        assert tracker.update(101.0, 2500) == pytest.approx(2500.0)

    def test_reads_inside_interval_return_previous_rate(self):
        tracker = _RateTracker(min_interval=0.2)
        tracker.update(100.0, 0)
        tracker.update(101.0, 1000)
        # 0.05s later: too soon to difference — no noise amplification.
        assert tracker.update(101.05, 1300) == pytest.approx(1000.0)

    def test_counter_reset_reanchors(self):
        tracker = _RateTracker(min_interval=0.2)
        tracker.update(100.0, 0)
        tracker.update(101.0, 1000)
        # A restarted run resets the record counter; the rate must not
        # go negative.
        assert tracker.update(102.0, 50) == 0.0
        assert tracker.update(103.0, 1050) == pytest.approx(1000.0)


class TestPrefetchDepth:
    class _Recorder:
        def __init__(self):
            self.depths = []

        def queue_depth(self, queue, depth):
            self.depths.append((queue, depth))

    class _Source:
        def __init__(self, n):
            self.n = n

        async def batches(self):
            for i in range(self.n):
                yield [(float(i), b"x")]

    def test_deep_queue_fills_past_two(self):
        profile = self._Recorder()

        async def consume():
            batches = prefetch_batches(self._Source(12), profile,
                                       depth=4)
            seen = 0
            async for _ in batches:
                # A slow consumer lets the producer run ahead: the
                # queue must be allowed to reach the configured depth,
                # not the old hardcoded 2.
                await asyncio.sleep(0.02)
                seen += 1
            return seen

        assert asyncio.run(consume()) == 12
        assert all(queue == "source.prefetch"
                   for queue, _ in profile.depths)
        assert max(depth for _, depth in profile.depths) > 2

    def test_depth_two_stays_capped(self):
        profile = self._Recorder()

        async def consume():
            async for _ in prefetch_batches(self._Source(12), profile,
                                            depth=2):
                await asyncio.sleep(0.02)

        asyncio.run(consume())
        assert max(depth for _, depth in profile.depths) <= 2

    def test_link_config_prefetch_reaches_the_gauge(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(build_trace(), path)
        config = FleetConfig.from_dict({
            "links": [{
                "id": "a",
                "source": {"kind": "pcap", "path": str(path)},
                "prefetch": 5,
            }],
        })
        assert config.link("a").prefetch == 5
        pipeline = LinkPipeline(config.link("a"))
        asyncio.run(pipeline.run())
        perf = pipeline.perf()
        assert "source.prefetch" in perf["queues"]


class TestRowRate:
    def test_row_reports_records_per_s(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(build_trace(), path)
        config = FleetConfig.from_dict({
            "links": [{"id": "a",
                       "source": {"kind": "pcap", "path": str(path)}}],
        })
        clock = iter([0.0, 100.0]).__next__
        pipeline = LinkPipeline(config.link("a"), clock=clock)
        assert pipeline.row()["records_per_s"] == 0.0  # not started
        asyncio.run(pipeline.run())     # consumes clock 0.0 (started_at)
        records = pipeline.current.streaming.stats.records
        assert records > 0
        # Anchor the tracker one second before the next clock read so
        # row() must difference the detector's real record counter.
        pipeline._rate.update(99.0, 0)
        row = pipeline.row()            # differenced at clock 100.0
        assert row["records_per_s"] == pytest.approx(records, abs=0.5)
