"""Tests for the declarative fleet configuration."""

from __future__ import annotations

import json
import sys

import pytest

from repro.fleet.config import (
    AlertPolicy,
    FleetConfig,
    FleetConfigError,
    SourceConfig,
)


def minimal(link_id="a", **source):
    source = source or {"kind": "pcap", "path": "x.pcap"}
    return {"links": [{"id": link_id, "source": source}]}


class TestSourceConfig:
    def test_pcap_requires_path(self):
        with pytest.raises(FleetConfigError, match="requires 'path'"):
            SourceConfig.from_dict({"kind": "pcap"}, "link 'a'")

    def test_watch_requires_directory(self):
        with pytest.raises(FleetConfigError, match="requires 'directory'"):
            SourceConfig.from_dict({"kind": "watch"}, "link 'a'")

    def test_sim_requires_scenario(self):
        with pytest.raises(FleetConfigError, match="requires 'scenario'"):
            SourceConfig.from_dict({"kind": "sim"}, "link 'a'")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FleetConfigError, match="kind must be one of"):
            SourceConfig.from_dict({"kind": "netflow"}, "link 'a'")

    def test_unknown_key_rejected(self):
        with pytest.raises(FleetConfigError, match="unknown .* keys: paht"):
            SourceConfig.from_dict({"kind": "pcap", "paht": "x"}, "link 'a'")

    def test_negative_pace_rejected(self):
        with pytest.raises(FleetConfigError, match="pace"):
            SourceConfig.from_dict(
                {"kind": "pcap", "path": "x", "pace": -1}, "link 'a'"
            )

    def test_describe_is_kind_specific(self):
        source = SourceConfig.from_dict(
            {"kind": "watch", "directory": "caps", "pattern": "*.cap"},
            "link 'a'",
        )
        assert source.describe() == {"kind": "watch", "directory": "caps",
                                     "pattern": "*.cap"}


class TestFleetConfig:
    def test_minimal_json_roundtrip(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(minimal()))
        config = FleetConfig.load(path)
        assert [link.id for link in config.links] == ["a"]
        assert config.links[0].source.kind == "pcap"

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="tomllib is 3.11+")
    def test_toml_load(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(
            '[fleet]\nport = 9000\n'
            '[fleet.restart]\nmax_restarts = 2\n'
            '[[links]]\nid = "left"\n'
            'source = { kind = "pcap", path = "l.pcap" }\n'
            '[[links]]\nid = "right"\n'
            'source = { kind = "sim", scenario = "backbone3" }\n'
        )
        config = FleetConfig.load(path)
        assert config.port == 9000
        assert config.restart.max_restarts == 2
        assert [link.id for link in config.links] == ["left", "right"]
        assert config.links[1].source.scenario == "backbone3"

    def test_no_links_rejected(self):
        with pytest.raises(FleetConfigError, match="at least one link"):
            FleetConfig.from_dict({"links": []})

    def test_duplicate_ids_rejected(self):
        data = {"links": minimal()["links"] + minimal()["links"]}
        with pytest.raises(FleetConfigError, match="duplicate link id"):
            FleetConfig.from_dict(data)

    def test_url_hostile_id_rejected(self):
        with pytest.raises(FleetConfigError, match="URL"):
            FleetConfig.from_dict(minimal(link_id="a/b"))

    def test_unknown_top_level_key_rejected(self):
        data = minimal()
        data["linkss"] = []
        with pytest.raises(FleetConfigError, match="linkss"):
            FleetConfig.from_dict(data)

    def test_link_alerts_inherit_fleet_defaults(self):
        data = minimal()
        data["fleet"] = {"alerts": {"fire_after": 4, "clear_after": 3}}
        data["links"].append({
            "id": "b",
            "source": {"kind": "pcap", "path": "y.pcap"},
            "alerts": {"fire_after": 1},
        })
        config = FleetConfig.from_dict(data)
        # Link "a" takes the fleet policy wholesale; link "b" overrides
        # fire_after but inherits clear_after.
        assert config.links[0].alerts == AlertPolicy(fire_after=4,
                                                     clear_after=3)
        assert config.links[1].alerts.fire_after == 1
        assert config.links[1].alerts.clear_after == 3

    def test_detector_overrides_flow_through(self):
        data = minimal()
        data["links"][0]["detector"] = {"merge_gap": 30.0,
                                        "validate": False}
        link = FleetConfig.from_dict(data).links[0]
        assert link.detector.merge_gap == 30.0
        assert not link.detector.check_prefix_consistency
        assert not link.detector.check_gap_consistency

    def test_detector_kernel_override(self):
        data = minimal()
        data["links"][0]["detector"] = {"kernel": "columnar"}
        link = FleetConfig.from_dict(data).links[0]
        assert link.detector.kernel == "columnar"

    def test_detector_bad_kernel_rejected(self):
        data = minimal()
        data["links"][0]["detector"] = {"kernel": "simd"}
        with pytest.raises(FleetConfigError, match="kernel"):
            FleetConfig.from_dict(data)

    def test_bad_restart_policy_rejected(self):
        data = minimal()
        data["fleet"] = {"restart": {"backoff_base": -1.0}}
        with pytest.raises(FleetConfigError, match="backoff_base"):
            FleetConfig.from_dict(data)

    def test_malformed_json_wrapped(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("{nope")
        with pytest.raises(FleetConfigError):
            FleetConfig.load(path)

    def test_link_lookup(self):
        config = FleetConfig.from_dict(minimal())
        assert config.link("a").id == "a"
        with pytest.raises(KeyError):
            config.link("zz")


class TestBackendAndPrefetch:
    def test_defaults(self):
        config = FleetConfig.from_dict(minimal())
        assert config.backend == "thread"
        assert config.workers == 0
        assert config.link("a").prefetch == 2

    def test_process_backend_with_workers(self):
        data = minimal()
        data["fleet"] = {"backend": "process", "workers": 3}
        config = FleetConfig.from_dict(data)
        assert config.backend == "process"
        assert config.workers == 3

    def test_unknown_backend_rejected(self):
        data = minimal()
        data["fleet"] = {"backend": "fork"}
        with pytest.raises(FleetConfigError, match="backend must be one of"):
            FleetConfig.from_dict(data)

    def test_negative_workers_rejected(self):
        data = minimal()
        data["fleet"] = {"backend": "process", "workers": -1}
        with pytest.raises(FleetConfigError, match="workers must be"):
            FleetConfig.from_dict(data)

    def test_bool_workers_rejected(self):
        data = minimal()
        data["fleet"] = {"workers": True}
        with pytest.raises(FleetConfigError, match="workers must be"):
            FleetConfig.from_dict(data)

    def test_prefetch_depth_accepted(self):
        data = minimal()
        data["links"][0]["prefetch"] = 8
        assert FleetConfig.from_dict(data).link("a").prefetch == 8

    @pytest.mark.parametrize("bad", [0, -2, 1.5, True, "4"])
    def test_bad_prefetch_rejected(self, bad):
        data = minimal()
        data["links"][0]["prefetch"] = bad
        with pytest.raises(FleetConfigError, match="prefetch must be"):
            FleetConfig.from_dict(data)
