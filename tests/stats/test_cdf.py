"""Tests for the empirical CDF."""

import pytest

from repro.stats.cdf import CdfError, EmpiricalCdf


class TestBasics:
    def test_from_samples_sorts(self):
        cdf = EmpiricalCdf.from_samples([3.0, 1.0, 2.0])
        assert cdf.values == (1.0, 2.0, 3.0)

    def test_fraction_at_or_below(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3, 4])
        assert cdf.fraction_at_or_below(2) == 0.5
        assert cdf.fraction_at_or_below(0) == 0.0
        assert cdf.fraction_at_or_below(4) == 1.0
        assert cdf.fraction_at_or_below(2.5) == 0.5

    def test_fraction_below_strict(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 2, 3])
        assert cdf.fraction_below(2) == 0.25
        assert cdf.fraction_at_or_below(2) == 0.75

    def test_empty_queries_raise(self):
        cdf = EmpiricalCdf.from_samples([])
        assert cdf.empty
        with pytest.raises(CdfError):
            cdf.fraction_at_or_below(1.0)
        with pytest.raises(CdfError):
            cdf.quantile(0.5)
        with pytest.raises(CdfError):
            _ = cdf.min


class TestQuantiles:
    def test_median_odd(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3])
        assert cdf.median == 2

    def test_quantile_extremes(self):
        cdf = EmpiricalCdf.from_samples(range(1, 101))
        assert cdf.quantile(0.01) == 1
        assert cdf.quantile(1.0) == 100
        assert cdf.quantile(0.9) == 90

    def test_quantile_range_validation(self):
        cdf = EmpiricalCdf.from_samples([1])
        with pytest.raises(CdfError):
            cdf.quantile(0.0)
        with pytest.raises(CdfError):
            cdf.quantile(1.5)

    def test_quantile_is_smallest_x_reaching_q(self):
        cdf = EmpiricalCdf.from_samples([1, 1, 1, 10])
        assert cdf.quantile(0.75) == 1
        assert cdf.quantile(0.76) == 10

    def test_min_max_mean(self):
        cdf = EmpiricalCdf.from_samples([2.0, 4.0, 6.0])
        assert cdf.min == 2.0
        assert cdf.max == 6.0
        assert cdf.mean() == pytest.approx(4.0)


class TestPoints:
    def test_points_monotonic_and_complete(self):
        cdf = EmpiricalCdf.from_samples(range(1000))
        points = cdf.points(max_points=50)
        assert len(points) <= 52
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert points[-1] == (999, 1.0)

    def test_points_empty(self):
        assert EmpiricalCdf.from_samples([]).points() == []


class TestSteps:
    def test_step_sizes_finds_jumps(self):
        # 60% of mass at 31, 30% at 63, tail spread out.
        samples = [31] * 60 + [63] * 30 + list(range(10))
        cdf = EmpiricalCdf.from_samples(samples)
        jumps = dict(cdf.step_sizes(threshold=0.2))
        assert jumps[31] == pytest.approx(0.6)
        assert jumps[63] == pytest.approx(0.3)

    def test_step_sizes_threshold(self):
        cdf = EmpiricalCdf.from_samples([1] * 5 + [2] * 95)
        assert dict(cdf.step_sizes(threshold=0.1)) == {2: 0.95}
