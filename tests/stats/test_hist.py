"""Tests for categorical distributions."""

import pytest

from repro.stats.hist import CategoricalDistribution


class TestCategoricalDistribution:
    def test_from_items(self):
        dist = CategoricalDistribution.from_items([2, 2, 3, 2])
        assert dist.counts[2] == 3
        assert dist.total == 4

    def test_from_counts(self):
        dist = CategoricalDistribution.from_counts({"a": 5, "b": 5})
        assert dist.fraction("a") == 0.5

    def test_add(self):
        dist = CategoricalDistribution()
        dist.add("x")
        dist.add("x", 4)
        assert dist.counts["x"] == 5

    def test_fraction_of_missing_category(self):
        dist = CategoricalDistribution.from_items(["a"])
        assert dist.fraction("zzz") == 0.0

    def test_fraction_on_empty(self):
        assert CategoricalDistribution().fraction("a") == 0.0

    def test_fractions_sum_to_one(self):
        dist = CategoricalDistribution.from_items([1, 1, 2, 3])
        assert sum(dist.fractions().values()) == pytest.approx(1.0)

    def test_mode(self):
        dist = CategoricalDistribution.from_items([2, 3, 2, 2, 3])
        assert dist.mode() == 2

    def test_mode_on_empty_raises(self):
        with pytest.raises(ValueError):
            CategoricalDistribution().mode()

    def test_sorted_items(self):
        dist = CategoricalDistribution.from_counts({3: 1, 1: 2, 2: 3})
        assert dist.sorted_items() == [(1, 2), (2, 3), (3, 1)]

    def test_len(self):
        dist = CategoricalDistribution.from_items(["a", "b", "a"])
        assert len(dist) == 2
