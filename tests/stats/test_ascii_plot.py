"""Tests for ASCII plotting."""

import pytest

from repro.stats.ascii_plot import bar_chart, cdf_plot, scatter_plot
from repro.stats.cdf import EmpiricalCdf


class TestCdfPlot:
    def test_basic_shape(self):
        cdf = EmpiricalCdf.from_samples(range(1, 101))
        text = cdf_plot(cdf, title="test cdf", width=40, height=8)
        lines = text.splitlines()
        assert lines[0] == "test cdf"
        assert len(lines) == 1 + 8 + 2  # title + rows + axis + labels
        assert lines[1].startswith("1.00 |")
        assert lines[8].startswith("0.00 |")
        assert "*" in text

    def test_monotone_curve(self):
        """The plotted column heights never decrease left to right."""
        cdf = EmpiricalCdf.from_samples([1, 2, 2, 3, 10, 20])
        text = cdf_plot(cdf, width=30, height=10)
        rows = [line[6:] for line in text.splitlines()[:10]]
        heights = []
        for column in range(30):
            column_cells = [rows[r][column] for r in range(10)]
            stars = [r for r, cell in enumerate(column_cells)
                     if cell == "*"]
            heights.append(min(stars) if stars else 10)
        # Lower row index = higher CDF value: must be non-increasing.
        assert all(a >= b for a, b in zip(heights, heights[1:]))

    def test_log_x(self):
        cdf = EmpiricalCdf.from_samples([0.001, 0.01, 0.1, 1.0, 10.0])
        text = cdf_plot(cdf, log_x=True)
        assert "(log x)" in text

    def test_empty(self):
        assert "no samples" in cdf_plot(EmpiricalCdf.from_samples([]),
                                        title="x")

    def test_single_value(self):
        text = cdf_plot(EmpiricalCdf.from_samples([5.0]))
        assert "*" in text


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart({2: 100, 3: 50}, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_tiny_value_gets_dot(self):
        text = bar_chart({"a": 1000, "b": 1}, width=20)
        assert "." in text.splitlines()[1]

    def test_empty(self):
        assert "no data" in bar_chart({}, title="t")

    def test_labels_aligned(self):
        text = bar_chart({"long-label": 1, "x": 2})
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestScatter:
    def test_points_plotted(self):
        points = [(0.0, 0.0), (50.0, 1.0), (100.0, 0.5)]
        text = scatter_plot(points, title="scatter", width=40, height=10)
        assert text.count("o") == 3

    def test_collision_marker(self):
        points = [(1.0, 1.0), (1.0, 1.0000001), (2.0, 2.0)]
        text = scatter_plot(points, width=10, height=5)
        assert "@" in text

    def test_empty(self):
        assert "no points" in scatter_plot([], title="t")

    def test_labels(self):
        text = scatter_plot([(0, 0), (1, 1)], x_label="time",
                            y_label="addr")
        assert "time" in text
        assert "addr" in text
