"""Tests for bucketed time series."""

import pytest

from repro.stats.timeseries import BucketSeries, SeriesError


class TestBucketSeries:
    def test_bucketing(self):
        series = BucketSeries(width=60.0)
        series.add(0.0)
        series.add(59.9)
        series.add(60.0)
        assert series.get(0) == 2
        assert series.get(1) == 1
        assert series.get(99) == 0

    def test_weighted_add(self):
        series = BucketSeries(width=10.0)
        series.add(5.0, amount=3.5)
        assert series.get(0) == 3.5
        assert series.total == 3.5

    def test_buckets_sorted(self):
        series = BucketSeries(width=1.0)
        for t in (5.0, 1.0, 3.0):
            series.add(t)
        assert series.buckets == [1, 3, 5]

    def test_width_validation(self):
        with pytest.raises(SeriesError):
            BucketSeries(width=0.0)

    def test_ratio_series(self):
        loss = BucketSeries(width=60.0)
        total = BucketSeries(width=60.0)
        loss.add(10.0, 5)
        total.add(10.0, 100)
        total.add(70.0, 50)  # bucket with zero numerator: not in ratios
        ratios = loss.ratio_series(total)
        assert ratios == {0: pytest.approx(0.05)}

    def test_ratio_skips_zero_denominator(self):
        loss = BucketSeries(width=60.0)
        total = BucketSeries(width=60.0)
        loss.add(10.0, 5)
        assert loss.ratio_series(total) == {}

    def test_ratio_requires_same_width(self):
        with pytest.raises(SeriesError):
            BucketSeries(width=60.0).ratio_series(BucketSeries(width=30.0))

    def test_max_ratio(self):
        loss = BucketSeries(width=60.0)
        total = BucketSeries(width=60.0)
        for minute, (l, t) in enumerate([(1, 100), (9, 100), (2, 100)]):
            loss.add(minute * 60.0, l)
            total.add(minute * 60.0, t)
        assert loss.max_ratio(total) == pytest.approx(0.09)

    def test_max_ratio_empty(self):
        assert BucketSeries().max_ratio(BucketSeries()) == 0.0

    def test_ratio_skips_explicit_zero_denominator(self):
        # An idle minute recorded with an explicit 0.0 count must be
        # skipped exactly like an absent bucket, not divided.
        loss = BucketSeries(width=60.0)
        total = BucketSeries(width=60.0)
        loss.add(10.0, 5)
        loss.add(70.0, 2)
        total.add(10.0, 0.0)
        total.add(70.0, 10)
        assert loss.ratio_series(total) == {1: pytest.approx(0.2)}

    def test_ratio_skips_negative_denominator(self):
        loss = BucketSeries(width=60.0)
        total = BucketSeries(width=60.0)
        loss.add(10.0, 5)
        total.add(10.0, -3)
        assert loss.ratio_series(total) == {}

    def test_max_ratio_all_zero_denominators(self):
        loss = BucketSeries(width=60.0)
        total = BucketSeries(width=60.0)
        loss.add(10.0, 5)
        total.add(10.0, 0.0)
        assert loss.max_ratio(total) == 0.0
