"""Tests for the span/event tracer."""

import io
import json

from repro.obs.tracing import (
    NULL_TRACER,
    Tracer,
    events,
    read_trace,
    spans,
)


class FakeClock:
    """Deterministic monotonic clock for tracer tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


def make_tracer():
    clock = FakeClock()
    return Tracer(clock=clock), clock


class TestEvents:
    def test_event_uses_clock(self):
        tracer, clock = make_tracer()
        clock.advance(1.5)
        tracer.event("link_down", link="a-b")
        (record,) = tracer.records
        assert record == {"type": "event", "name": "link_down", "t": 1.5,
                          "attrs": {"link": "a-b"}}

    def test_explicit_time_wins(self):
        tracer, _ = make_tracer()
        tracer.event("tick", time=99.0)
        assert tracer.records[0]["t"] == 99.0


class TestSpans:
    def test_begin_end_records_interval(self):
        tracer, clock = make_tracer()
        span = tracer.begin("spf_run", router="r1")
        clock.advance(0.25)
        tracer.end(span, routes=10)
        (record,) = tracer.records
        assert record["name"] == "spf_run"
        assert record["t0"] == 0.0
        assert record["t1"] == 0.25
        assert record["parent"] == 0
        assert record["attrs"] == {"router": "r1", "routes": 10}

    def test_nested_span_records_parent(self):
        tracer, clock = make_tracer()
        outer = tracer.begin("detect")
        inner = tracer.begin("detect.validate")
        tracer.end(inner)
        tracer.end(outer)
        inner_rec, outer_rec = tracer.records
        assert inner_rec["parent"] == outer
        assert outer_rec["parent"] == 0

    def test_explicit_parent_override(self):
        tracer, _ = make_tracer()
        tracer.begin("enclosing")
        detached = tracer.begin("fib_update", parent=0)
        tracer.end(detached)
        assert tracer.records[0]["parent"] == 0

    def test_out_of_order_end(self):
        # Per-router convergence spans interleave freely.
        tracer, clock = make_tracer()
        first = tracer.begin("fib_update", parent=0, router="r1")
        second = tracer.begin("fib_update", parent=0, router="r2")
        clock.advance(1.0)
        tracer.end(first)
        clock.advance(1.0)
        tracer.end(second)
        by_router = {r["attrs"]["router"]: r for r in tracer.records}
        assert by_router["r1"]["t1"] == 1.0
        assert by_router["r2"]["t1"] == 2.0

    def test_end_is_idempotent(self):
        tracer, _ = make_tracer()
        span = tracer.begin("x")
        tracer.end(span)
        tracer.end(span)
        tracer.end(12345)
        assert len(tracer.records) == 1

    def test_completed_span_helper(self):
        tracer, _ = make_tracer()
        tracer.span("loop", 5.0, 8.5, prefix="10.0.0.0/24")
        (record,) = tracer.records
        assert (record["t0"], record["t1"]) == (5.0, 8.5)
        assert record["attrs"]["prefix"] == "10.0.0.0/24"

    def test_close_tags_unclosed_spans(self):
        tracer, _ = make_tracer()
        tracer.begin("left_open")
        tracer.close()
        (record,) = tracer.records
        assert record["attrs"]["unclosed"] is True


class TestPhase:
    def test_phase_context_manager(self):
        tracer, clock = make_tracer()
        with tracer.phase("detect.replicas", clock="wall") as phase:
            clock.advance(2.0)
            phase.note(candidates=17)
        (record,) = tracer.records
        assert record["name"] == "detect.replicas"
        assert record["t1"] - record["t0"] == 2.0
        assert record["attrs"] == {"clock": "wall", "candidates": 17}


class TestSink:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as sink:
            tracer = Tracer(sink=sink, clock=FakeClock())
            tracer.event("link_down", link="a-b")
            span = tracer.begin("spf_run")
            tracer.end(span)
            tracer.close()
        reloaded = read_trace(path)
        assert reloaded == tracer.records

    def test_spans_written_at_end_in_completion_order(self):
        sink = io.StringIO()
        clock = FakeClock()
        tracer = Tracer(sink=sink, clock=clock)
        first = tracer.begin("slow")
        clock.advance(1.0)
        second = tracer.begin("fast")
        tracer.end(second)
        clock.advance(1.0)
        tracer.end(first)
        names = [json.loads(line)["name"]
                 for line in sink.getvalue().splitlines()]
        assert names == ["fast", "slow"]

    def test_keep_false_still_writes_sink(self):
        sink = io.StringIO()
        tracer = Tracer(sink=sink, clock=FakeClock(), keep=False)
        tracer.event("tick")
        assert tracer.records == []
        assert json.loads(sink.getvalue())["name"] == "tick"


class CountingSink(io.StringIO):
    def __init__(self):
        super().__init__()
        self.flushes = 0

    def flush(self):
        self.flushes += 1
        super().flush()


class TestFlushBudget:
    def test_flushes_every_batch(self):
        sink = CountingSink()
        tracer = Tracer(sink=sink, clock=FakeClock(), flush_every=4)
        for _ in range(9):
            tracer.event("tick")
        assert sink.flushes == 2  # after records 4 and 8

    def test_zero_disables_periodic_flush(self):
        sink = CountingSink()
        tracer = Tracer(sink=sink, clock=FakeClock(), flush_every=0)
        for _ in range(100):
            tracer.event("tick")
        assert sink.flushes == 0
        tracer.close()
        assert sink.flushes == 1

    def test_killed_process_leaves_flushed_spans_behind(self, tmp_path):
        """Crash durability: a run SIGKILLed mid-stream must leave the
        already-batched spans readable in the JSONL file — no close(),
        no atexit, no flush() call of its own."""
        import subprocess
        import sys
        import textwrap

        path = tmp_path / "trace.jsonl"
        script = textwrap.dedent(f"""
            import os, signal
            from repro.obs.tracing import Tracer
            sink = open({str(path)!r}, "w", encoding="utf-8")
            tracer = Tracer(sink=sink)
            for i in range(100):
                span = tracer.begin("batch", index=i)
                tracer.end(span)
            os.kill(os.getpid(), signal.SIGKILL)
        """)
        process = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo", timeout=60,
        )
        assert process.returncode == -9  # died by SIGKILL, no cleanup
        survived = read_trace(path)
        # 100 spans at flush_every=32: at least three full batches (96
        # records) reached the disk; only the tail batch may be lost.
        assert len(survived) >= 96
        assert all(record["name"] == "batch" for record in survived)


class TestQueries:
    def test_spans_sorted_by_start(self):
        tracer, clock = make_tracer()
        clock.advance(5.0)
        late = tracer.begin("phase")
        tracer.end(late)
        tracer.span("phase", 1.0, 2.0)
        tracer.event("noise")
        result = spans(tracer.records, "phase")
        assert [r["t0"] for r in result] == [1.0, 5.0]

    def test_events_filtered_and_sorted(self):
        tracer, _ = make_tracer()
        tracer.event("b", time=2.0)
        tracer.event("a", time=1.0)
        tracer.event("b", time=0.5)
        assert [r["t"] for r in events(tracer.records, "b")] == [0.5, 2.0]
        assert len(events(tracer.records)) == 3


class TestNullTracer:
    def test_all_operations_are_noops(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.event("x", y=1)
        span = NULL_TRACER.begin("x")
        assert span == 0
        NULL_TRACER.end(span)
        assert NULL_TRACER.span("x", 0.0, 1.0) == 0
        with NULL_TRACER.phase("x", a=1) as phase:
            phase.note(b=2)
        NULL_TRACER.flush()
        NULL_TRACER.close()
        assert NULL_TRACER.records == ()
