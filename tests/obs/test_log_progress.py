"""Tests for logging configuration and heartbeat progress."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.log import configure_logging, get_logger
from repro.obs.progress import Heartbeat


@pytest.fixture(autouse=True)
def restore_logging():
    yield
    # Leave the session the way other tests expect it.
    configure_logging("warning")


class TestConfigureLogging:
    def test_lowercase_prefixed_format(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        get_logger("unit").error("boom: %s", 7)
        assert stream.getvalue() == "error: boom: 7\n"

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging("error", stream=stream)
        logger = get_logger("unit")
        logger.warning("dropped")
        logger.error("kept")
        assert stream.getvalue() == "error: kept\n"

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("info", stream=first)
        configure_logging("info", stream=second)
        get_logger("unit").info("hello")
        assert first.getvalue() == ""
        assert second.getvalue() == "info: hello\n"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_loggers_share_the_repro_namespace(self):
        assert get_logger("pcap").name == "repro.pcap"
        assert get_logger("pcap").parent.name == "repro"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestHeartbeat:
    def make(self, interval=5.0):
        clock = FakeClock()
        logger = logging.getLogger("test.heartbeat")
        logger.setLevel(logging.INFO)
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        handler = Capture()
        logger.addHandler(handler)
        logger.propagate = False
        heartbeat = Heartbeat("load", interval=interval, logger=logger,
                              clock=clock)
        return heartbeat, clock, records

    def test_rate_limited_ticks(self):
        heartbeat, clock, records = self.make(interval=5.0)
        for _ in range(100):
            heartbeat(1)
        assert records == []  # under the interval: silent
        clock.now = 6.0
        heartbeat(1)
        assert len(records) == 1
        assert "101" in records[0]

    def test_done_logs_final_total(self):
        heartbeat, clock, records = self.make()
        heartbeat(7)
        clock.now = 2.0
        heartbeat.done()
        assert len(records) == 1
        assert "7" in records[-1]

    def test_callable_protocol(self):
        # read_pcap/detect_file call progress(amount) directly.
        heartbeat, clock, records = self.make()
        heartbeat(3)
        heartbeat.tick(4)
        clock.now = 10.0
        heartbeat(0)
        assert "7" in records[0]

    def test_done_at_zero_ticks_logs_closing_line(self):
        heartbeat, clock, records = self.make()
        heartbeat.done()
        assert records == ["done, load: 0 in 0.0s (0/s)"]

    def test_non_monotonic_clock_reanchors(self):
        heartbeat, clock, records = self.make(interval=5.0)
        clock.now = 100.0
        heartbeat(1)  # logs, watermark now 100
        assert len(records) == 1
        clock.now = 3.0  # clock jumps backwards
        heartbeat(1)  # must re-anchor, not log
        assert len(records) == 1
        clock.now = 9.0  # 6 s past the re-anchored watermark
        heartbeat(1)
        assert len(records) == 2

    def test_backwards_clock_never_reports_negative_rate(self):
        heartbeat, clock, records = self.make()
        clock.now = 50.0
        heartbeat(5)
        clock.now = 0.0
        heartbeat.done()
        assert records[-1] == "done, load: 5 in 0.0s (0/s)"
