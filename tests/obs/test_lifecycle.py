"""Tests for loop-lifecycle correlation.

The unit tests drive :func:`correlate_lifecycles` with hand-built record
dicts; the scenario test runs a churn-heavy backbone with a live tracer
and requires **every** detected loop to be attributed to an injected
failure — the end-to-end property the observability layer exists for.
"""

from __future__ import annotations

import pytest

from repro.core.detector import LoopDetector
from repro.obs.lifecycle import correlate_lifecycles
from repro.obs.tracing import Tracer
from repro.routing.linkstate import LinkStateTimers
from repro.sim.backbone import BackboneScenario, ScenarioConfig


def event(name: str, t: float, **attrs):
    return {"type": "event", "name": name, "t": t, "attrs": attrs}


def loop_span(prefix: str, t0: float, t1: float):
    return {"type": "span", "id": 1, "parent": 0, "name": "loop",
            "t0": t0, "t1": t1, "attrs": {"prefix": prefix}}


class TestIgpAttribution:
    def records(self):
        return [
            event("link_down", 10.0, link="pop0-pop1"),
            event("adjacency_lost", 10.03, router="pop0", neighbor="pop1"),
            event("lsa_originated", 10.03, router="pop0", seq=2),
            event("lsa_flood", 10.05, router="pop0", origin="pop0", seq=2),
            event("spf_run", 10.2, router="pop2"),
            event("igp_fib_install", 11.1, router="pop2", epoch=5),
            event("igp_fib_install", 11.9, router="pop3", epoch=6),
            loop_span("10.1.0.0/24", 10.4, 11.8),
        ]

    def test_loop_attributed_to_link_down(self):
        report = correlate_lifecycles(self.records())
        (lc,) = report.lifecycles
        assert lc.attributed
        assert lc.cause_family == "igp"
        assert lc.cause["name"] == "link_down"
        assert report.attributed_fraction == 1.0

    def test_phase_decomposition(self):
        (lc,) = correlate_lifecycles(self.records()).lifecycles
        phases = lc.phase_offsets()
        assert phases["detection"] == pytest.approx(0.03)
        assert phases["flooding"] == pytest.approx(0.03)
        assert phases["spf"] == pytest.approx(0.2)
        # Convergence ends at the *last* install inside the window.
        assert phases["fib_install"] == pytest.approx(1.9)
        assert lc.convergence_time == pytest.approx(1.9)
        assert lc.fib_installs == 2

    def test_cause_outside_lead_window_ignored(self):
        records = [event("link_down", 10.0),
                   loop_span("10.1.0.0/24", 40.0, 41.0)]
        report = correlate_lifecycles(records, igp_lead=15.0)
        (lc,) = report.lifecycles
        assert not lc.attributed
        assert lc.cause_family == "unknown"
        assert report.attributed_fraction == 0.0


class TestEgpAttribution:
    def test_withdrawal_must_match_prefix(self):
        records = [
            event("bgp_withdraw", 5.0, egress="pop0", prefix="10.1.0.0/24"),
            loop_span("10.1.0.0/24", 8.0, 12.0),
            loop_span("10.2.0.0/24", 8.0, 12.0),
        ]
        report = correlate_lifecycles(records)
        matched, unmatched = report.lifecycles
        assert matched.cause_family == "egp"
        assert not unmatched.attributed
        assert report.cause_counts() == {"igp": 0, "egp": 1, "unknown": 1}

    def test_egp_convergence_uses_prefix_matched_mutations(self):
        records = [
            event("bgp_withdraw", 5.0, egress="pop0", prefix="10.1.0.0/24"),
            event("fib_mutation", 6.0, router="pop2", op="install",
                  prefix="10.1.0.0/24", next_hop="pop1", epoch=3),
            event("fib_mutation", 7.5, router="pop3", op="install",
                  prefix="10.1.0.0/24", next_hop="pop1", epoch=4),
            event("fib_mutation", 7.0, router="pop3", op="install",
                  prefix="10.9.0.0/24", next_hop="pop1", epoch=5),
            loop_span("10.1.0.0/24", 6.5, 8.0),
        ]
        (lc,) = correlate_lifecycles(records).lifecycles
        assert lc.fib_installs == 2  # the 10.9.0.0/24 install is excluded
        assert lc.convergence_time == pytest.approx(2.5)

    def test_latest_eligible_cause_wins(self):
        records = [
            event("bgp_withdraw", 2.0, prefix="10.1.0.0/24"),
            event("link_down", 9.0),
            loop_span("10.1.0.0/24", 10.0, 11.0),
        ]
        (lc,) = correlate_lifecycles(records).lifecycles
        assert lc.cause_family == "igp"
        assert lc.cause_time == 9.0


class TestReport:
    def test_empty_report_is_fully_attributed(self):
        report = correlate_lifecycles([])
        assert report.lifecycles == []
        assert report.attributed_fraction == 1.0

    def test_to_dict_shape(self):
        records = [event("link_down", 10.0),
                   loop_span("10.1.0.0/24", 10.5, 11.0)]
        payload = correlate_lifecycles(records).to_dict()
        assert payload["loops"] == 1
        assert payload["attributed"] == 1
        (row,) = payload["lifecycles"]
        assert row["cause"] == "link_down"
        assert row["cause_family"] == "igp"
        assert row["duration"] == pytest.approx(0.5)

    def test_render_mentions_attribution(self):
        records = [event("link_down", 10.0),
                   loop_span("10.1.0.0/24", 10.5, 11.0)]
        text = correlate_lifecycles(records).render()
        assert "1/1 loops attributed" in text
        assert "cause: link_down" in text

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            correlate_lifecycles([], igp_lead=-1.0)

    def test_loops_objects_override_spans(self):
        # When RoutingLoop objects are passed, span records are ignored.
        records = [loop_span("10.1.0.0/24", 1.0, 2.0)]
        report = correlate_lifecycles(records, loops=[])
        assert report.lifecycles == []


class TestChurnScenarioAttribution:
    """Acceptance: every loop in a churn-heavy run traces back to an
    injected failure, with convergence phases filled in."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        config = ScenarioConfig(
            name="lifecycle-churn",
            seed=23,
            pops=6,
            extra_edges=2,
            duration=60.0,
            rate_pps=200.0,
            n_prefixes=40,
            n_flows=200,
            igp_flaps=4,
            flap_downtime=(3.0, 6.0),
            bgp_withdrawals=2,
            withdrawal_holdtime=15.0,
            igp_timers=LinkStateTimers(fib_update_delay=0.4,
                                       fib_update_jitter=1.2),
        )
        tracer = Tracer()
        run = BackboneScenario(config).run(tracer=tracer)
        result = LoopDetector().detect(run.trace)
        return tracer, result

    def test_all_loops_attributed(self, traced_run):
        tracer, result = traced_run
        assert result.loop_count > 0, "churn scenario must produce loops"
        report = correlate_lifecycles(tracer.records, result.loops)
        assert len(report.lifecycles) == result.loop_count
        assert report.attributed_fraction == 1.0
        assert report.cause_counts()["unknown"] == 0

    def test_attributed_loops_have_convergence(self, traced_run):
        tracer, result = traced_run
        report = correlate_lifecycles(tracer.records, result.loops)
        for lc in report.lifecycles:
            assert lc.convergence_time is not None
            assert lc.convergence_time > 0.0
            assert lc.fib_installs > 0

    def test_igp_loops_decompose_into_phases(self, traced_run):
        tracer, result = traced_run
        report = correlate_lifecycles(tracer.records, result.loops)
        igp = [lc for lc in report.lifecycles if lc.cause_family == "igp"]
        assert igp, "churn scenario must produce IGP-caused loops"
        for lc in igp:
            phases = lc.phase_offsets()
            assert {"detection", "flooding", "spf",
                    "fib_install"} <= set(phases)
            # Phases are ordered: detect, flood, SPF, install.
            assert phases["detection"] <= phases["spf"]
            assert phases["spf"] <= phases["fib_install"]
