"""Tests for the metrics registry and its exporters."""

import gc
import json

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsError,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    registry_from_dump,
    set_registry,
)


class TestInstruments:
    def test_counter_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests served")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_is_shared_by_name(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc()
        registry.counter("hits_total").inc()
        assert registry.counter("hits_total").value == 2

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_histogram_observe(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds",
                                       buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        cumulative = histogram.cumulative()
        # Cumulative counts: <=0.1, <=1.0, <=10.0, <=+Inf.
        assert [count for _, count in cumulative] == [1, 3, 4, 5]

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")


class TestDisabledRegistry:
    def test_hands_out_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c") is NULL_HISTOGRAM

    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(10)
        NULL_GAUGE.set(3)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0

    def test_snapshot_is_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestCollectors:
    def test_collector_runs_on_snapshot(self):
        registry = MetricsRegistry()
        calls = []

        def publish(reg):
            calls.append(1)
            reg.counter("pulled_total").set(42)

        registry.register_collector(publish)
        snapshot = registry.snapshot()
        assert calls == [1]
        assert snapshot["counters"]["pulled_total"] == 42

    def test_bound_method_collector_is_weak(self):
        registry = MetricsRegistry()

        class Source:
            def publish(self, reg):
                reg.counter("src_total").inc()

        source = Source()
        registry.register_collector(source.publish)
        registry.collect()
        assert registry.counter("src_total").value == 1
        del source
        gc.collect()
        registry.collect()  # dead collector pruned, not called
        assert registry.counter("src_total").value == 1

    def test_disabled_registry_ignores_collectors(self):
        registry = MetricsRegistry(enabled=False)
        registry.register_collector(lambda reg: 1 / 0)
        registry.collect()  # would raise if the collector ran


class TestExporters:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests served").inc(7)
        registry.gauge("queue_depth", "Current queue depth").set(2.5)
        histogram = registry.histogram("latency_seconds", "Latency",
                                       buckets=[0.1, 1.0])
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_json_snapshot_shape(self):
        snapshot = self._populated().snapshot()
        assert snapshot["counters"] == {"requests_total": 7}
        assert snapshot["gauges"] == {"queue_depth": 2.5}
        hist = snapshot["histograms"]["latency_seconds"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(5.55)
        assert hist["buckets"] == [[0.1, 1], [1.0, 2], ["+Inf", 3]]

    def test_to_json_round_trips(self):
        registry = self._populated()
        assert json.loads(registry.to_json()) == registry.snapshot()

    def test_prometheus_text_format(self):
        text = self._populated().render_prometheus()
        assert "# HELP requests_total Requests served" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 7" in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 2.5" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_count 3" in text
        assert text.endswith("\n")

    def test_prometheus_round_trip_matches_snapshot(self):
        registry = self._populated()
        parsed = parse_prometheus(registry.render_prometheus())
        expected = json.loads(registry.to_json())
        assert parsed["counters"] == expected["counters"]
        assert parsed["gauges"] == expected["gauges"]
        hist = parsed["histograms"]["latency_seconds"]
        want = expected["histograms"]["latency_seconds"]
        assert hist["count"] == want["count"]
        assert hist["sum"] == pytest.approx(want["sum"])
        assert hist["buckets"] == want["buckets"]


class TestProcessRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        original = get_registry()
        replacement = MetricsRegistry()
        try:
            previous = set_registry(replacement)
            assert previous is original
            assert get_registry() is replacement
        finally:
            set_registry(original)
        assert get_registry() is original

    def test_default_registry_is_disabled(self):
        assert get_registry().enabled is False


class TestLabelEscaping:
    ADVERSARIAL = [
        'plain',
        'with "quotes"',
        "back\\slash",
        "trailing backslash\\",
        "new\nline",
        'all three: "\\\n"',
        "unicode: préfixe→∞",
        "{braces}, commas, = signs",
        "",
    ]

    def test_escape_unescape_round_trip(self):
        from repro.obs.metrics import (
            escape_label_value,
            unescape_label_value,
        )

        for value in self.ADVERSARIAL:
            escaped = escape_label_value(value)
            assert "\n" not in escaped
            assert unescape_label_value(escaped) == value

    def test_unknown_escape_passes_through(self):
        from repro.obs.metrics import unescape_label_value

        assert unescape_label_value("\\t") == "\\t"
        assert unescape_label_value("tail\\") == "tail\\"

    def test_labeled_counters_round_trip_through_exposition(self):
        registry = MetricsRegistry(enabled=True)
        for i, value in enumerate(self.ADVERSARIAL):
            registry.counter("adversarial_total", "t",
                             labels={"prefix": value}).inc(i + 1)
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["counters"] == (
            registry.snapshot()["counters"]
        )
        assert len(parsed["counters"]) == len(self.ADVERSARIAL)

    def test_multi_label_histogram_round_trip(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram(
            "loop_duration_seconds", "d",
            labels={"pop": 'east "1"', "proto": "udp\n"},
        )
        for value in (0.5, 3.0, 42.0):
            histogram.observe(value)
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["histograms"] == (
            registry.snapshot()["histograms"]
        )
        (entry,) = parsed["histograms"].values()
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(45.5)

    def test_invalid_label_name_rejected(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(MetricsError):
            registry.counter("x_total", "t", labels={"bad-name": "v"})


class TestMergedRegistry:
    def make(self, loops: int, records: int) -> MetricsRegistry:
        registry = MetricsRegistry(enabled=True)
        registry.counter("loops_total", "Loops").set(loops)
        registry.gauge("records", "Records").set(records)
        histogram = registry.histogram("sizes", "Sizes",
                                       buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_series_gain_the_constant_label(self):
        from repro.obs.metrics import merged_registry

        merged = merged_registry({"a": self.make(3, 100),
                                  "b": self.make(7, 200)})
        snapshot = merged.snapshot()
        assert snapshot["counters"]['loops_total{link="a"}'] == 3
        assert snapshot["counters"]['loops_total{link="b"}'] == 7
        assert snapshot["gauges"]['records{link="a"}'] == 100
        assert snapshot["gauges"]['records{link="b"}'] == 200
        assert snapshot["histograms"]['sizes{link="a"}']["count"] == 2

    def test_custom_label_name(self):
        from repro.obs.metrics import merged_registry

        merged = merged_registry({"east": self.make(1, 1)},
                                 label="direction")
        assert ('loops_total{direction="east"}'
                in merged.snapshot()["counters"])

    def test_existing_labels_are_preserved(self):
        from repro.obs.metrics import merged_registry

        source = MetricsRegistry(enabled=True)
        source.counter("fired_total", "Fired",
                       labels={"rule": "loss"}).set(4)
        merged = merged_registry({"a": source})
        key = 'fired_total{link="a",rule="loss"}'
        assert merged.snapshot()["counters"][key] == 4

    def test_merge_is_a_point_in_time_copy(self):
        from repro.obs.metrics import merged_registry

        source = self.make(1, 1)
        merged = merged_registry({"a": source})
        source.counter("loops_total", "Loops").set(99)
        assert merged.snapshot()["counters"]['loops_total{link="a"}'] == 1

    def test_merge_runs_source_collectors(self):
        from repro.obs.metrics import merged_registry

        source = MetricsRegistry(enabled=True)
        state = {"loops": 12}
        source.register_collector(
            lambda r: r.counter("pulled_total", "Pulled"
                                ).set(state["loops"])
        )
        merged = merged_registry({"a": source})
        assert merged.snapshot()["counters"]['pulled_total{link="a"}'] == 12

    def test_label_collision_rejected(self):
        from repro.obs.metrics import merged_registry

        source = MetricsRegistry(enabled=True)
        source.counter("x_total", "X", labels={"link": "inner"}).inc()
        with pytest.raises(MetricsError, match="already carries"):
            merged_registry({"outer": source})

    def test_invalid_label_name_rejected(self):
        from repro.obs.metrics import merged_registry

        with pytest.raises(MetricsError, match="invalid label name"):
            merged_registry({}, label="9bad")

    def test_rendered_output_round_trips(self):
        from repro.obs.metrics import merged_registry

        merged = merged_registry({"a": self.make(3, 100),
                                  "b": self.make(7, 200)})
        parsed = parse_prometheus(merged.render_prometheus())
        assert parsed["counters"]['loops_total{link="a"}'] == 3
        assert parsed["histograms"]['sizes{link="b"}']["count"] == 2


class TestDumpRoundTrip:
    """``dump()``/``registry_from_dump()`` is the fleet worker→parent
    metrics relay: the rebuilt registry must render byte-identically."""

    def build_registry(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("records_total", "Records seen.").inc(1234)
        registry.counter("loops_total", "Loops.",
                         {"kind": "transient"}).inc(7)
        registry.gauge("queue_depth", "Prefetch depth.",
                       {"queue": "source.prefetch"}).set(3)
        histogram = registry.histogram(
            "feed_seconds", "Feed latency.", buckets=[0.01, 0.1, 1.0])
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        return registry

    def test_render_is_byte_identical(self):
        registry = self.build_registry()
        rebuilt = registry_from_dump(registry.dump())
        assert rebuilt.render_prometheus() == registry.render_prometheus()

    def test_dump_is_json_serializable(self):
        dump = self.build_registry().dump()
        assert json.loads(json.dumps(dump)) == dump

    def test_rebuilt_histogram_counts(self):
        registry = self.build_registry()
        rebuilt = registry_from_dump(registry.dump())
        histogram = rebuilt.histogram("feed_seconds",
                                      buckets=[0.01, 0.1, 1.0])
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.555)

    def test_unknown_kind_rejected(self):
        with pytest.raises(MetricsError):
            registry_from_dump([{"kind": "summary", "name": "x",
                                 "value": 1.0}])

    def test_labels_survive(self):
        rebuilt = registry_from_dump(self.build_registry().dump())
        assert 'kind="transient"' in rebuilt.render_prometheus()
