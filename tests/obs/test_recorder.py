"""Tests for the bounded windowed recorder."""

from __future__ import annotations

import pytest

from repro.core.merge import RoutingLoop
from repro.core.replica import Replica, ReplicaStream
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import BoundedBucketSeries, WindowedRecorder
from repro.stats.timeseries import SeriesError


def make_loop(start: float = 5.0, ttl_delta: int = 2, replicas: int = 4,
              spacing: float = 0.5,
              prefix: str = "192.0.2.0/24") -> RoutingLoop:
    """A real RoutingLoop with one stream of evenly spaced replicas
    whose TTL decreases by ``ttl_delta`` per step."""
    stream = ReplicaStream(
        key=b"k",
        replicas=[
            Replica(index=i, timestamp=start + i * spacing,
                    ttl=60 - i * ttl_delta)
            for i in range(replicas)
        ],
        src=IPv4Address.parse("10.0.0.1"),
        dst=IPv4Address.parse("192.0.2.9"),
        protocol=17,
        first_data=b"",
    )
    return RoutingLoop(prefix=IPv4Prefix.parse(prefix), streams=[stream])


class TestBoundedBucketSeries:
    def test_capacity_validation(self):
        with pytest.raises(SeriesError):
            BoundedBucketSeries(60.0, 0)

    def test_prunes_oldest_buckets(self):
        series = BoundedBucketSeries(1.0, 3)
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            series.add(t)
        assert series.buckets == [2, 3, 4]
        assert series.get(0) == 0.0
        assert series.get(4) == 1.0

    def test_adds_to_existing_bucket_do_not_prune(self):
        series = BoundedBucketSeries(1.0, 2)
        series.add(0.0)
        series.add(1.0)
        series.add(0.5, 5.0)
        assert series.buckets == [0, 1]
        assert series.get(0) == 6.0

    def test_out_of_order_add_is_pruned_next(self):
        series = BoundedBucketSeries(1.0, 2)
        for t in (5.0, 6.0):
            series.add(t)
        series.add(0.0)  # older than everything already retained
        series.add(7.0)
        assert 0 not in series.counts
        assert len(series.counts) == 2

    def test_latest_bucket(self):
        series = BoundedBucketSeries(60.0, 5)
        assert series.latest_bucket() is None
        series.add(30.0)
        series.add(180.0)
        assert series.latest_bucket() == 3

    def test_long_feed_stays_bounded(self):
        series = BoundedBucketSeries(1.0, 10)
        for t in range(1000):
            series.add(float(t))
        assert len(series.counts) == 10
        assert series.buckets == list(range(990, 1000))


class TestWindowedRecorderFeed:
    def test_observe_record_counts_windows(self):
        recorder = WindowedRecorder()
        recorder.observe_record(10.0)
        recorder.observe_record(61.0)
        recorder.observe_record(61.5)
        assert recorder.records == 3
        assert recorder.now == 61.5
        assert recorder.minute_records.get(0) == 1
        assert recorder.minute_records.get(1) == 2
        assert recorder.second_records.get(61) == 2

    def test_observe_records_bulk_matches_singles(self):
        one = WindowedRecorder()
        for _ in range(7):
            one.observe_record(42.0)
        bulk = WindowedRecorder()
        bulk.observe_records(42.0, 7)
        assert bulk.records == one.records == 7
        assert bulk.minute_records.get(0) == one.minute_records.get(0)
        assert bulk.second_records.get(42) == one.second_records.get(42)

    def test_observe_loop_banks_replicas_and_ttl_delta(self):
        recorder = WindowedRecorder()
        loop = make_loop(start=5.0, ttl_delta=3, replicas=4, spacing=0.5)
        recorder.observe_loop(loop)
        assert recorder.minute_looped.get(0) == 4
        # Replicas at 5.0, 5.5, 6.0, 6.5 → seconds 5 and 6 get two each.
        assert recorder.second_looped.get(5) == 2
        assert recorder.second_looped.get(6) == 2
        assert recorder.minute_loops.get(0) == 1
        assert recorder.ttl_delta_total == {3: 1}
        assert recorder.stream_sizes[-1] == 4
        assert recorder.stream_durations[-1] == pytest.approx(1.5)
        assert list(recorder.replica_spacings) == pytest.approx(
            [0.5, 0.5, 0.5]
        )
        row = recorder.loops[-1]
        assert row["prefix"] == "192.0.2.0/24"
        assert row["replicas"] == 4
        assert row["ttl_delta"] == 3

    def test_sample_counters_banks_deltas(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("records_total", "records")
        recorder = WindowedRecorder()
        recorder.observe_record(30.0)
        counter.inc(10)
        recorder.sample_counters(registry)
        counter.inc(5)
        recorder.observe_record(90.0)
        recorder.sample_counters(registry)
        deltas = recorder.counter_deltas["records_total"]
        assert deltas.get(0) == 10
        assert deltas.get(1) == 5

    def test_sample_counters_noop_before_first_record(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("x_total").inc()
        recorder = WindowedRecorder()
        recorder.sample_counters(registry)
        assert recorder.counter_deltas == {}


class TestWindowedRecorderQueries:
    def test_looped_share_none_for_idle_minute(self):
        recorder = WindowedRecorder()
        assert recorder.looped_share(3) is None

    def test_looped_share_ratio(self):
        recorder = WindowedRecorder()
        recorder.observe_records(10.0, 100)
        recorder.observe_loop(make_loop(start=10.0, replicas=9))
        assert recorder.looped_share(0) == pytest.approx(9 / 100)
        assert recorder.peak_looped_share() == pytest.approx(9 / 100)
        assert recorder.looped_share_series() == {
            0: pytest.approx(9 / 100)
        }

    def test_ttl_delta_window_trails_now(self):
        recorder = WindowedRecorder()
        recorder.observe_loop(make_loop(start=10.0, ttl_delta=2))
        recorder.observe_records(610.0, 1)  # now -> minute 10
        recorder.observe_loop(make_loop(start=600.0, ttl_delta=4))
        window = recorder.ttl_delta_window(minutes=5)
        assert window == {4: 1}  # the minute-0 loop aged out
        assert recorder.ttl_delta_total == {2: 1, 4: 1}

    def test_minute_rows_shape(self):
        recorder = WindowedRecorder()
        recorder.observe_records(5.0, 10)
        recorder.observe_records(65.0, 20)
        recorder.observe_loop(make_loop(start=65.0, replicas=5))
        rows = recorder.minute_rows()
        assert [row["minute"] for row in rows] == [0, 1]
        assert rows[1]["records"] == 20
        assert rows[1]["looped"] == 5
        assert rows[1]["loops"] == 1
        assert rows[1]["share"] == pytest.approx(0.25)
        assert recorder.minute_rows(last=1)[0]["minute"] == 1

    def test_snapshot_is_json_ready(self):
        import json

        recorder = WindowedRecorder()
        recorder.observe_records(5.0, 10)
        recorder.observe_loop(make_loop())
        snapshot = recorder.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["records"] == 10
        assert snapshot["now"] == 5.0
        assert snapshot["ttl_delta_total"] == {"2": 1}

    def test_empty_snapshot(self):
        snapshot = WindowedRecorder().snapshot()
        assert snapshot["now"] is None
        assert snapshot["records"] == 0
        assert snapshot["minutes"] == []
