"""Tests for the scrape endpoint: routes, content, concurrency."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.live import LiveMonitor
from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, MonitorServer

from tests.obs.test_recorder import make_loop


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


@pytest.fixture()
def monitor():
    registry = MetricsRegistry(enabled=True)
    registry.counter("records_total", "records").inc(42)
    monitor = LiveMonitor(registry=registry)
    monitor.observe_record(5.0)
    monitor.observe_loop(make_loop(start=5.0, replicas=3))
    monitor.add_state_source("detector", lambda: {"open_streams": []})
    return monitor


class TestRoutes:
    def test_port_zero_resolves_before_start(self, monitor):
        server = MonitorServer(monitor, port=0)
        try:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.stop()

    def test_metrics_route(self, monitor):
        with MonitorServer(monitor, port=0) as server:
            status, content_type, body = fetch(f"{server.url}/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        parsed = parse_prometheus(body)
        assert parsed["counters"]["records_total"] == 42
        assert "alerts_fired_total" in parsed["counters"]

    def test_healthz_route(self, monitor):
        with MonitorServer(monitor, port=0) as server:
            port = server.port
            status, content_type, body = fetch(f"{server.url}/healthz")
        assert status == 200
        assert content_type == "application/json"
        health = json.loads(body)
        assert health == {"status": "ok", "records": 1, "loops": 1,
                          "alerts": 0, "finished": False, "port": port}

    def test_bind_failure_is_one_clear_error(self, monitor):
        """A taken port must raise a clean OSError naming host:port and
        suggesting port 0 — not a bare traceback from socket internals."""
        with MonitorServer(monitor, port=0) as server:
            with pytest.raises(OSError) as excinfo:
                MonitorServer(monitor, port=server.port)
        message = str(excinfo.value)
        assert "cannot bind" in message
        assert f"127.0.0.1:{server.port}" in message
        assert "port 0" in message

    def test_state_route(self, monitor):
        with MonitorServer(monitor, port=0) as server:
            status, _, body = fetch(f"{server.url}/state")
        assert status == 200
        state = json.loads(body)
        assert state["recorder"]["records"] == 1
        assert state["detector"] == {"open_streams": []}
        assert state["alerts"] == []

    def test_dashboard_served_at_root_when_configured(self, monitor):
        with MonitorServer(
            monitor, port=0,
            dashboard_renderer=lambda: "<html>dash</html>",
        ) as server:
            status, content_type, body = fetch(f"{server.url}/")
        assert status == 200
        assert content_type == "text/html; charset=utf-8"
        assert body == "<html>dash</html>"

    def test_root_404_without_dashboard(self, monitor):
        with MonitorServer(monitor, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"{server.url}/")
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["path"] == "/"

    def test_unknown_path_404(self, monitor):
        with MonitorServer(monitor, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_query_string_ignored(self, monitor):
        with MonitorServer(monitor, port=0) as server:
            status, _, _ = fetch(f"{server.url}/healthz?probe=1")
        assert status == 200


class TestConcurrency:
    def test_scrapes_during_feed_stay_coherent(self):
        """Hammer /metrics, /healthz, and /state from threads while the
        foreground thread feeds records and loops — every response must
        parse and every health snapshot must be internally consistent."""
        registry = MetricsRegistry(enabled=True)
        monitor = LiveMonitor(registry=registry)
        errors: list[Exception] = []
        stop = threading.Event()

        def scraper(path: str) -> None:
            while not stop.is_set():
                try:
                    status, _, body = fetch(f"{server.url}{path}")
                    assert status == 200
                    if path == "/healthz":
                        health = json.loads(body)
                        assert health["status"] == "ok"
                        assert 0 <= health["loops"] <= 50
                    elif path == "/state":
                        state = json.loads(body)
                        assert (state["recorder"]["records"]
                                >= state["recorder"]["minutes"][0]
                                ["records"] if state["recorder"]
                                ["minutes"] else True)
                    else:
                        parse_prometheus(body)
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(exc)
                    return

        with MonitorServer(monitor, port=0) as server:
            threads = [
                threading.Thread(target=scraper, args=(path,))
                for path in ("/metrics", "/healthz", "/state")
            ]
            for thread in threads:
                thread.start()
            try:
                for i in range(50):
                    monitor.observe_record(float(i))
                    monitor.observe_loop(
                        make_loop(start=float(i), replicas=3)
                    )
                monitor.finish()
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=5.0)
        assert errors == []

    def test_stop_is_clean_and_repeat_start_possible(self, monitor):
        server = MonitorServer(monitor, port=0).start()
        url = server.url
        assert fetch(f"{url}/healthz")[0] == 200
        server.stop()
        with pytest.raises(OSError):
            fetch(f"{url}/healthz")


class TestClientDisconnects:
    """Mid-scrape disconnects must never surface tracebacks — both
    :class:`BrokenPipeError` and :class:`ConnectionResetError` mean
    "the client is gone", not "the server is broken"."""

    def test_content_length_header_frames_responses(self, monitor):
        with MonitorServer(monitor, port=0) as server:
            with urllib.request.urlopen(f"{server.url}/state",
                                        timeout=5.0) as response:
                declared = int(response.headers["Content-Length"])
                body = response.read()
        assert declared == len(body)

    @pytest.mark.parametrize("error", [BrokenPipeError,
                                       ConnectionResetError])
    def test_send_swallows_client_gone_errors(self, monitor, error,
                                              caplog):
        import io
        import logging

        from repro.obs.server import _Handler

        class Boom(io.BytesIO):
            def write(self, data):
                raise error("peer went away")

        handler = _Handler.__new__(_Handler)
        handler.monitor = monitor
        handler.wfile = Boom()
        handler.request_version = "HTTP/1.1"
        handler.requestline = "GET /state HTTP/1.1"
        handler.client_address = ("127.0.0.1", 12345)
        handler.close_connection = False
        with caplog.at_level(logging.INFO, logger="repro.http"):
            handler._send(200, "text/plain", "hello")
        assert handler.close_connection
        # DEBUG-only: nothing at the default (WARNING/INFO) levels.
        assert caplog.records == []

    @pytest.mark.parametrize("error", [BrokenPipeError,
                                       ConnectionResetError])
    def test_abrupt_reset_during_read_is_quiet(self, monitor, error,
                                               caplog):
        import logging
        import socket as socket_module

        with caplog.at_level(logging.INFO, logger="repro.http"):
            with MonitorServer(monitor, port=0) as server:
                # A real connection torn down before sending a request:
                # the handler thread hits the error on its read path.
                sock = socket_module.create_connection(
                    ("127.0.0.1", server.port), timeout=5.0
                )
                sock.setsockopt(socket_module.SOL_SOCKET,
                                socket_module.SO_LINGER,
                                b"\x01\x00\x00\x00\x00\x00\x00\x00")
                sock.close()  # RST instead of FIN
                # Prove the server survived: a normal scrape still works.
                status, _, _ = fetch(f"{server.url}/healthz")
        assert status == 200
        # No warnings/errors and no tracebacks — the only non-DEBUG
        # line allowed is the startup "monitoring endpoint at" INFO.
        http_records = [record for record in caplog.records
                        if record.name == "repro.http"]
        assert all(record.levelno < logging.WARNING
                   for record in http_records)
        assert all(record.exc_info is None for record in http_records)
        assert all("endpoint at" in record.getMessage()
                   for record in http_records
                   if record.levelno == logging.INFO)
