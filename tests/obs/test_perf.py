"""Tests for the performance flight recorder: stage timing, the
sampling profiler, and benchmark provenance / regression gating."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import (
    NULL_PROFILE,
    BenchSchemaError,
    PipelineProfile,
    SamplingProfiler,
    bench_document,
    compare_benchmarks,
    load_bench,
    validate_bench,
    write_bench,
)


def make_profile(**kwargs) -> PipelineProfile:
    # A fake clock makes timing assertions exact: each clock() read
    # advances 0.5 s.
    ticks = iter(i * 0.5 for i in range(1000))
    return PipelineProfile(clock=lambda: next(ticks), **kwargs)


class TestPipelineProfile:
    def test_stage_accumulates_totals(self):
        profile = make_profile()
        with profile.stage("ingest", records=100, bytes=4000):
            pass
        with profile.stage("ingest", records=50) as span:
            span.add(bytes=2000)
        snapshot = profile.snapshot()
        (stage,) = snapshot["stages"]
        assert stage["name"] == "ingest"
        assert stage["count"] == 2
        assert stage["seconds"] == 1.0
        assert stage["records"] == 150
        assert stage["bytes"] == 6000
        assert stage["records_per_sec"] == 150.0
        assert stage["bytes_per_sec"] == 6000.0

    def test_nested_stages_record_parent(self):
        profile = make_profile()
        with profile.stage("parallel.detect"):
            with profile.stage("step1.kernel.vectorized"):
                pass
        stages = {s["name"]: s for s in profile.snapshot()["stages"]}
        assert stages["parallel.detect"]["parent"] is None
        assert (stages["step1.kernel.vectorized"]["parent"]
                == "parallel.detect")

    def test_nesting_is_per_thread(self):
        profile = PipelineProfile()
        started = threading.Event()
        release = threading.Event()

        def outer():
            with profile.stage("outer"):
                started.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=outer)
        thread.start()
        started.wait(timeout=5.0)
        # This thread has its own empty stack: no false parent.
        with profile.stage("other"):
            pass
        release.set()
        thread.join(timeout=5.0)
        stages = {s["name"]: s for s in profile.snapshot()["stages"]}
        assert stages["other"]["parent"] is None

    def test_registry_instruments(self):
        registry = MetricsRegistry(enabled=True)
        profile = make_profile(registry=registry)
        with profile.stage("feed", records=10, bytes=400):
            pass
        with profile.stage("feed", records=5):
            pass
        snapshot = registry.snapshot()
        hist = snapshot["histograms"]['perf_stage_seconds{stage="feed"}']
        assert hist["count"] == 2
        assert hist["sum"] == 1.0
        counters = snapshot["counters"]
        assert counters['perf_stage_records_total{stage="feed"}'] == 15
        assert counters['perf_stage_bytes_total{stage="feed"}'] == 400

    def test_queue_depth_gauge(self):
        registry = MetricsRegistry(enabled=True)
        profile = PipelineProfile(registry)
        profile.queue_depth("source.prefetch", 2)
        profile.queue_depth("source.prefetch", 1)
        assert profile.snapshot()["queues"] == {"source.prefetch": 1}
        gauges = registry.snapshot()["gauges"]
        assert gauges['perf_queue_depth{queue="source.prefetch"}'] == 1

    def test_attach_registry_after_the_fact(self):
        """The parallel engine creates its profile before
        register_metrics; attaching the registry later must flow new
        spans into histograms."""
        profile = make_profile()
        with profile.stage("a"):
            pass
        registry = MetricsRegistry(enabled=True)
        profile.registry = registry
        with profile.stage("a"):
            pass
        histograms = registry.snapshot()["histograms"]
        assert histograms['perf_stage_seconds{stage="a"}']["count"] == 1

    def test_null_profile_is_inert(self):
        with NULL_PROFILE.stage("x", records=5) as span:
            span.add(bytes=10)
        NULL_PROFILE.queue_depth("q", 3)
        assert NULL_PROFILE.snapshot() == {"stages": [], "queues": {}}
        assert not NULL_PROFILE.enabled

    def test_stage_seconds_view(self):
        profile = make_profile()
        with profile.stage("a"):
            pass
        assert profile.stage_seconds() == {"a": 0.5}


class TestSamplingProfiler:
    def test_samples_a_busy_thread(self):
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                sum(range(500))

        thread = threading.Thread(target=spin, name="busy-worker")
        thread.start()
        try:
            profiler = SamplingProfiler(interval=0.001)
            with profiler:
                time.sleep(0.2)
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert profiler.sample_count > 10
        collapsed = profiler.collapsed()
        assert "thread:busy-worker" in collapsed
        for line in collapsed.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack
            assert count.isdigit()

    def test_run_for_returns_collapsed(self):
        collapsed = SamplingProfiler(interval=0.001).run_for(0.05)
        assert isinstance(collapsed, str)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)


def doc(name="bench", **metrics):
    return bench_document(name, {
        key: {"value": value, "unit": "records/s",
              "higher_is_better": True}
        for key, value in metrics.items()
    })


class TestBenchSchema:
    def test_document_roundtrip(self, tmp_path):
        document = bench_document(
            "step1", {"rate": {"value": 1e6, "unit": "records/s",
                               "higher_is_better": True}},
            stages={"ingest": 0.25},
        )
        path = write_bench(tmp_path / "BENCH_step1.json", document)
        loaded = load_bench(path)
        assert loaded["schema"] == "repro-bench/1"
        assert loaded["metrics"]["rate"]["value"] == 1e6
        assert loaded["stages"] == {"ingest": 0.25}
        env = loaded["env"]
        assert env["python"]
        assert "numpy" in env and "git_sha" in env and "cpu_count" in env

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("schema"),
        lambda d: d.update(schema="repro-bench/2"),
        lambda d: d.pop("metrics"),
        lambda d: d.update(metrics={}),
        lambda d: d.update(metrics={"x": {"value": "fast"}}),
        lambda d: d.update(metrics={"x": {"value": True}}),
        lambda d: d.update(name=""),
        lambda d: d.update(stages="nope"),
    ])
    def test_validate_rejects_malformed(self, mutate):
        document = doc(rate=100.0)
        mutate(document)
        with pytest.raises(BenchSchemaError):
            validate_bench(document)

    def test_load_rejects_missing_and_unparseable(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            load_bench(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchSchemaError):
            load_bench(bad)


class TestCompare:
    def test_flags_20_percent_regression(self):
        comparison = compare_benchmarks(doc(rate=1000.0), doc(rate=800.0),
                                        threshold=0.1)
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.name == "rate"
        assert delta.change == pytest.approx(-0.2)

    def test_within_threshold_is_ok(self):
        comparison = compare_benchmarks(doc(rate=1000.0), doc(rate=950.0),
                                        threshold=0.1)
        assert comparison.ok

    def test_improvement_is_ok(self):
        comparison = compare_benchmarks(doc(rate=1000.0), doc(rate=2000.0))
        assert comparison.ok

    def test_lower_is_better_metrics_regress_upward(self):
        def overhead(value):
            return bench_document("bench", {
                "overhead": {"value": value, "unit": "fraction",
                             "higher_is_better": False},
            })
        assert not compare_benchmarks(overhead(0.02), overhead(0.05),
                                      threshold=0.1).ok
        assert compare_benchmarks(overhead(0.05), overhead(0.02)).ok

    def test_added_and_removed_never_regress(self):
        comparison = compare_benchmarks(doc(old=1.0), doc(new=1.0))
        assert comparison.ok
        statuses = {d.name: d.status for d in comparison.deltas}
        assert statuses == {"old": "removed", "new": "added"}

    def test_render_names_the_loser(self):
        comparison = compare_benchmarks(doc(rate=1000.0), doc(rate=500.0))
        rendered = comparison.render()
        assert "rate" in rendered
        assert "regression" in rendered


class TestCli:
    def write(self, tmp_path, name, value):
        return str(write_bench(tmp_path / name, doc(rate=value)))

    def test_compare_ok_exit_0(self, tmp_path, capsys):
        base = self.write(tmp_path, "a.json", 1000.0)
        curr = self.write(tmp_path, "b.json", 1010.0)
        assert main(["perf", "compare", base, curr]) == 0
        assert "rate" in capsys.readouterr().out

    def test_compare_regression_exit_1(self, tmp_path):
        base = self.write(tmp_path, "a.json", 1000.0)
        curr = self.write(tmp_path, "b.json", 800.0)
        assert main(["perf", "compare", base, curr]) == 1
        # A looser threshold accepts the same pair.
        assert main(["perf", "compare", base, curr,
                     "--threshold", "0.5"]) == 0

    def test_schema_mismatch_exit_2(self, tmp_path):
        base = self.write(tmp_path, "a.json", 1000.0)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/1"}),
                       encoding="utf-8")
        assert main(["perf", "compare", base, str(bad)]) == 2

    def test_sample_profile_flag_writes_collapsed_stacks(self, tmp_path,
                                                         capsys):
        out = tmp_path / "profile.txt"
        code = main(["simulate", "backbone1", "--duration", "10",
                     "--sample-profile", str(out)])
        assert code == 0
        capsys.readouterr()
        text = out.read_text(encoding="utf-8")
        assert text  # the simulation runs long enough to be sampled
        assert "thread:MainThread" in text
