"""Instrumentation must not change detection output.

The offline, streaming, and sharded detectors are run with a recording
tracer and with the null tracer; their loop lists must be identical —
observability is strictly read-only.
"""

from __future__ import annotations

import random

import pytest

from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.obs.tracing import Tracer, spans
from repro.parallel import ParallelLoopDetector
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def trace():
    builder = SyntheticTraceBuilder(rng=random.Random(7))
    builder.add_background(400, 0.0, 60.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(10.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=3,
                     replicas_per_packet=6, spacing=0.02, entry_ttl=40)
    builder.add_loop(35.0, IPv4Prefix.parse("203.0.113.0/24"), n_packets=2,
                     replicas_per_packet=5, spacing=0.05, entry_ttl=50)
    return builder.build()


def loop_rows(loops):
    return [(str(l.prefix), l.start, l.end, l.replica_count) for l in loops]


class TestOfflineDetector:
    def test_tracer_does_not_change_output(self, trace):
        plain = LoopDetector().detect(trace)
        tracer = Tracer()
        traced = LoopDetector(tracer=tracer).detect(trace)
        assert loop_rows(traced.loops) == loop_rows(plain.loops)

    def test_phase_spans_cover_pipeline(self, trace):
        tracer = Tracer()
        result = LoopDetector(tracer=tracer).detect(trace)
        names = {r["name"] for r in tracer.records if r["type"] == "span"}
        assert {"detect.replicas", "detect.validate",
                "detect.merge"} <= names
        assert len(spans(tracer.records, "loop")) == result.loop_count

    def test_loop_spans_carry_trace_time(self, trace):
        tracer = Tracer()
        result = LoopDetector(tracer=tracer).detect(trace)
        for span, loop in zip(spans(tracer.records, "loop"), result.loops):
            assert span["t0"] == loop.start
            assert span["t1"] == loop.end
            assert span["attrs"]["prefix"] == str(loop.prefix)

    def test_phase_spans_are_wall_clock_tagged(self, trace):
        tracer = Tracer()
        LoopDetector(tracer=tracer).detect(trace)
        for record in spans(tracer.records, "detect.replicas"):
            assert record["attrs"]["clock"] == "wall"


class TestStreamingDetector:
    def test_tracer_does_not_change_output(self, trace):
        config = DetectorConfig()
        plain = StreamingLoopDetector(config).process_trace(trace)
        tracer = Tracer()
        traced = StreamingLoopDetector(
            config, tracer=tracer
        ).process_trace(trace)
        assert loop_rows(traced) == loop_rows(plain)

    def test_emits_process_and_loop_spans(self, trace):
        tracer = Tracer()
        loops = StreamingLoopDetector(
            DetectorConfig(), tracer=tracer
        ).process_trace(trace)
        assert len(spans(tracer.records, "streaming.process_trace")) == 1
        assert len(spans(tracer.records, "loop")) == len(loops)


class TestParallelDetector:
    def test_tracer_does_not_change_output(self, trace):
        config = DetectorConfig()
        plain = ParallelLoopDetector(config, jobs=2).detect(trace)
        tracer = Tracer()
        traced = ParallelLoopDetector(config, jobs=2,
                                      tracer=tracer).detect(trace)
        assert loop_rows(traced.loops) == loop_rows(plain.loops)

    def test_emits_stage_and_shard_spans(self, trace):
        tracer = Tracer()
        engine = ParallelLoopDetector(DetectorConfig(), jobs=2,
                                      tracer=tracer)
        result = engine.detect(trace)
        stage_names = [r["name"] for r in tracer.records
                       if r["type"] == "span"]
        for name in ("parallel.partition", "parallel.detect",
                     "parallel.merge"):
            assert stage_names.count(name) == 1
        shard_spans = spans(tracer.records, "parallel.shard")
        assert len(shard_spans) == engine.shards
        detect_span = spans(tracer.records, "parallel.detect")[0]
        for shard in shard_spans:
            assert shard["parent"] == detect_span["id"]
        assert len(spans(tracer.records, "loop")) == result.loop_count


class TestLiveMonitoring:
    def test_monitored_streaming_identical_output(self, trace):
        from repro.cli import _stream_with_monitor
        from repro.obs.live import LiveMonitor

        config = DetectorConfig()
        plain = StreamingLoopDetector(config).process_trace(trace)
        monitor = LiveMonitor()
        monitored = _stream_with_monitor(
            StreamingLoopDetector(config), trace, monitor
        )
        assert loop_rows(monitored) == loop_rows(plain)
        assert monitor.recorder.records == len(trace)
        assert monitor.finished

    def test_sampled_windows_match_trace_shape(self, trace):
        from repro.cli import _stream_with_monitor
        from repro.obs.live import LiveMonitor

        monitor = LiveMonitor()
        _stream_with_monitor(
            StreamingLoopDetector(DetectorConfig()), trace, monitor
        )
        assert sum(monitor.recorder.minute_records.counts.values()) == (
            len(trace)
        )
        assert monitor.recorder.peak_looped_share() > 0.0
