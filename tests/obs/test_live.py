"""Tests for the LiveMonitor glue: feeding styles, boundaries, state."""

from __future__ import annotations

import pytest

from repro.obs.alerts import AlertEngine, looped_loss_share_rule
from repro.obs.live import LiveMonitor
from repro.obs.metrics import MetricsRegistry

from tests.obs.test_recorder import make_loop


class TestDirectFeed:
    def test_records_and_loops_reach_recorder(self):
        monitor = LiveMonitor()
        for t in (1.0, 2.0, 61.0):
            monitor.observe_record(t)
        monitor.observe_loop(make_loop(start=2.0, replicas=3))
        assert monitor.recorder.records == 3
        assert monitor.recorder.minute_records.get(1) == 1
        assert len(monitor.recorder.loops) == 1

    def test_minute_boundary_evaluates_alerts(self):
        engine = AlertEngine(rules=[looped_loss_share_rule(0.05)])
        monitor = LiveMonitor(alert_engine=engine)
        for _ in range(10):
            monitor.observe_record(5.0)
        monitor.observe_loop(make_loop(start=5.0, replicas=3))
        assert engine.fired_total == 0  # minute still open
        monitor.observe_record(65.0)  # crossing evaluates minute 0
        assert engine.fired_total == 1

    def test_out_of_order_counted_and_banked(self):
        monitor = LiveMonitor()
        monitor.observe_record(70.0)
        monitor.observe_record(5.0)  # regression into minute 0
        assert monitor.out_of_order == 1
        assert monitor.recorder.minute_records.get(0) == 1
        assert monitor.recorder.minute_records.get(1) == 1

    def test_finish_closes_final_minute(self):
        engine = AlertEngine(rules=[looped_loss_share_rule(0.05)])
        monitor = LiveMonitor(alert_engine=engine)
        for _ in range(10):
            monitor.observe_record(5.0)
        monitor.observe_loop(make_loop(start=5.0, replicas=3))
        monitor.finish()
        assert monitor.finished
        assert engine.fired_total == 1

    def test_finish_is_idempotent(self):
        engine = AlertEngine(rules=[looped_loss_share_rule(0.05)])
        monitor = LiveMonitor(alert_engine=engine)
        for _ in range(10):
            monitor.observe_record(5.0)
        monitor.observe_loop(make_loop(start=5.0, replicas=3))
        monitor.finish()
        monitor.finish()
        assert engine.fired_total == 1


class TestSampledFeed:
    def _feed(self, monitor: LiveMonitor, timestamps: list[float],
              counter: list[int]) -> None:
        """The hot-loop protocol: compare against next_boundary, sample
        before processing the crossing record."""
        boundary = monitor.next_boundary
        for timestamp in timestamps:
            if timestamp >= boundary:
                boundary = monitor.sample(timestamp)
            counter[0] += 1  # "process" the record

    def test_windows_match_direct_feed_exactly(self):
        timestamps = [0.1, 0.5, 1.2, 3.7, 3.9, 64.0, 64.2, 130.0]
        direct = LiveMonitor()
        for t in timestamps:
            direct.observe_record(t)
        direct.finish()

        counter = [0]
        sampled = LiveMonitor()
        sampled.set_record_source(lambda: counter[0])
        self._feed(sampled, timestamps, counter)
        sampled.finish()

        assert sampled.recorder.records == direct.recorder.records == 8
        for minute in (0, 1, 2):
            assert (sampled.recorder.minute_records.get(minute)
                    == direct.recorder.minute_records.get(minute))
        for second in (0, 1, 3, 64, 130):
            assert (sampled.recorder.second_records.get(second)
                    == direct.recorder.second_records.get(second))

    def test_idle_gap_attribution(self):
        # Records in second 2, silence, then second 9: the pending
        # delta banks into second 2, never smeared into the gap.
        counter = [0]
        monitor = LiveMonitor()
        monitor.set_record_source(lambda: counter[0])
        self._feed(monitor, [2.0, 2.5, 2.9, 9.1], counter)
        monitor.finish()
        assert monitor.recorder.second_records.get(2) == 3
        assert monitor.recorder.second_records.get(9) == 1
        for second in range(3, 9):
            assert monitor.recorder.second_records.get(second) == 0

    def test_boundary_work_fires_on_minute_advance(self):
        engine = AlertEngine(rules=[looped_loss_share_rule(0.05)])
        counter = [0]
        monitor = LiveMonitor(alert_engine=engine)
        monitor.set_record_source(lambda: counter[0])
        timestamps = [float(t) for t in range(0, 10)]
        self._feed(monitor, timestamps, counter)
        monitor.observe_loop(make_loop(start=5.0, replicas=3))
        self._feed(monitor, [62.0, 63.0], counter)
        monitor.finish()
        assert engine.fired_total == 1
        assert engine.history[0].key == "minute:0"

    def test_registry_counters_sampled_on_boundary(self):
        registry = MetricsRegistry(enabled=True)
        external = registry.counter("external_total", "external")
        counter = [0]
        monitor = LiveMonitor(registry=registry)
        monitor.set_record_source(lambda: counter[0])
        self._feed(monitor, [1.0], counter)
        external.inc(7)
        self._feed(monitor, [65.0, 125.0], counter)
        monitor.finish()
        deltas = monitor.recorder.counter_deltas["external_total"]
        assert sum(deltas.counts.values()) == 7


class TestState:
    def test_state_sources_merge_into_snapshot(self):
        monitor = LiveMonitor()
        monitor.add_state_source("detector", lambda: {"open": 3})
        monitor.observe_record(1.0)
        state = monitor.state()
        assert state["detector"] == {"open": 3}
        assert state["recorder"]["records"] == 1
        assert state["alerts"] == []
        assert state["finished"] is False
        assert state["out_of_order"] == 0

    def test_samples_snapshot(self):
        monitor = LiveMonitor()
        monitor.observe_loop(make_loop(replicas=4, spacing=0.5))
        samples = monitor.samples()
        assert samples["stream_sizes"] == (4,)
        assert samples["stream_durations"] == (pytest.approx(1.5),)
        assert len(samples["replica_spacings"]) == 3
        assert samples["loop_durations"] == (pytest.approx(1.5),)

    def test_registry_registers_alert_metrics(self):
        registry = MetricsRegistry(enabled=True)
        monitor = LiveMonitor(registry=registry)
        assert "alerts_fired_total" in registry.snapshot()["counters"]
        assert monitor.render_prometheus().startswith("# HELP")

    def test_render_prometheus_empty_without_registry(self):
        assert LiveMonitor().render_prometheus() == ""


class TestChunkFeed:
    """feed_chunk must keep the exact sampling contract of feed_pairs
    while letting the detector's batched tier run between boundaries."""

    def _trace(self):
        import random

        from repro.net.addr import IPv4Prefix
        from repro.traffic.synthetic import SyntheticTraceBuilder

        builder = SyntheticTraceBuilder(rng=random.Random(11))
        builder.add_background(
            400, 0.0, 300.0,
            prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
        builder.add_loop(30.0, IPv4Prefix.parse("192.0.2.0/24"),
                         n_packets=3, replicas_per_packet=6,
                         spacing=0.01, entry_ttl=40)
        builder.add_loop(150.0, IPv4Prefix.parse("203.0.113.0/24"),
                         n_packets=2, replicas_per_packet=5,
                         spacing=0.05, entry_ttl=50)
        return builder.build()

    def _chain(self):
        from repro.core.streaming import StreamingLoopDetector
        from repro.obs.live import attach_detector

        monitor = LiveMonitor(registry=MetricsRegistry(enabled=True))
        streaming = StreamingLoopDetector()
        attach_detector(monitor, streaming)
        return streaming, monitor

    def test_matches_pair_feed_exactly(self):
        from repro.net.columnar import ColumnarTrace
        from repro.obs.live import feed_chunk, feed_pairs

        trace = self._trace()
        columnar = ColumnarTrace.from_trace(trace, chunk_records=128)

        ref_streaming, ref_monitor = self._chain()
        ref_loops = []
        for chunk in columnar.chunks:
            ref_loops.extend(
                feed_pairs(ref_streaming, ref_monitor,
                           chunk.iter_views()))
        ref_loops.extend(ref_streaming.flush())
        ref_monitor.finish()

        streaming, monitor = self._chain()
        loops = []
        for chunk in columnar.chunks:
            loops.extend(feed_chunk(streaming, monitor, chunk))
        loops.extend(streaming.flush())
        monitor.finish()

        assert len(loops) == len(ref_loops) == 2
        assert [l.prefix for l in loops] == [l.prefix for l in ref_loops]
        assert monitor.recorder.records == ref_monitor.recorder.records
        assert monitor.recorder.minute_records \
            == ref_monitor.recorder.minute_records
        assert monitor.state() == ref_monitor.state()
        assert streaming.state_snapshot() \
            == ref_streaming.state_snapshot()
