"""Tests for the ASCII and HTML dashboard renderers."""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

from repro.obs.alerts import AlertEngine, looped_loss_share_rule
from repro.obs.live import LiveMonitor

from tests.obs.test_recorder import make_loop
from repro.obs.dashboard import render_ascii, render_html


def populated_monitor() -> LiveMonitor:
    engine = AlertEngine(rules=[looped_loss_share_rule(0.05)])
    monitor = LiveMonitor(alert_engine=engine)
    for minute in range(3):
        for i in range(20):
            monitor.observe_record(minute * 60.0 + i)
        monitor.observe_loop(
            make_loop(start=minute * 60.0 + 2.0, replicas=4,
                      spacing=0.5)
        )
    monitor.finish()
    return monitor


class TestAsciiDashboard:
    def test_empty_monitor_renders(self):
        text = render_ascii(LiveMonitor())
        assert "routing-loop live monitor" in text
        assert "alerts: none fired" in text

    def test_panels_present_when_populated(self):
        text = render_ascii(populated_monitor())
        for fragment in (
            "looped share per minute (Sec. VI)",
            "TTL delta distribution (Fig. 2)",
            "stream size CDF, replicas (Fig. 3)",
            "replica spacing CDF, seconds (Fig. 4)",
            "stream duration CDF, seconds (Fig. 8)",
            "loop duration CDF, seconds (Fig. 9)",
        ):
            assert fragment in text, fragment

    def test_alert_lines_listed(self):
        text = render_ascii(populated_monitor())
        assert "alerts:" in text
        assert "[critical] looped_loss_share" in text


class TestHtmlDashboard:
    def test_svgs_are_well_formed_xml(self):
        html = render_html(populated_monitor())
        svgs = re.findall(r"<svg.*?</svg>", html, re.S)
        assert len(svgs) == 6
        for svg in svgs:
            ET.fromstring(svg)  # must parse
        assert "NaN" not in html

    def test_panel_titles_present(self):
        html = render_html(populated_monitor())
        for title in (
            "Looped traffic share per minute",
            "TTL-delta distribution (Fig. 2)",
            "Stream size CDF (Fig. 3)",
            "Replica spacing CDF (Fig. 4)",
            "Stream duration CDF (Fig. 8)",
            "Loop duration CDF (Fig. 9)",
            "Alert history",
            "Per-minute windows",
            "Recent loops",
        ):
            assert title in html, title

    def test_coordinates_stay_in_viewbox(self):
        html = render_html(populated_monitor())
        for x in re.findall(r'[\s"](?:x|x1|x2|cx)="([-\d.]+)"', html):
            assert -5.0 <= float(x) <= 565.0
        for y in re.findall(r'[\s"](?:y|y1|y2|cy)="([-\d.]+)"', html):
            assert -5.0 <= float(y) <= 235.0

    def test_title_and_prefix_escaping(self):
        monitor = LiveMonitor()
        monitor.observe_record(1.0)
        monitor.observe_loop(make_loop(start=1.0))
        # Adversarial row injected the way a hostile pcap would: via
        # the recorder's loop log.
        monitor.recorder.loops[-1]["prefix"] = '<script>"&x</script>'
        html = render_html(monitor, title="<b>&title</b>")
        assert "<script>" not in html
        assert "&lt;script&gt;" in html
        assert "<b>&title</b>" not in html

    def test_dark_mode_and_palette_tokens(self):
        html = render_html(populated_monitor())
        assert "prefers-color-scheme: dark" in html
        assert 'data-theme="dark"' in html
        assert "#2a78d6" in html  # series blue, light mode
        assert "tabular-nums" in html

    def test_alert_severity_has_icon_and_label(self):
        html = render_html(populated_monitor())
        assert "●" in html  # critical icon
        assert "critical" in html

    def test_threshold_hairline_labeled(self):
        html = render_html(populated_monitor())
        assert "Sec. VI ceiling 9%" in html

    def test_empty_monitor_html_renders(self):
        html = render_html(LiveMonitor())
        assert "no records yet" in html
        assert "no loops detected yet" in html
        for svg in re.findall(r"<svg.*?</svg>", html, re.S):
            ET.fromstring(svg)


def short_lived_monitor() -> LiveMonitor:
    """A run that died almost immediately: one record, no loops, no
    closed windows — every panel must render a placeholder, not raise."""
    monitor = LiveMonitor()
    monitor.observe_record(0.25)
    return monitor


class TestShortLivedRun:
    def test_ascii_renders_placeholders(self):
        text = render_ascii(short_lived_monitor())
        assert "routing-loop live monitor" in text
        assert "alerts: none fired" in text

    def test_html_renders_placeholders(self):
        html = render_html(short_lived_monitor())
        assert "no loops detected yet" in html
        for svg in re.findall(r"<svg.*?</svg>", html, re.S):
            ET.fromstring(svg)
        assert "NaN" not in html


class TestPerfPanel:
    def make_monitor(self, perf) -> LiveMonitor:
        monitor = LiveMonitor()
        monitor.add_state_source("perf", lambda: perf)
        return monitor

    def perf_state(self) -> dict:
        from repro.obs.perf import PipelineProfile

        profile = PipelineProfile()
        with profile.stage("detect.feed", records=1000, bytes=40_000):
            pass
        with profile.stage("detect.flush"):
            pass
        profile.queue_depth("source.prefetch", 2)
        return profile.snapshot()

    def test_ascii_lists_stages_and_queues(self):
        text = render_ascii(self.make_monitor(self.perf_state()))
        assert "pipeline stages:" in text
        assert "detect.feed" in text
        assert "records/s" in text
        assert "queue source.prefetch: depth 2" in text

    def test_html_panel_lists_stages(self):
        html = render_html(self.make_monitor(self.perf_state()))
        assert "Pipeline stage timings" in html
        assert "detect.feed" in html
        assert "source.prefetch" in html

    def test_no_perf_source_keeps_panel_out(self):
        html = render_html(LiveMonitor())
        assert "Pipeline stage timings" not in html

    def test_empty_perf_renders_placeholder(self):
        perf = {"stages": [], "queues": {}}
        html = render_html(self.make_monitor(perf))
        # An attached but still-empty profile renders the placeholder
        # note rather than an empty table.
        assert "no stages timed yet" in html
        text = render_ascii(self.make_monitor(perf))
        assert "routing-loop live monitor" in text
