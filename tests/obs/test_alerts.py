"""Tests for the paper-grounded alert rules and the engine."""

from __future__ import annotations

import logging

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    Finding,
    default_rules,
    loop_duration_tail_rule,
    looped_loss_share_rule,
    replica_rate_spike_rule,
    total_variation,
    ttl_delta_shift_rule,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import WindowedRecorder
from repro.obs.tracing import Tracer

from tests.obs.test_recorder import make_loop


def engine_for(rule: AlertRule, **kwargs) -> AlertEngine:
    return AlertEngine(rules=[rule], **kwargs)


class TestLoopedLossShareRule:
    def test_fires_on_closed_minute_over_threshold(self):
        recorder = WindowedRecorder()
        recorder.observe_records(10.0, 100)
        recorder.observe_loop(make_loop(start=10.0, replicas=15))
        engine = engine_for(looped_loss_share_rule(0.09))
        fired = engine.evaluate(recorder, now=65.0)
        assert [a.key for a in fired] == ["minute:0"]
        assert fired[0].severity == "critical"
        assert fired[0].value == pytest.approx(0.15)
        assert fired[0].threshold == 0.09

    def test_open_minute_never_fires(self):
        recorder = WindowedRecorder()
        recorder.observe_records(10.0, 100)
        recorder.observe_loop(make_loop(start=10.0, replicas=50))
        engine = engine_for(looped_loss_share_rule())
        assert engine.evaluate(recorder, now=30.0) == []

    def test_below_threshold_holds(self):
        recorder = WindowedRecorder()
        recorder.observe_records(10.0, 100)
        recorder.observe_loop(make_loop(start=10.0, replicas=5))
        engine = engine_for(looped_loss_share_rule(0.09))
        assert engine.evaluate(recorder, now=65.0) == []

    def test_idle_minute_never_divides(self):
        recorder = WindowedRecorder()
        # A loop banked into a minute with zero total records: the
        # share is undefined, not infinite — no fire, no crash.
        recorder.observe_loop(make_loop(start=10.0, replicas=5))
        recorder.observe_records(70.0, 1)
        engine = engine_for(looped_loss_share_rule())
        assert engine.evaluate(recorder, now=130.0) == []


class TestLoopDurationTailRule:
    def test_fires_per_loop_over_tail(self):
        recorder = WindowedRecorder()
        recorder.observe_loop(make_loop(start=5.0, replicas=4,
                                        spacing=5.0))  # 15 s loop
        recorder.observe_loop(make_loop(start=40.0, replicas=4,
                                        spacing=0.1,
                                        prefix="203.0.113.0/24"))
        engine = engine_for(loop_duration_tail_rule(10.0))
        fired = engine.evaluate(recorder, now=60.0)
        assert [a.key for a in fired] == ["192.0.2.0/24@5.000"]
        assert fired[0].value == pytest.approx(15.0)


class TestTotalVariation:
    def test_identical_is_zero(self):
        assert total_variation({2: 0.5, 3: 0.5}, {2: 0.5, 3: 0.5}) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation({2: 1.0}, {9: 1.0}) == pytest.approx(1.0)

    def test_partial_overlap(self):
        assert total_variation(
            {2: 0.6, 3: 0.4}, {2: 0.4, 3: 0.6}
        ) == pytest.approx(0.2)


class TestTtlDeltaShiftRule:
    def test_holds_below_min_loops(self):
        recorder = WindowedRecorder()
        recorder.observe_loop(make_loop(start=5.0, ttl_delta=9))
        recorder.observe_records(10.0, 1)
        engine = engine_for(ttl_delta_shift_rule(min_loops=5))
        assert engine.evaluate(recorder, now=70.0) == []

    def test_fires_on_drift(self):
        recorder = WindowedRecorder()
        for i in range(6):
            recorder.observe_loop(
                make_loop(start=5.0 + i, ttl_delta=9)
            )
        recorder.observe_records(10.0, 1)
        engine = engine_for(ttl_delta_shift_rule(min_loops=5))
        fired = engine.evaluate(recorder, now=70.0)
        assert [a.key for a in fired] == ["window:0"]
        assert fired[0].value == pytest.approx(1.0)  # fully disjoint

    def test_baseline_match_holds(self):
        recorder = WindowedRecorder()
        # 62% delta-2, 28% delta-3, ... — exactly the Fig. 2 baseline.
        for delta, count in ((2, 62), (3, 28), (4, 6), (5, 4)):
            for i in range(count):
                recorder.observe_loop(
                    make_loop(start=5.0 + i * 0.01, ttl_delta=delta)
                )
        recorder.observe_records(10.0, 1)
        engine = engine_for(ttl_delta_shift_rule())
        assert engine.evaluate(recorder, now=70.0) == []


class TestReplicaRateSpikeRule:
    def _recorder(self, per_minute: list[int]) -> WindowedRecorder:
        recorder = WindowedRecorder()
        for minute, replicas in enumerate(per_minute):
            recorder.observe_records(minute * 60.0 + 1.0, 100)
            if replicas:
                recorder.observe_loop(
                    make_loop(start=minute * 60.0 + 2.0,
                              replicas=replicas, spacing=0.01)
                )
        return recorder

    def test_fires_on_spike(self):
        recorder = self._recorder([5, 5, 5, 80])
        engine = engine_for(replica_rate_spike_rule(factor=4.0))
        fired = engine.evaluate(recorder, now=250.0)
        assert [a.key for a in fired] == ["minute:3"]
        assert fired[0].value == 80.0

    def test_holds_without_history(self):
        recorder = self._recorder([80])
        engine = engine_for(replica_rate_spike_rule())
        assert engine.evaluate(recorder, now=70.0) == []

    def test_holds_below_min_replicas(self):
        recorder = self._recorder([2, 2, 2, 10])
        engine = engine_for(replica_rate_spike_rule(min_replicas=20.0))
        assert engine.evaluate(recorder, now=250.0) == []


class TestAlertEngine:
    def _loss_recorder(self) -> WindowedRecorder:
        recorder = WindowedRecorder()
        recorder.observe_records(10.0, 100)
        recorder.observe_loop(make_loop(start=10.0, replicas=15))
        return recorder

    def test_infinite_cooldown_fires_once_per_key(self):
        recorder = self._loss_recorder()
        engine = engine_for(looped_loss_share_rule())
        assert len(engine.evaluate(recorder, now=65.0)) == 1
        # Same closed minute re-evaluated much later: still deduped.
        assert engine.evaluate(recorder, now=10_000.0) == []
        assert engine.fired_total == 1

    def test_finite_cooldown_refires_after_expiry(self):
        recorder = self._loss_recorder()
        rule = looped_loss_share_rule()
        recurring = AlertRule(name=rule.name, description=rule.description,
                              check=rule.check, severity=rule.severity,
                              cooldown=100.0)
        engine = engine_for(recurring)
        assert len(engine.evaluate(recorder, now=65.0)) == 1
        assert engine.evaluate(recorder, now=120.0) == []  # within
        assert len(engine.evaluate(recorder, now=200.0)) == 1  # expired
        assert engine.fired_total == 2

    def test_distinct_keys_fire_independently(self):
        recorder = self._loss_recorder()
        recorder.observe_records(70.0, 100)
        recorder.observe_loop(make_loop(start=70.0, replicas=20))
        engine = engine_for(looped_loss_share_rule())
        fired = engine.evaluate(recorder, now=125.0)
        assert sorted(a.key for a in fired) == ["minute:0", "minute:1"]

    def test_history_is_bounded(self):
        def always(recorder, now):
            yield Finding(key=f"k{int(now)}", value=1.0, threshold=0.0,
                          message="m")

        rule = AlertRule(name="always", description="", check=always)
        engine = engine_for(rule, max_history=3)
        recorder = WindowedRecorder()
        for t in range(5):
            engine.evaluate(recorder, now=float(t))
        assert engine.fired_total == 5
        assert len(engine.history) == 3
        assert engine.history[0].key == "k2"

    def test_fired_alerts_log_and_trace(self):
        recorder = self._loss_recorder()
        tracer = Tracer()
        engine = engine_for(looped_loss_share_rule(), tracer=tracer)
        # A direct capture handler: caplog relies on propagation to the
        # root logger, which CLI tests may have turned off for the
        # "repro" hierarchy earlier in the session.
        messages: list[str] = []

        class Capture(logging.Handler):
            def emit(self, record):
                messages.append(record.getMessage())

        logger = logging.getLogger("repro.alerts")
        handler = Capture(level=logging.WARNING)
        logger.addHandler(handler)
        try:
            engine.evaluate(recorder, now=65.0)
        finally:
            logger.removeHandler(handler)
        assert any("looped_loss_share" in m for m in messages)
        events = [r for r in tracer.records if r["type"] == "event"
                  and r["name"] == "alert"]
        assert len(events) == 1
        assert events[0]["attrs"]["rule"] == "looped_loss_share"
        assert events[0]["attrs"]["key"] == "minute:0"

    def test_metrics_publish_totals_and_per_rule(self):
        recorder = self._loss_recorder()
        engine = AlertEngine()
        registry = MetricsRegistry(enabled=True)
        engine.register_metrics(registry)
        engine.evaluate(recorder, now=65.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["alerts_fired_total"] == 1
        assert snapshot["counters"][
            'alerts_fired_by_rule_total{rule="looped_loss_share"}'
        ] == 1
        assert snapshot["counters"][
            'alerts_fired_by_rule_total{rule="loop_duration_tail"}'
        ] == 0

    def test_snapshot_round_trips_json(self):
        import json

        engine = engine_for(looped_loss_share_rule())
        engine.evaluate(self._loss_recorder(), now=65.0)
        snapshot = engine.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot[0]["rule"] == "looped_loss_share"

    def test_default_rules_names(self):
        assert [rule.name for rule in default_rules()] == [
            "looped_loss_share",
            "loop_duration_tail",
            "ttl_delta_shift",
            "replica_rate_spike",
        ]


def switched_rule(breaching: list[bool]) -> AlertRule:
    """A rule driven by a mutable schedule: ``breaching[0]`` decides
    whether the next evaluation yields a finding."""

    def check(recorder, now):
        if breaching.pop(0):
            yield Finding(key=f"t:{now}", value=1.0, threshold=0.5,
                          message="synthetic breach")

    return AlertRule(name="switched", description="test rule",
                     check=check)


class TestHysteresis:
    def test_config_validation(self):
        from repro.obs.alerts import HysteresisConfig

        with pytest.raises(ValueError, match="fire_after"):
            HysteresisConfig(fire_after=0)
        with pytest.raises(ValueError, match="clear_after"):
            HysteresisConfig(clear_after=0)

    def test_fires_on_exactly_the_nth_consecutive_breach(self):
        from repro.obs.alerts import HysteresisConfig

        schedule = [True, True, True, True]
        engine = engine_for(switched_rule(schedule),
                            hysteresis=HysteresisConfig(fire_after=3))
        recorder = WindowedRecorder()
        assert engine.evaluate(recorder, now=1.0) == []
        assert engine.evaluate(recorder, now=2.0) == []
        fired = engine.evaluate(recorder, now=3.0)
        assert [a.rule for a in fired] == ["switched"]
        # Still breaching: active rules do not re-fire.
        assert engine.evaluate(recorder, now=4.0) == []
        assert engine.fired_total == 1
        assert [entry["rule"] for entry in engine.active_rules()] == [
            "switched"
        ]

    def test_single_clean_evaluation_resets_an_unfired_streak(self):
        from repro.obs.alerts import HysteresisConfig

        schedule = [True, True, False, True, True, True]
        engine = engine_for(switched_rule(schedule),
                            hysteresis=HysteresisConfig(fire_after=3))
        recorder = WindowedRecorder()
        for now in (1.0, 2.0, 3.0):  # two breaches, then clean
            assert engine.evaluate(recorder, now=now) == []
        # The streak restarted: two more breaches are not enough...
        assert engine.evaluate(recorder, now=4.0) == []
        assert engine.evaluate(recorder, now=5.0) == []
        # ...the third consecutive one fires.
        assert len(engine.evaluate(recorder, now=6.0)) == 1

    def test_clears_after_exactly_the_configured_recoveries(self):
        from repro.obs.alerts import HysteresisConfig

        schedule = [True, False, False, True]
        engine = engine_for(
            switched_rule(schedule),
            hysteresis=HysteresisConfig(fire_after=1, clear_after=2),
        )
        recorder = WindowedRecorder()
        assert len(engine.evaluate(recorder, now=1.0)) == 1
        engine.evaluate(recorder, now=2.0)   # first clean: still active
        assert engine.active_rules()
        assert engine.cleared_total == 0
        engine.evaluate(recorder, now=3.0)   # second clean: clears
        assert engine.active_rules() == []
        assert engine.cleared_total == 1
        # A fresh breach re-arms from zero and (fire_after=1) re-fires.
        assert len(engine.evaluate(recorder, now=4.0)) == 1
        assert engine.fired_total == 2

    def test_recovery_streak_resets_on_breach(self):
        from repro.obs.alerts import HysteresisConfig

        schedule = [True, False, True, False, False]
        engine = engine_for(
            switched_rule(schedule),
            hysteresis=HysteresisConfig(fire_after=1, clear_after=2),
        )
        recorder = WindowedRecorder()
        engine.evaluate(recorder, now=1.0)   # fires
        engine.evaluate(recorder, now=2.0)   # clean 1/2
        engine.evaluate(recorder, now=3.0)   # breach: recovery resets
        engine.evaluate(recorder, now=4.0)   # clean 1/2 again
        assert engine.active_rules()
        engine.evaluate(recorder, now=5.0)   # clean 2/2: clears
        assert engine.active_rules() == []

    def test_cleared_event_reaches_tracer_and_metrics(self):
        from repro.obs.alerts import HysteresisConfig

        schedule = [True, False]
        tracer = Tracer()
        engine = engine_for(
            switched_rule(schedule), tracer=tracer,
            hysteresis=HysteresisConfig(fire_after=1, clear_after=1),
        )
        registry = MetricsRegistry(enabled=True)
        engine.register_metrics(registry)
        recorder = WindowedRecorder()
        engine.evaluate(recorder, now=1.0)
        engine.evaluate(recorder, now=2.0)
        events = [r["name"] for r in tracer.records
                  if r["type"] == "event"]
        assert events == ["alert", "alert_cleared"]
        snapshot = registry.snapshot()
        assert snapshot["counters"]["alerts_cleared_total"] == 1

    def test_without_hysteresis_dedup_is_unchanged(self):
        # The legacy engine path: one finding key fires exactly once.
        recorder = WindowedRecorder()
        recorder.observe_records(10.0, 100)
        recorder.observe_loop(make_loop(start=10.0, replicas=15))
        engine = engine_for(looped_loss_share_rule(0.09))
        assert len(engine.evaluate(recorder, now=65.0)) == 1
        assert engine.evaluate(recorder, now=66.0) == []
        assert engine.active_rules() == []
