"""Tests for the passive link monitor's finalize path."""

from repro.net.trace import TraceRecord


def _record(timestamp: float) -> TraceRecord:
    data = bytes([0x45]) + bytes(19)
    return TraceRecord(timestamp=timestamp, data=data, wire_length=40)


class _FakeEngine:
    """Just enough ForwardingEngine surface for LinkMonitor."""

    def __init__(self):
        self.taps = []
        self.topology = self

    def link_between(self, a, b):
        return (a, b)

    def add_tap(self, a, b, callback):
        self.taps.append(callback)


def _monitor():
    from repro.capture.monitor import LinkMonitor

    engine = _FakeEngine()
    monitor = LinkMonitor(engine, "a", "b")
    return monitor, engine.taps[0]


class TestFinalize:
    def test_sorts_out_of_order_pending(self):
        monitor, _ = _monitor()
        for t in (3.0, 1.0, 2.0):
            monitor._pending.append(_record(t))
        trace = monitor.finalize()
        assert [r.timestamp for r in trace.records] == [1.0, 2.0, 3.0]

    def test_repeated_finalize_is_noop(self):
        monitor, _ = _monitor()
        monitor._pending.extend(_record(t) for t in (2.0, 1.0))
        trace = monitor.finalize()
        records_before = list(trace.records)
        assert monitor.finalize() is trace
        assert trace.records == records_before

    def test_appends_when_batch_is_later_than_trace(self):
        monitor, _ = _monitor()
        monitor._pending.extend(_record(t) for t in (1.0, 2.0))
        monitor.finalize()
        monitor._pending.extend(_record(t) for t in (4.0, 3.0))
        trace = monitor.finalize()
        assert [r.timestamp for r in trace.records] == [1.0, 2.0, 3.0, 4.0]

    def test_merges_interleaved_batch(self):
        monitor, _ = _monitor()
        monitor._pending.extend(_record(t) for t in (1.0, 3.0, 5.0))
        monitor.finalize()
        monitor._pending.extend(_record(t) for t in (4.0, 2.0, 0.5))
        trace = monitor.finalize()
        assert [r.timestamp for r in trace.records] == [
            0.5, 1.0, 2.0, 3.0, 4.0, 5.0
        ]

    def test_packets_seen_counts_pending_and_final(self):
        monitor, _ = _monitor()
        monitor._pending.extend(_record(t) for t in (1.0, 2.0))
        assert monitor.packets_seen == 2
        monitor.finalize()
        assert monitor.packets_seen == 2

    def test_finalize_empty_monitor(self):
        monitor, _ = _monitor()
        assert monitor.finalize().records == []


def _marked(timestamp: float, marker: int) -> TraceRecord:
    data = bytes([0x45]) + bytes(18) + bytes([marker])
    return TraceRecord(timestamp=timestamp, data=data, wire_length=40)


def _array(directions):
    from repro.capture.multimonitor import MonitorArray

    return MonitorArray(_FakeEngine(), directions)


class TestFinalizeMerged:
    DIRECTIONS = [("a", "b"), ("c", "d")]

    def _fill(self, array):
        # Identical timestamps across links, plus a within-link tie.
        array.monitor(("c", "d"))._pending.extend([
            _marked(1.0, 0xCD), _marked(2.0, 0xC1), _marked(2.0, 0xC2),
        ])
        array.monitor(("a", "b"))._pending.extend([
            _marked(1.0, 0xAB), _marked(3.0, 0xA1),
        ])

    def test_merge_is_time_ordered(self):
        array = _array(self.DIRECTIONS)
        self._fill(array)
        merged = array.finalize_merged()
        assert [r.timestamp for r in merged.records] == [
            1.0, 1.0, 2.0, 2.0, 3.0
        ]

    def test_ties_break_by_link_id_not_construction_order(self):
        # Same captures, opposite constructor order: the merged trace
        # must be identical, with t=1.0 ties ordered a->b before c->d.
        front = _array(self.DIRECTIONS)
        back = _array(list(reversed(self.DIRECTIONS)))
        self._fill(front)
        self._fill(back)
        want = [0xAB, 0xCD, 0xC1, 0xC2, 0xA1]
        for array in (front, back):
            merged = array.finalize_merged()
            assert [r.data[-1] for r in merged.records] == want

    def test_within_link_ties_keep_capture_order(self):
        array = _array(self.DIRECTIONS)
        array.monitor(("c", "d"))._pending.extend(
            _marked(5.0, marker) for marker in (1, 2, 3)
        )
        merged = array.finalize_merged()
        assert [r.data[-1] for r in merged.records] == [1, 2, 3]
