"""Tests for the passive link monitor's finalize path."""

from repro.net.trace import TraceRecord


def _record(timestamp: float) -> TraceRecord:
    data = bytes([0x45]) + bytes(19)
    return TraceRecord(timestamp=timestamp, data=data, wire_length=40)


class _FakeEngine:
    """Just enough ForwardingEngine surface for LinkMonitor."""

    def __init__(self):
        self.taps = []
        self.topology = self

    def link_between(self, a, b):
        return (a, b)

    def add_tap(self, a, b, callback):
        self.taps.append(callback)


def _monitor():
    from repro.capture.monitor import LinkMonitor

    engine = _FakeEngine()
    monitor = LinkMonitor(engine, "a", "b")
    return monitor, engine.taps[0]


class TestFinalize:
    def test_sorts_out_of_order_pending(self):
        monitor, _ = _monitor()
        for t in (3.0, 1.0, 2.0):
            monitor._pending.append(_record(t))
        trace = monitor.finalize()
        assert [r.timestamp for r in trace.records] == [1.0, 2.0, 3.0]

    def test_repeated_finalize_is_noop(self):
        monitor, _ = _monitor()
        monitor._pending.extend(_record(t) for t in (2.0, 1.0))
        trace = monitor.finalize()
        records_before = list(trace.records)
        assert monitor.finalize() is trace
        assert trace.records == records_before

    def test_appends_when_batch_is_later_than_trace(self):
        monitor, _ = _monitor()
        monitor._pending.extend(_record(t) for t in (1.0, 2.0))
        monitor.finalize()
        monitor._pending.extend(_record(t) for t in (4.0, 3.0))
        trace = monitor.finalize()
        assert [r.timestamp for r in trace.records] == [1.0, 2.0, 3.0, 4.0]

    def test_merges_interleaved_batch(self):
        monitor, _ = _monitor()
        monitor._pending.extend(_record(t) for t in (1.0, 3.0, 5.0))
        monitor.finalize()
        monitor._pending.extend(_record(t) for t in (4.0, 2.0, 0.5))
        trace = monitor.finalize()
        assert [r.timestamp for r in trace.records] == [
            0.5, 1.0, 2.0, 3.0, 4.0, 5.0
        ]

    def test_packets_seen_counts_pending_and_final(self):
        monitor, _ = _monitor()
        monitor._pending.extend(_record(t) for t in (1.0, 2.0))
        assert monitor.packets_seen == 2
        monitor.finalize()
        assert monitor.packets_seen == 2

    def test_finalize_empty_monitor(self):
        monitor, _ = _monitor()
        assert monitor.finalize().records == []
