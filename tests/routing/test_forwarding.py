"""Tests for the forwarding engine: delivery, TTL, queueing, taps."""

import random

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import (
    ICMP_TIME_EXCEEDED,
    IPPROTO_ICMP,
    IPv4Header,
    Packet,
    UdpHeader,
)
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.failures import FailureSchedule
from repro.routing.forwarding import ForwardingEngine, PacketFate
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import line_topology, ring_topology


PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def _packet(ttl=64, ident=1, dst="192.0.2.50", payload=b"data"):
    ip = IPv4Header(src=IPv4Address.parse("10.1.1.1"),
                    dst=IPv4Address.parse(dst), ttl=ttl,
                    identification=ident)
    return Packet.build(ip, UdpHeader(src_port=1000, dst_port=53), payload)


def _stack(topo, egresses, seed=1, **engine_kwargs):
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(seed))
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(seed + 1))
    for egress in egresses:
        bgp.originate(PREFIX, egress)
    igp.start()
    bgp.start()
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(seed + 2), **engine_kwargs)
    return scheduler, igp, bgp, engine


class TestDelivery:
    def test_delivers_along_shortest_path(self):
        topo = line_topology(4)
        scheduler, _, _, engine = _stack(topo, ["R3"])
        audit = engine.inject(_packet(), "R0")
        scheduler.run(until=10.0)
        assert audit.fate is PacketFate.DELIVERED
        assert audit.fate_router == "R3"
        assert audit.hops == 3
        assert not audit.looped

    def test_delivery_at_ingress_when_egress_is_local(self):
        topo = line_topology(2)
        scheduler, _, _, engine = _stack(topo, ["R0"])
        audit = engine.inject(_packet(), "R0")
        scheduler.run(until=10.0)
        assert audit.fate is PacketFate.DELIVERED
        assert audit.hops == 0

    def test_transit_time_accumulates_delays(self):
        topo = line_topology(3, propagation_delay=0.010)
        scheduler, _, _, engine = _stack(topo, ["R2"])
        audit = engine.inject(_packet(), "R0")
        scheduler.run(until=10.0)
        assert audit.transit_time >= 0.020  # two propagation delays

    def test_no_route_drop(self):
        topo = line_topology(2)
        scheduler, _, _, engine = _stack(topo, ["R1"])
        audit = engine.inject(_packet(dst="198.51.100.1"), "R0")
        scheduler.run(until=10.0)
        assert audit.fate is PacketFate.NO_ROUTE

    def test_delivery_listener_fired(self):
        topo = line_topology(2)
        scheduler, _, _, engine = _stack(topo, ["R1"])
        seen = []
        engine.add_delivery_listener(
            lambda t, p, r: seen.append((p.ip.dst, r))
        )
        engine.inject(_packet(), "R0")
        scheduler.run(until=10.0)
        assert seen == [(IPv4Address.parse("192.0.2.50"), "R1")]


class TestTtl:
    def test_ttl_expiry_on_long_path(self):
        topo = line_topology(6)
        scheduler, _, _, engine = _stack(topo, ["R5"])
        audit = engine.inject(_packet(ttl=3), "R0")
        scheduler.run(until=10.0)
        assert audit.fate is PacketFate.TTL_EXPIRED
        assert audit.fate_router == "R2"

    def test_ttl_one_cannot_be_forwarded(self):
        topo = line_topology(3)
        scheduler, _, _, engine = _stack(topo, ["R2"])
        audit = engine.inject(_packet(ttl=1), "R0")
        scheduler.run(until=10.0)
        assert audit.fate is PacketFate.TTL_EXPIRED
        assert audit.fate_router == "R0"

    def test_time_exceeded_reply_generated(self):
        topo = line_topology(6)
        scheduler, _, _, engine = _stack(
            topo, ["R5"], icmp_time_exceeded_probability=1.0
        )
        engine.inject(_packet(ttl=3), "R0")
        scheduler.run(until=10.0)
        icmp_audits = [
            audit for audit in engine.audits
            if audit.ingress == "R2" and audit.packet_id != 0
        ]
        assert len(icmp_audits) == 1

    def test_time_exceeded_can_be_rate_limited(self):
        topo = line_topology(6)
        scheduler, _, _, engine = _stack(
            topo, ["R5"], icmp_time_exceeded_probability=0.0
        )
        engine.inject(_packet(ttl=3), "R0")
        scheduler.run(until=10.0)
        assert engine.packets_injected == 1  # no ICMP follow-up


class TestTaps:
    def test_tap_sees_decremented_ttl_and_valid_checksum(self):
        topo = line_topology(4)
        scheduler, _, _, engine = _stack(topo, ["R3"])
        captured = []
        engine.add_tap("R1", "R2", lambda t, p: captured.append(p))
        engine.inject(_packet(ttl=64), "R0")
        scheduler.run(until=10.0)
        assert len(captured) == 1
        packet = captured[0]
        assert packet.ip.ttl == 62  # two routers decremented before R1->R2
        wire = packet.pack()
        from repro.net.checksum import internet_checksum

        assert internet_checksum(wire[:20]) == 0

    def test_tap_is_directional(self):
        topo = line_topology(3)
        scheduler, _, _, engine = _stack(topo, ["R2"])
        forward, backward = [], []
        engine.add_tap("R0", "R1", lambda t, p: forward.append(p))
        engine.add_tap("R1", "R0", lambda t, p: backward.append(p))
        engine.inject(_packet(), "R0")
        scheduler.run(until=10.0)
        assert len(forward) == 1
        assert len(backward) == 0

    def test_tap_timestamps_are_departure_times(self):
        topo = line_topology(3, propagation_delay=0.010)
        scheduler, _, _, engine = _stack(topo, ["R2"])
        stamps = []
        engine.add_tap("R1", "R2", lambda t, p: stamps.append(t))
        engine.inject(_packet(), "R0")
        scheduler.run(until=10.0)
        assert stamps and stamps[0] >= 0.010  # after first link crossing


class TestQueueing:
    def test_fifo_serialization_delay(self):
        # Tiny capacity: the second packet queues behind the first.
        topo = line_topology(2, capacity_bps=8000.0, max_queue_delay=10.0)
        scheduler, _, _, engine = _stack(topo, ["R1"])
        a1 = engine.inject(_packet(ident=1, payload=b"x" * 100), "R0")
        a2 = engine.inject(_packet(ident=2, payload=b"x" * 100), "R0")
        scheduler.run(until=60.0)
        assert a1.fate is PacketFate.DELIVERED
        assert a2.fate is PacketFate.DELIVERED
        assert a2.fate_time > a1.fate_time

    def test_queue_overflow_drops(self):
        topo = line_topology(2, capacity_bps=800.0, max_queue_delay=0.5)
        scheduler, _, _, engine = _stack(topo, ["R1"])
        audits = [
            engine.inject(_packet(ident=i, payload=b"x" * 200), "R0")
            for i in range(20)
        ]
        scheduler.run(until=600.0)
        fates = {audit.fate for audit in audits}
        assert PacketFate.QUEUE_DROP in fates
        assert PacketFate.DELIVERED in fates


class TestFailuresAndLoops:
    def test_black_hole_before_detection(self):
        topo = line_topology(3)
        scheduler, igp, _, engine = _stack(topo, ["R2"])
        link = topo.link_between("R1", "R2")
        link.up = False  # physically down, IGP not yet told
        audit = engine.inject(_packet(), "R0")
        scheduler.run(until=10.0)
        assert audit.fate is PacketFate.LINK_DOWN

    def test_loop_emerges_during_convergence(self):
        topo = ring_topology(5, propagation_delay=0.002)
        scheduler, igp, _, engine = _stack(topo, ["R0"])
        FailureSchedule().fail(1.0, "R0--R4").apply(topo, scheduler, igp)
        audits = []
        t = 0.95
        for i in range(200):
            engine.inject_at(t, _packet(ident=i, ttl=60), "R4")
            t += 0.01
        scheduler.run(until=30.0)
        looped = [a for a in engine.audits if a.looped]
        assert looped, "no transient loop during convergence"

    def test_looped_packets_counted_in_delay_stats(self):
        topo = ring_topology(5, propagation_delay=0.002)
        scheduler, igp, _, engine = _stack(topo, ["R0"])
        FailureSchedule().fail(1.0, "R0--R4").apply(topo, scheduler, igp)
        t = 0.95
        for i in range(300):
            engine.inject_at(t, _packet(ident=i, ttl=200), "R4")
            t += 0.005
        scheduler.run(until=30.0)
        # With TTL 200 some packets survive the loop and escape.
        escaped = engine.looped_delivered_delays
        if escaped:  # loop length/timing dependent but usually true
            delay, hops = escaped[0]
            assert delay > 0
            assert hops > 4


class TestStats:
    def test_fate_counts_sum_to_injected(self):
        topo = line_topology(3)
        scheduler, _, _, engine = _stack(topo, ["R2"])
        for i in range(10):
            engine.inject(_packet(ident=i), "R0")
        scheduler.run(until=30.0)
        total = sum(
            count for fate, count in engine.fate_counts.items()
            if fate is not PacketFate.IN_FLIGHT
        )
        assert total == engine.packets_injected == 10

    def test_loss_fraction(self):
        topo = line_topology(2)
        scheduler, _, _, engine = _stack(topo, ["R1"])
        engine.inject(_packet(ident=1), "R0")
        engine.inject(_packet(ident=2, dst="198.51.100.1"), "R0")
        scheduler.run(until=10.0)
        assert engine.loss_fraction(PacketFate.NO_ROUTE) == pytest.approx(0.5)

    def test_keep_audits_false_keeps_counters(self):
        topo = line_topology(3)
        scheduler, _, _, engine = _stack(topo, ["R2"], keep_audits=False)
        for i in range(5):
            engine.inject(_packet(ident=i), "R0")
        scheduler.run(until=10.0)
        assert engine.audits == []
        assert engine.fate_counts[PacketFate.DELIVERED] == 5

    def test_mean_normal_delay(self):
        topo = line_topology(3, propagation_delay=0.005)
        scheduler, _, _, engine = _stack(topo, ["R2"])
        engine.inject(_packet(), "R0")
        scheduler.run(until=10.0)
        assert engine.mean_normal_delay() >= 0.010
