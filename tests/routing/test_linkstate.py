"""Tests for the link-state IGP: convergence, loops, timer behaviour."""

import random

import pytest

from repro.routing.events import EventScheduler
from repro.routing.linkstate import LinkStateProtocol, LinkStateTimers
from repro.routing.topology import TopologyError, line_topology, ring_topology


def _build(topo, seed=1, timers=None):
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, timers=timers,
                            rng=random.Random(seed))
    igp.start()
    return scheduler, igp


class TestSteadyState:
    def test_starts_converged(self):
        topo = ring_topology(5)
        _, igp = _build(topo)
        assert igp.is_converged()

    def test_initial_next_hops_match_oracle(self):
        topo = ring_topology(6)
        _, igp = _build(topo)
        for source in topo.routers:
            oracle = topo.shortest_paths(source)
            for dest, (_, first_hop) in oracle.items():
                if first_hop is not None:
                    assert igp.next_hop(source, dest) == first_hop

    def test_distance_to_self_is_zero(self):
        topo = line_topology(3)
        _, igp = _build(topo)
        assert igp.distance("R0", "R0") == 0
        assert igp.next_hop("R0", "R0") is None

    def test_unknown_router_rejected(self):
        topo = line_topology(2)
        _, igp = _build(topo)
        with pytest.raises(TopologyError):
            igp.next_hop("ghost", "R0")


class TestFailureConvergence:
    def test_reconverges_after_failure(self):
        topo = ring_topology(5)
        scheduler, igp = _build(topo)
        link = topo.link_between("R0", "R1")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=60.0)
        assert igp.is_converged()
        # R0 now reaches R1 the long way.
        assert igp.next_hop("R0", "R1") == "R4"
        assert igp.distance("R0", "R1") == 4

    def test_reconverges_after_repair(self):
        topo = ring_topology(5)
        scheduler, igp = _build(topo)
        link = topo.link_between("R0", "R1")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=60.0)
        link.up = True
        igp.notify_link_up(link)
        scheduler.run(until=120.0)
        assert igp.is_converged()
        assert igp.next_hop("R0", "R1") == "R1"

    def test_transient_inconsistency_window_exists(self):
        """During convergence there must be a moment when two adjacent
        routers' next hops point at each other — a transient loop."""
        topo = ring_topology(5)
        timers = LinkStateTimers(fib_update_delay=0.3, fib_update_jitter=1.0)
        scheduler, igp = _build(topo, seed=3, timers=timers)
        link = topo.link_between("R0", "R4")
        link.up = False
        igp.notify_link_down(link)
        loop_seen = False
        for _ in range(4000):
            scheduler.run(max_events=1)
            for a, b in (("R4", "R3"), ("R3", "R2"), ("R2", "R1")):
                # destination R0: do a and b point at each other?
                if (igp.next_hop(a, "R0") == b
                        and igp.next_hop(b, "R0") == a):
                    loop_seen = True
            if scheduler.pending == 0:
                break
        assert loop_seen
        assert igp.is_converged()

    def test_partition_leaves_no_route(self):
        topo = line_topology(3)
        scheduler, igp = _build(topo)
        link = topo.link_between("R1", "R2")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=60.0)
        assert igp.next_hop("R0", "R2") is None
        assert igp.distance("R0", "R2") is None

    def test_fib_update_counts_increase(self):
        topo = ring_topology(4)
        scheduler, igp = _build(topo)
        before = igp.fib_update_count("R2")
        link = topo.link_between("R0", "R1")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=60.0)
        assert igp.fib_update_count("R2") > before

    def test_duplicate_notification_is_noop(self):
        topo = ring_topology(4)
        scheduler, igp = _build(topo)
        link = topo.link_between("R0", "R1")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=60.0)
        flooded = igp.lsas_flooded
        igp.notify_link_down(link)  # already down: no new LSAs
        scheduler.run(until=120.0)
        assert igp.lsas_flooded == flooded


class TestHooks:
    def test_fib_update_callback_fired(self):
        topo = ring_topology(4)
        scheduler, igp = _build(topo)
        updates = []
        igp.on_fib_update(lambda router, now: updates.append((router, now)))
        link = topo.link_between("R0", "R1")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=60.0)
        routers = {router for router, _ in updates}
        assert routers == set(topo.routers)

    def test_spf_damping_coalesces_lsas(self):
        """Two nearly simultaneous failures yield at most a few SPF runs
        per router, not one per LSA received."""
        topo = ring_topology(8)
        scheduler, igp = _build(topo)
        for pair in (("R0", "R1"), ("R4", "R5")):
            link = topo.link_between(*pair)
            link.up = False
            igp.notify_link_down(link)
        scheduler.run(until=60.0)
        assert igp.spf_runs <= 3 * len(topo.routers)


class TestTimers:
    def test_sampling_within_bounds(self):
        timers = LinkStateTimers()
        rng = random.Random(0)
        for _ in range(100):
            d = timers.sample_detection(rng)
            assert timers.detection_delay <= d <= (
                timers.detection_delay + timers.detection_jitter
            )
            f = timers.sample_fib(rng)
            assert timers.fib_update_delay <= f <= (
                timers.fib_update_delay + timers.fib_update_jitter
            )
