"""Tests for topology JSON serialization."""

import json
import random

import pytest

from repro.routing.topofile import (
    TopologyFileError,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.routing.topology import backbone_topology, ring_topology


class TestFromDict:
    def test_minimal(self):
        topo = topology_from_dict({
            "routers": ["a", "b"],
            "links": [{"a": "a", "b": "b"}],
        })
        assert topo.routers == ["a", "b"]
        assert topo.link_between("a", "b").cost == 1

    def test_full_link_attributes(self):
        topo = topology_from_dict({
            "routers": ["a", "b"],
            "links": [{
                "a": "a", "b": "b", "cost": 3, "cost_ba": 7,
                "propagation_delay": 0.009, "capacity_bps": 1e9,
                "max_queue_delay": 0.1, "up": False,
            }],
        })
        link = topo.link_between("a", "b")
        assert link.cost_from("a") == 3
        assert link.cost_from("b") == 7
        assert link.propagation_delay == pytest.approx(0.009)
        assert not link.up

    def test_explicit_loopback(self):
        topo = topology_from_dict({
            "routers": [{"name": "a", "loopback": "10.1.1.1"}, "b"],
            "links": [],
        })
        assert str(topo.loopback("a")) == "10.1.1.1"

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {"routers": [], "links": []},
            {"routers": ["a"], "links": [{"a": "a"}]},
            {"routers": ["a"], "links": "nope"},
            {"routers": [{"noname": 1}], "links": []},
            {"routers": ["a", "b"],
             "links": [{"a": "a", "b": "ghost"}]},
            {"routers": ["a", "b"],
             "links": [{"a": "a", "b": "b", "cost": 0}]},
        ],
    )
    def test_malformed_rejected(self, payload):
        with pytest.raises(TopologyFileError):
            topology_from_dict(payload)


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [
        lambda: ring_topology(5),
        lambda: backbone_topology(pops=8, rng=random.Random(2)),
    ])
    def test_dict_round_trip(self, builder):
        original = builder()
        rebuilt = topology_from_dict(topology_to_dict(original))
        assert rebuilt.routers == original.routers
        assert {l.name for l in rebuilt.links} == {
            l.name for l in original.links
        }
        for link in original.links:
            twin = rebuilt.link_between(link.a, link.b)
            assert twin.cost_from(link.a) == link.cost_from(link.a)
            assert twin.cost_from(link.b) == link.cost_from(link.b)
        # Shortest paths agree: the forwarding-relevant content survives.
        for source in original.routers:
            assert original.shortest_paths(source) == (
                rebuilt.shortest_paths(source)
            )

    def test_file_round_trip(self, tmp_path):
        original = ring_topology(4)
        path = tmp_path / "topo.json"
        save_topology(original, path)
        loaded = load_topology(path)
        assert loaded.routers == original.routers
        payload = json.loads(path.read_text())
        assert len(payload["links"]) == 4

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TopologyFileError):
            load_topology(path)


class TestUsableInSimulation:
    def test_loaded_topology_runs_the_stack(self, tmp_path):
        from repro.net.addr import IPv4Prefix
        from repro.routing.bgp import BgpProcess
        from repro.routing.events import EventScheduler
        from repro.routing.linkstate import LinkStateProtocol

        path = tmp_path / "topo.json"
        save_topology(ring_topology(5), path)
        topo = load_topology(path)
        scheduler = EventScheduler()
        igp = LinkStateProtocol(topo, scheduler, rng=random.Random(1))
        bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
        bgp.originate(IPv4Prefix.parse("192.0.2.0/24"), "R0")
        igp.start()
        bgp.start()
        assert igp.is_converged()
