"""Tests for ECMP: equal-cost path computation and flow hashing."""

import random
from collections import Counter

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.forwarding import ForwardingEngine, PacketFate, _flow_hash
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import Topology, dijkstra_ecmp

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def _diamond() -> Topology:
    """s -> {m1, m2} -> t with equal costs: a textbook ECMP diamond."""
    topo = Topology()
    for name in ("s", "m1", "m2", "t"):
        topo.add_router(name)
    topo.add_link("s", "m1", cost=1)
    topo.add_link("s", "m2", cost=1)
    topo.add_link("m1", "t", cost=1)
    topo.add_link("m2", "t", cost=1)
    return topo


class TestDijkstraEcmp:
    def test_finds_both_first_hops(self):
        topo = _diamond()
        tree = dijkstra_ecmp(
            "s",
            lambda router: (
                (link.other(router), link.cost_from(router))
                for link in topo.adjacent_links(router)
            ),
            topo.routers,
        )
        distance, hops = tree["t"]
        assert distance == 2
        assert hops == ("m1", "m2")

    def test_source_entry(self):
        topo = _diamond()
        tree = dijkstra_ecmp(
            "s",
            lambda router: (
                (link.other(router), link.cost_from(router))
                for link in topo.adjacent_links(router)
            ),
            topo.routers,
        )
        assert tree["s"] == (0, ())

    def test_single_path_single_hop(self):
        topo = _diamond()
        topo.link_between("s", "m2").cost = 5  # break the tie
        tree = dijkstra_ecmp(
            "s",
            lambda router: (
                (link.other(router), link.cost_from(router))
                for link in topo.adjacent_links(router)
            ),
            topo.routers,
        )
        assert tree["t"] == (2, ("m1",))

    def test_matches_single_path_dijkstra_on_distances(self):
        from repro.routing.topology import backbone_topology, dijkstra

        topo = backbone_topology(pops=8, rng=random.Random(3))

        def edges(router):
            return (
                (link.other(router), link.cost_from(router))
                for link in topo.adjacent_links(router)
            )

        single = dijkstra("pop0", edges, topo.routers)
        multi = dijkstra_ecmp("pop0", edges, topo.routers)
        for node, (distance, first_hop) in single.items():
            assert multi[node][0] == distance
            if first_hop is not None:
                assert first_hop in multi[node][1]


class TestFlowHashing:
    def test_same_flow_same_hash(self):
        ip = IPv4Header(src=IPv4Address.parse("10.0.0.1"),
                        dst=IPv4Address.parse("192.0.2.5"), ttl=64)
        a = Packet.build(ip, UdpHeader(src_port=100, dst_port=200), b"x")
        b = Packet.build(ip, UdpHeader(src_port=100, dst_port=200),
                         b"completely different payload")
        assert _flow_hash(a) == _flow_hash(b)

    def test_different_flows_spread(self):
        rng = random.Random(0)
        hashes = set()
        for _ in range(200):
            ip = IPv4Header(src=IPv4Address(rng.randrange(1 << 32)),
                            dst=IPv4Address.parse("192.0.2.5"), ttl=64)
            packet = Packet.build(
                ip, UdpHeader(src_port=rng.randint(1024, 65000),
                              dst_port=80), b"")
            hashes.add(_flow_hash(packet) % 2)
        assert hashes == {0, 1}  # both ECMP buckets used


class TestEcmpForwarding:
    def _stack(self):
        topo = _diamond()
        scheduler = EventScheduler()
        igp = LinkStateProtocol(topo, scheduler, rng=random.Random(1))
        bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
        bgp.originate(PREFIX, "t")
        igp.start()
        bgp.start()
        engine = ForwardingEngine(topo, scheduler, igp, bgp,
                                  rng=random.Random(3))
        return topo, scheduler, engine

    def test_flows_split_across_paths(self):
        topo, scheduler, engine = self._stack()
        via = Counter()
        engine.add_tap("s", "m1", lambda t, p: via.update(["m1"]))
        engine.add_tap("s", "m2", lambda t, p: via.update(["m2"]))
        rng = random.Random(4)
        for i in range(300):
            ip = IPv4Header(src=IPv4Address(rng.randrange(1 << 32)),
                            dst=PREFIX.random_address(rng), ttl=64,
                            identification=i)
            packet = Packet.build(
                ip, UdpHeader(src_port=rng.randint(1024, 65000),
                              dst_port=80), b"")
            engine.inject(packet, "s")
        scheduler.run(until=30.0)
        assert engine.fate_counts[PacketFate.DELIVERED] == 300
        # Both paths carry a healthy share (hash should be ~balanced).
        assert via["m1"] > 60
        assert via["m2"] > 60

    def test_one_flow_stays_on_one_path(self):
        topo, scheduler, engine = self._stack()
        via = Counter()
        engine.add_tap("s", "m1", lambda t, p: via.update(["m1"]))
        engine.add_tap("s", "m2", lambda t, p: via.update(["m2"]))
        src = IPv4Address.parse("10.9.9.9")
        dst = IPv4Address.parse("192.0.2.77")
        for i in range(50):
            ip = IPv4Header(src=src, dst=dst, ttl=64, identification=i)
            packet = Packet.build(
                ip, UdpHeader(src_port=5555, dst_port=80), b"")
            engine.inject(packet, "s")
        scheduler.run(until=30.0)
        # All 50 packets of the flow took the same branch: no reordering
        # risk from ECMP.
        assert sorted(via.values()) == [50]

    def test_next_hop_set_api(self):
        topo, scheduler, engine = self._stack()
        hops = engine.igp.next_hop_set("s", "t")
        assert hops == ("m1", "m2")
        assert engine.igp.next_hop("s", "t", flow_hash=0) == "m1"
        assert engine.igp.next_hop("s", "t", flow_hash=1) == "m2"
