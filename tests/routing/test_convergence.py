"""Tests for convergence-time measurement."""

import random

import pytest

from repro.routing.convergence import (
    convergence_time_distribution,
    measure_convergence,
)
from repro.routing.linkstate import LinkStateTimers
from repro.routing.topology import backbone_topology, ring_topology


def _ring_factory(rng):
    return ring_topology(5, propagation_delay=0.002)


class TestMeasureConvergence:
    def test_returns_down_and_up_samples(self):
        samples = measure_convergence(_ring_factory, LinkStateTimers(),
                                      seed=3)
        assert [sample.event for sample in samples] == ["down", "up"]
        for sample in samples:
            assert 0 < sample.duration < 120.0
            assert sample.spf_runs > 0

    def test_durations_scale_with_fib_timers(self):
        fast = LinkStateTimers(fib_update_delay=0.05,
                               fib_update_jitter=0.05)
        slow = LinkStateTimers(fib_update_delay=2.0,
                               fib_update_jitter=2.0)
        fast_samples = measure_convergence(_ring_factory, fast, seed=7)
        slow_samples = measure_convergence(_ring_factory, slow, seed=7)
        fast_down = fast_samples[0].duration
        slow_down = slow_samples[0].duration
        assert slow_down > fast_down

    def test_default_timers_converge_in_seconds(self):
        samples = measure_convergence(
            lambda rng: backbone_topology(pops=8, rng=rng),
            LinkStateTimers(), seed=11,
        )
        for sample in samples:
            assert sample.duration < 10.0


class TestDistribution:
    def test_distribution_shape(self):
        durations = convergence_time_distribution(
            _ring_factory, LinkStateTimers(), trials=5, base_seed=1
        )
        assert len(durations) == 5
        assert all(0 < duration < 30.0 for duration in durations)
