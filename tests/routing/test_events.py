"""Tests for the discrete-event scheduler."""

import pytest

from repro.routing.events import EventScheduler, SchedulerError


class TestScheduling:
    def test_runs_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(3.0, lambda: order.append("c"))
        scheduler.schedule(1.0, lambda: order.append("a"))
        scheduler.schedule(2.0, lambda: order.append("b"))
        scheduler.run_all()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        scheduler = EventScheduler()
        order = []
        for name in "abc":
            scheduler.schedule(1.0, lambda n=name: order.append(n))
        scheduler.run_all()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(2.5, lambda: seen.append(scheduler.now))
        scheduler.run_all()
        assert seen == [2.5]

    def test_events_scheduled_during_run_fire(self):
        scheduler = EventScheduler()
        order = []

        def first():
            order.append("first")
            scheduler.schedule(1.0, lambda: order.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run_all()
        assert order == ["first", "second"]
        assert scheduler.now == 2.0

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_all()
        with pytest.raises(SchedulerError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_start_time(self):
        scheduler = EventScheduler(start_time=100.0)
        assert scheduler.now == 100.0
        fired = []
        scheduler.schedule(5.0, lambda: fired.append(scheduler.now))
        scheduler.run_all()
        assert fired == [105.0]


class TestBoundedRuns:
    def test_run_until_inclusive(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(2.0, lambda: fired.append(2))
        scheduler.schedule(3.0, lambda: fired.append(3))
        scheduler.run(until=2.0)
        assert fired == [1, 2]
        assert scheduler.now == 2.0
        scheduler.run(until=5.0)
        assert fired == [1, 2, 3]
        assert scheduler.now == 5.0

    def test_run_until_advances_clock_when_queue_drains(self):
        scheduler = EventScheduler()
        scheduler.run(until=10.0)
        assert scheduler.now == 10.0

    def test_max_events(self):
        scheduler = EventScheduler()
        fired = []
        for i in range(5):
            scheduler.schedule(float(i + 1), lambda i=i: fired.append(i))
        scheduler.run(max_events=2)
        assert fired == [0, 1]

    def test_run_all_guards_against_runaway(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.schedule(1.0, reschedule)

        scheduler.schedule(1.0, reschedule)
        with pytest.raises(SchedulerError):
            scheduler.run_all(max_events=100)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        scheduler.run_all()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        scheduler.run_all()

    def test_events_processed_counter(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        handle = scheduler.schedule(2.0, lambda: None)
        handle.cancel()
        scheduler.run_all()
        assert scheduler.events_processed == 1


class TestFastPathCalls:
    def test_call_runs_with_args(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.call(1.0, seen.append, "a")
        scheduler.call(0.5, seen.append, "b")
        scheduler.run_all()
        assert seen == ["b", "a"]
        assert scheduler.now == 1.0

    def test_call_at_orders_with_schedule_at(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_at(2.0, lambda: seen.append("handle"))
        scheduler.call_at(2.0, seen.append, "fast")
        scheduler.call_at(1.0, seen.append, "early")
        scheduler.run_all()
        # FIFO tie-breaking spans both entry points.
        assert seen == ["early", "handle", "fast"]

    def test_call_rejects_negative_delay(self):
        scheduler = EventScheduler()
        with pytest.raises(SchedulerError):
            scheduler.call(-0.1, print)

    def test_call_at_rejects_past(self):
        scheduler = EventScheduler(start_time=5.0)
        with pytest.raises(SchedulerError):
            scheduler.call_at(4.0, print)

    def test_call_counts_in_events_processed(self):
        scheduler = EventScheduler()
        scheduler.call(0.0, lambda: None)
        scheduler.call_at(1.0, lambda: None)
        scheduler.run_all()
        assert scheduler.events_processed == 2
