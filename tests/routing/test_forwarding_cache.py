"""Tests for the forwarding engine's epoch-versioned route cache.

The cache trades per-hop control-plane resolution for a dict hit, so the
load-bearing property is *invalidation*: any FIB install/withdraw or SPF
recomputation must bump an epoch and force re-resolution before the next
packet is forwarded.  These tests drive mutations mid-flight and assert
the behaviour through the engine's hit/miss/invalidation counters and
through the routes packets actually take.
"""

import random

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.forwarding import ForwardingEngine, PacketFate
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import Topology, line_topology

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
SPECIFIC = IPv4Prefix.parse("192.0.2.0/28")


def _packet(dst="192.0.2.5", src="10.1.1.1", sport=1000, ident=1):
    ip = IPv4Header(src=IPv4Address.parse(src), dst=IPv4Address.parse(dst),
                    ttl=64, identification=ident)
    return Packet.build(ip, UdpHeader(src_port=sport, dst_port=53), b"data")


def _stack(topo, egresses, seed=1, **engine_kwargs):
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(seed))
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(seed + 1))
    for prefix, egress in egresses:
        bgp.originate(prefix, egress)
    igp.start()
    bgp.start()
    scheduler.run(until=30.0)  # converge before measuring cache behaviour
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(seed + 2), **engine_kwargs)
    return scheduler, igp, bgp, engine


class TestSteadyState:
    def test_repeat_flow_hits_after_first_miss(self):
        scheduler, _, _, engine = _stack(line_topology(4), [(PREFIX, "R3")])
        for i in range(5):
            engine.inject(_packet(ident=i), "R0")
            scheduler.run(until=scheduler.now + 5.0)
        # The first packet resolves once per router it touches (three
        # forwarding hops plus the delivery consult at R3); every later
        # packet of the flow hits the cache at all four.
        assert engine.cache_misses == 4
        assert engine.cache_hits == 4 * 4
        assert engine.cache_invalidations == 0
        assert engine.fate_counts[PacketFate.DELIVERED] == 5

    def test_distinct_destinations_are_distinct_entries(self):
        scheduler, _, _, engine = _stack(line_topology(3), [(PREFIX, "R2")])
        engine.inject(_packet(dst="192.0.2.5"), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        misses = engine.cache_misses
        engine.inject(_packet(dst="192.0.2.6"), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        assert engine.cache_misses == misses * 2  # re-resolved per hop

    def test_disabled_cache_counts_nothing(self):
        scheduler, _, _, engine = _stack(line_topology(3), [(PREFIX, "R2")],
                                         route_cache=False)
        engine.inject(_packet(), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        stats = engine.route_cache_stats()
        assert not stats["enabled"]
        assert stats["hits"] == stats["misses"] == 0
        assert engine.fate_counts[PacketFate.DELIVERED] == 1


class TestFibInvalidation:
    def test_install_mid_flight_forces_reresolution(self):
        scheduler, _, bgp, engine = _stack(line_topology(3), [(PREFIX, "R2")])
        engine.inject(_packet(), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        hits_before, misses_before = engine.cache_hits, engine.cache_misses

        # A more-specific route appears at R0: its FIB epoch bumps, so
        # the cached /24 resolution must not be reused.
        bgp.fib("R0").install(SPECIFIC, "R1", now=scheduler.now)
        engine.inject(_packet(ident=2), "R0")
        scheduler.run(until=scheduler.now + 5.0)

        assert engine.cache_invalidations >= 1
        # R0's hop re-resolves (miss); the caches at R1 and R2 were
        # untouched, so their consults hit.
        assert engine.cache_misses == misses_before + 1
        assert engine.cache_hits == hits_before + 2

    def test_withdraw_mid_flight_is_seen_immediately(self):
        scheduler, _, bgp, engine = _stack(line_topology(3), [(PREFIX, "R2")])
        engine.inject(_packet(), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        assert engine.fate_counts[PacketFate.DELIVERED] == 1

        # Withdraw at the ingress FIB: the cached route must die with it.
        assert bgp.fib("R0").withdraw(PREFIX)
        invalidations_before = engine.cache_invalidations
        engine.inject(_packet(ident=2), "R0")
        scheduler.run(until=scheduler.now + 5.0)

        assert engine.cache_invalidations > invalidations_before
        assert engine.fate_counts[PacketFate.NO_ROUTE] == 1

    def test_stale_entry_never_served_after_epoch_bump(self):
        scheduler, _, bgp, engine = _stack(line_topology(3), [(PREFIX, "R2")])
        engine.inject(_packet(), "R0")
        scheduler.run(until=scheduler.now + 5.0)

        # Repoint the ingress FIB at itself as egress; the next packet
        # must follow the *new* FIB state (local delivery at R0, zero
        # hops) rather than the cached route to R2.
        fib = bgp.fib("R0")
        fib.withdraw(PREFIX)
        fib.install(PREFIX, "R0", now=scheduler.now)
        audit = engine.inject(_packet(ident=2), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        assert audit.fate is PacketFate.DELIVERED
        assert audit.fate_router == "R0"
        assert audit.hops == 0


class TestSpfInvalidation:
    def test_link_failure_spf_bumps_epoch_and_reroutes(self):
        # Square topology: R0-R1-R3 and R0-R2-R3, unequal costs so the
        # initial route is deterministic and failure forces the detour.
        topo = Topology()
        for name in ("R0", "R1", "R2", "R3"):
            topo.add_router(name)
        topo.add_link("R0", "R1", cost=1)
        topo.add_link("R1", "R3", cost=1)
        topo.add_link("R0", "R2", cost=5)
        topo.add_link("R2", "R3", cost=5)
        scheduler, igp, _, engine = _stack(topo, [(PREFIX, "R3")])

        first = engine.inject(_packet(), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        assert first.fate is PacketFate.DELIVERED
        assert first.hops == 2  # via R1

        link = topo.link_between("R0", "R1")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=scheduler.now + 30.0)  # let SPF/FIBs settle
        invalidations_before = engine.cache_invalidations

        second = engine.inject(_packet(ident=2), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        assert second.fate is PacketFate.DELIVERED
        assert second.hops == 2  # via R2 now
        assert engine.cache_invalidations > invalidations_before

    def test_igp_epoch_is_per_router(self):
        scheduler, igp, _, engine = _stack(line_topology(3), [(PREFIX, "R2")])
        epochs_before = dict(igp.epochs)
        engine.inject(_packet(), "R0")
        scheduler.run(until=scheduler.now + 5.0)
        # Forwarding alone must not perturb control-plane epochs.
        assert dict(igp.epochs) == epochs_before


class TestEcmpFlowHashDimension:
    @pytest.fixture()
    def diamond(self):
        # Two equal-cost paths R0→{R1,R2}→R3: ECMP splits on flow_hash.
        topo = Topology()
        for name in ("R0", "R1", "R2", "R3"):
            topo.add_router(name)
        topo.add_link("R0", "R1", cost=1)
        topo.add_link("R1", "R3", cost=1)
        topo.add_link("R0", "R2", cost=1)
        topo.add_link("R2", "R3", cost=1)
        return _stack(topo, [(PREFIX, "R3")])

    def test_flows_cache_separately(self, diamond):
        scheduler, _, _, engine = diamond
        # Same destination, different source ports → different flow_hash
        # → distinct cache keys, so each flow resolves its own path once.
        for sport in (1000, 1001):
            engine.inject(_packet(sport=sport), "R0")
            scheduler.run(until=scheduler.now + 5.0)
        # flow_hash is part of the cache key, so the second flow misses
        # at every router even though the destination is identical.
        misses_after_first_round = engine.cache_misses
        assert misses_after_first_round == 6  # 3 consults x 2 flows

        hits_before = engine.cache_hits
        for sport in (1000, 1001):
            engine.inject(_packet(sport=sport, ident=9), "R0")
            scheduler.run(until=scheduler.now + 5.0)
        assert engine.cache_misses == misses_after_first_round  # unchanged
        assert engine.cache_hits == hits_before + 6  # both flows now hit

    def test_cached_path_matches_ecmp_choice(self, diamond):
        scheduler, igp, _, engine = diamond
        taken = []
        engine.add_tap("R0", "R1", lambda t, p: taken.append("R1"))
        engine.add_tap("R0", "R2", lambda t, p: taken.append("R2"))
        packet = _packet(sport=4242)
        for ident in range(3):
            engine.inject(_packet(sport=4242, ident=ident), "R0")
            scheduler.run(until=scheduler.now + 5.0)
        # One flow always hashes onto one path — and the cached route
        # agrees with the IGP's ECMP selection for that hash.
        assert len(set(taken)) == 1
        from repro.routing.forwarding import _flow_hash
        expected = igp.next_hop("R0", "R3", _flow_hash(packet))
        assert taken[0] == expected
