"""Tests for failure scheduling and injection."""

import random

import pytest

from repro.routing.events import EventScheduler
from repro.routing.failures import FailureEvent, FailureSchedule
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import TopologyError, ring_topology


def _stack(topo, seed=1):
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(seed))
    igp.start()
    return scheduler, igp


class TestSchedule:
    def test_events_sorted(self):
        schedule = FailureSchedule()
        schedule.fail(10.0, "x").repair(5.0, "y")
        assert [event.time for event in schedule.events] == [5.0, 10.0]

    def test_flap_adds_down_and_up(self):
        schedule = FailureSchedule().flap(2.0, "link", downtime=3.0)
        assert [(e.time, e.up) for e in schedule.events] == [
            (2.0, False), (5.0, True)
        ]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(time=-1.0, link_name="x", up=False)

    def test_apply_validates_link_names(self):
        topo = ring_topology(4)
        scheduler, igp = _stack(topo)
        schedule = FailureSchedule().fail(1.0, "no--such")
        with pytest.raises(TopologyError):
            schedule.apply(topo, scheduler, igp)


class TestApplication:
    def test_fail_flips_physical_state_and_notifies(self):
        topo = ring_topology(4)
        scheduler, igp = _stack(topo)
        FailureSchedule().fail(1.0, "R0--R1").apply(topo, scheduler, igp)
        scheduler.run(until=30.0)
        assert not topo.link_between("R0", "R1").up
        assert igp.next_hop("R0", "R1") == "R3"

    def test_flap_restores_state(self):
        topo = ring_topology(4)
        scheduler, igp = _stack(topo)
        FailureSchedule().flap(1.0, "R0--R1", downtime=5.0).apply(
            topo, scheduler, igp
        )
        scheduler.run(until=60.0)
        assert topo.link_between("R0", "R1").up
        assert igp.is_converged()
        assert igp.next_hop("R0", "R1") == "R1"

    def test_redundant_event_ignored(self):
        topo = ring_topology(4)
        scheduler, igp = _stack(topo)
        schedule = FailureSchedule()
        schedule.fail(1.0, "R0--R1")
        schedule.fail(2.0, "R0--R1")  # already down: no-op
        schedule.apply(topo, scheduler, igp)
        scheduler.run(until=30.0)
        assert not topo.link_between("R0", "R1").up
        assert igp.is_converged()


class TestRandomFlaps:
    def test_respects_count_and_window(self):
        topo = ring_topology(6)
        schedule = FailureSchedule.random_flaps(
            topo, random.Random(1), count=5, start=10.0, end=100.0,
            downtime_range=(1.0, 2.0),
        )
        downs = [e for e in schedule.events if not e.up]
        ups = [e for e in schedule.events if e.up]
        assert len(downs) == 5
        assert len(ups) == 5
        assert all(10.0 <= e.time < 100.0 for e in downs)

    def test_eligible_links_respected(self):
        topo = ring_topology(6)
        schedule = FailureSchedule.random_flaps(
            topo, random.Random(2), count=10, start=0.0, end=50.0,
            eligible_links=["R0--R1"],
        )
        assert {e.link_name for e in schedule.events} == {"R0--R1"}

    def test_bad_window_rejected(self):
        topo = ring_topology(4)
        with pytest.raises(ValueError):
            FailureSchedule.random_flaps(
                topo, random.Random(0), count=1, start=10.0, end=5.0
            )

    def test_deterministic_for_seed(self):
        topo = ring_topology(6)
        a = FailureSchedule.random_flaps(topo, random.Random(7), 4, 0.0, 50.0)
        b = FailureSchedule.random_flaps(topo, random.Random(7), 4, 0.0, 50.0)
        assert a.events == b.events
