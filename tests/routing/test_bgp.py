"""Tests for the simplified I-BGP layer and hot-potato routing."""

import random

import pytest

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.routing.bgp import BgpProcess, BgpTimers
from repro.routing.events import EventScheduler
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import TopologyError, line_topology, ring_topology


def _p(text: str) -> IPv4Prefix:
    return IPv4Prefix.parse(text)


def _stack(topo, seed=1, timers=None):
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(seed))
    bgp = BgpProcess(topo, scheduler, igp, timers=timers,
                     rng=random.Random(seed + 1))
    return scheduler, igp, bgp


class TestStartup:
    def test_loopbacks_installed(self):
        topo = line_topology(3)
        scheduler, igp, bgp = _stack(topo)
        igp.start()
        bgp.start()
        loopback = topo.loopback("R2")
        entry = bgp.fib("R0").lookup(loopback)
        assert entry is not None
        assert entry.next_hop == "R2"

    def test_hot_potato_picks_nearest_egress(self):
        topo = line_topology(5)
        scheduler, igp, bgp = _stack(topo)
        prefix = _p("192.0.2.0/24")
        bgp.originate(prefix, "R0")
        bgp.originate(prefix, "R4")
        igp.start()
        bgp.start()
        assert bgp.chosen_egress("R1", prefix) == "R0"
        assert bgp.chosen_egress("R3", prefix) == "R4"

    def test_tie_broken_by_name(self):
        topo = line_topology(3)
        scheduler, igp, bgp = _stack(topo)
        prefix = _p("192.0.2.0/24")
        bgp.originate(prefix, "R0")
        bgp.originate(prefix, "R2")
        igp.start()
        bgp.start()
        # R1 is equidistant: name order picks R0.
        assert bgp.chosen_egress("R1", prefix) == "R0"

    def test_originate_unknown_egress_rejected(self):
        topo = line_topology(2)
        _, _, bgp = _stack(topo)
        with pytest.raises(TopologyError):
            bgp.originate(_p("192.0.2.0/24"), "ghost")

    def test_unadvertised_prefix_unroutable(self):
        topo = line_topology(2)
        scheduler, igp, bgp = _stack(topo)
        igp.start()
        bgp.start()
        assert bgp.fib("R0").lookup(IPv4Address.parse("192.0.2.1")) is None


class TestWithdrawal:
    def test_withdrawal_switches_to_backup(self):
        topo = line_topology(4)
        scheduler, igp, bgp = _stack(topo)
        prefix = _p("192.0.2.0/24")
        bgp.originate(prefix, "R0")
        bgp.originate(prefix, "R3")
        igp.start()
        bgp.start()
        assert bgp.chosen_egress("R1", prefix) == "R0"
        bgp.withdraw(prefix, "R0")
        scheduler.run(until=60.0)
        for router in topo.routers:
            assert bgp.chosen_egress(router, prefix) == "R3"
            assert bgp.fib(router).exact(prefix).next_hop == "R3"

    def test_withdrawal_of_only_egress_removes_route(self):
        topo = line_topology(3)
        scheduler, igp, bgp = _stack(topo)
        prefix = _p("192.0.2.0/24")
        bgp.originate(prefix, "R0")
        igp.start()
        bgp.start()
        bgp.withdraw(prefix, "R0")
        scheduler.run(until=60.0)
        assert bgp.chosen_egress("R2", prefix) is None
        assert bgp.fib("R2").exact(prefix) is None

    def test_readvertisement_restores(self):
        topo = line_topology(4)
        scheduler, igp, bgp = _stack(topo)
        prefix = _p("192.0.2.0/24")
        bgp.originate(prefix, "R0")
        bgp.originate(prefix, "R3")
        igp.start()
        bgp.start()
        bgp.withdraw(prefix, "R0")
        scheduler.run(until=60.0)
        bgp.advertise(prefix, "R0")
        scheduler.run(until=120.0)
        assert bgp.chosen_egress("R1", prefix) == "R0"

    def test_convergence_is_not_instant(self):
        """Per-peer propagation delays mean routers switch at different
        times — the inconsistency window that creates EGP loops."""
        topo = ring_topology(6)
        timers = BgpTimers(propagation_delay=1.0, propagation_jitter=5.0)
        scheduler, igp, bgp = _stack(topo, timers=timers)
        prefix = _p("192.0.2.0/24")
        bgp.originate(prefix, "R0")
        bgp.originate(prefix, "R3")
        igp.start()
        bgp.start()
        bgp.withdraw(prefix, "R0")
        # Shortly after the withdrawal, some routers still use R0.
        scheduler.run(until=1.5)
        choices = {bgp.chosen_egress(r, prefix) for r in topo.routers}
        assert "R0" in choices or "R3" in choices
        mixed_seen = len(choices) > 1
        scheduler.run(until=120.0)
        final = {bgp.chosen_egress(r, prefix) for r in topo.routers}
        assert final == {"R3"}
        assert mixed_seen

    def test_advertise_new_prefix_at_runtime(self):
        topo = line_topology(3)
        scheduler, igp, bgp = _stack(topo)
        igp.start()
        bgp.start()
        prefix = _p("198.51.100.0/24")
        bgp.advertise(prefix, "R2")
        scheduler.run(until=60.0)
        assert bgp.chosen_egress("R0", prefix) == "R2"


class TestIgpInteraction:
    def test_igp_change_shifts_hot_potato(self):
        """When the IGP distance to the chosen egress grows past the
        alternative, routers re-decide — the EGP/IGP coupling loop
        mechanism."""
        topo = ring_topology(6)
        scheduler, igp, bgp = _stack(topo)
        prefix = _p("192.0.2.0/24")
        bgp.originate(prefix, "R0")
        bgp.originate(prefix, "R3")
        igp.start()
        bgp.start()
        assert bgp.chosen_egress("R1", prefix) == "R0"
        link = topo.link_between("R0", "R1")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=60.0)
        # R1's distance to R0 is now 5 (around the ring) vs 2 to R3.
        assert bgp.chosen_egress("R1", prefix) == "R3"

    def test_unreachable_egress_unusable(self):
        topo = line_topology(4)
        scheduler, igp, bgp = _stack(topo)
        prefix = _p("192.0.2.0/24")
        bgp.originate(prefix, "R0")
        bgp.originate(prefix, "R3")
        igp.start()
        bgp.start()
        link = topo.link_between("R0", "R1")
        link.up = False
        igp.notify_link_down(link)
        scheduler.run(until=60.0)
        assert bgp.chosen_egress("R1", prefix) == "R3"
