"""Tests for the longest-prefix-match FIB."""

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.routing.fib import Fib


def _p(text: str) -> IPv4Prefix:
    return IPv4Prefix.parse(text)


def _a(text: str) -> IPv4Address:
    return IPv4Address.parse(text)


class TestInstallLookup:
    def test_exact_match(self):
        fib = Fib("r")
        fib.install(_p("192.0.2.0/24"), "next")
        entry = fib.lookup(_a("192.0.2.55"))
        assert entry is not None
        assert entry.next_hop == "next"

    def test_longest_prefix_wins(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "coarse")
        fib.install(_p("10.1.0.0/16"), "fine")
        fib.install(_p("10.1.2.0/24"), "finest")
        assert fib.lookup(_a("10.1.2.3")).next_hop == "finest"
        assert fib.lookup(_a("10.1.9.9")).next_hop == "fine"
        assert fib.lookup(_a("10.9.9.9")).next_hop == "coarse"

    def test_miss_returns_none(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "x")
        assert fib.lookup(_a("11.0.0.1")) is None

    def test_default_route(self):
        fib = Fib("r")
        fib.install(_p("0.0.0.0/0"), "default")
        assert fib.lookup(_a("203.0.113.9")).next_hop == "default"

    def test_replace_updates_next_hop(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "old", now=1.0)
        fib.install(_p("10.0.0.0/8"), "new", now=2.0)
        entry = fib.lookup(_a("10.0.0.1"))
        assert entry.next_hop == "new"
        assert entry.updated_at == 2.0
        assert len(fib) == 1

    def test_slash32(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.1/32"), "host")
        fib.install(_p("10.0.0.0/8"), "net")
        assert fib.lookup(_a("10.0.0.1")).next_hop == "host"
        assert fib.lookup(_a("10.0.0.2")).next_hop == "net"


class TestWithdraw:
    def test_withdraw_removes_route(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "x")
        assert fib.withdraw(_p("10.0.0.0/8"))
        assert fib.lookup(_a("10.0.0.1")) is None
        assert len(fib) == 0

    def test_withdraw_missing_returns_false(self):
        fib = Fib("r")
        assert not fib.withdraw(_p("10.0.0.0/8"))

    def test_withdraw_falls_back_to_shorter(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "coarse")
        fib.install(_p("10.1.0.0/16"), "fine")
        fib.withdraw(_p("10.1.0.0/16"))
        assert fib.lookup(_a("10.1.0.1")).next_hop == "coarse"


class TestIntrospection:
    def test_exact_ignores_other_lengths(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "x")
        assert fib.exact(_p("10.0.0.0/16")) is None
        assert fib.exact(_p("10.0.0.0/8")).next_hop == "x"

    def test_contains(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "x")
        assert _p("10.0.0.0/8") in fib
        assert _p("10.0.0.0/9") not in fib

    def test_entries_longest_first(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "a")
        fib.install(_p("10.1.2.0/24"), "b")
        fib.install(_p("10.1.0.0/16"), "c")
        lengths = [entry.prefix.length for entry in fib.entries()]
        assert lengths == [24, 16, 8]


class TestMaskTableAndProbeOrder:
    def test_mask_table_matches_formula(self):
        from repro.routing.fib import _MASKS

        assert len(_MASKS) == 33
        assert _MASKS[0] == 0
        assert _MASKS[32] == 0xFFFFFFFF
        for length in range(1, 33):
            assert _MASKS[length] == \
                (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF

    def test_lengths_stay_sorted_through_mutations(self):
        fib = Fib("r")
        for length in (24, 8, 32, 16, 0, 12):
            prefix = IPv4Prefix(0, length) if length == 0 else \
                IPv4Prefix((10 << 24) & (((1 << length) - 1)
                                         << (32 - length)), length)
            fib.install(prefix, "x")
            assert fib._lengths_desc == \
                sorted(fib._lengths_desc, reverse=True)
            assert len(fib._probes) == len(fib._lengths_desc)
        # Withdrawing the only route of a length drops its probe slot.
        fib.withdraw(IPv4Prefix((10 << 24) & 0xFFFF0000, 16))
        assert 16 not in fib._lengths_desc
        assert fib._lengths_desc == sorted(fib._lengths_desc, reverse=True)
        assert len(fib._probes) == len(fib._lengths_desc)

    def test_probe_masks_parallel_lengths(self):
        from repro.routing.fib import _MASKS

        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "a")
        fib.install(_p("10.1.0.0/16"), "b")
        fib.install(_p("0.0.0.0/0"), "c")
        assert [mask for mask, _ in fib._probes] == \
            [_MASKS[length] for length in fib._lengths_desc]


class TestLookupReference:
    def test_matches_fast_lookup_everywhere(self):
        import random

        rng = random.Random(5)
        fib = Fib("r")
        prefixes = []
        for _ in range(60):
            length = rng.randrange(0, 33)
            network = rng.getrandbits(32) & \
                ((((1 << length) - 1) << (32 - length)) & 0xFFFFFFFF)
            prefix = IPv4Prefix(network, length)
            prefixes.append(prefix)
            fib.install(prefix, f"nh{length}")
        for _ in range(500):
            addr = IPv4Address(rng.getrandbits(32))
            assert fib.lookup(addr) is fib.lookup_reference(addr)
        # Also probe addresses inside known prefixes (guaranteed hits).
        for prefix in prefixes:
            addr = IPv4Address(prefix.network)
            assert fib.lookup(addr) is fib.lookup_reference(addr)


class TestEpoch:
    def test_install_withdraw_replace_bump(self):
        fib = Fib("r")
        assert fib.epoch == 0
        fib.install(_p("10.0.0.0/8"), "a")
        assert fib.epoch == 1
        fib.install(_p("10.0.0.0/8"), "b")  # replace counts as a change
        assert fib.epoch == 2
        assert fib.withdraw(_p("10.0.0.0/8"))
        assert fib.epoch == 3

    def test_failed_withdraw_does_not_bump(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "a")
        epoch = fib.epoch
        assert not fib.withdraw(_p("192.0.2.0/24"))
        assert fib.epoch == epoch
