"""Tests for the longest-prefix-match FIB."""

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.routing.fib import Fib


def _p(text: str) -> IPv4Prefix:
    return IPv4Prefix.parse(text)


def _a(text: str) -> IPv4Address:
    return IPv4Address.parse(text)


class TestInstallLookup:
    def test_exact_match(self):
        fib = Fib("r")
        fib.install(_p("192.0.2.0/24"), "next")
        entry = fib.lookup(_a("192.0.2.55"))
        assert entry is not None
        assert entry.next_hop == "next"

    def test_longest_prefix_wins(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "coarse")
        fib.install(_p("10.1.0.0/16"), "fine")
        fib.install(_p("10.1.2.0/24"), "finest")
        assert fib.lookup(_a("10.1.2.3")).next_hop == "finest"
        assert fib.lookup(_a("10.1.9.9")).next_hop == "fine"
        assert fib.lookup(_a("10.9.9.9")).next_hop == "coarse"

    def test_miss_returns_none(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "x")
        assert fib.lookup(_a("11.0.0.1")) is None

    def test_default_route(self):
        fib = Fib("r")
        fib.install(_p("0.0.0.0/0"), "default")
        assert fib.lookup(_a("203.0.113.9")).next_hop == "default"

    def test_replace_updates_next_hop(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "old", now=1.0)
        fib.install(_p("10.0.0.0/8"), "new", now=2.0)
        entry = fib.lookup(_a("10.0.0.1"))
        assert entry.next_hop == "new"
        assert entry.updated_at == 2.0
        assert len(fib) == 1

    def test_slash32(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.1/32"), "host")
        fib.install(_p("10.0.0.0/8"), "net")
        assert fib.lookup(_a("10.0.0.1")).next_hop == "host"
        assert fib.lookup(_a("10.0.0.2")).next_hop == "net"


class TestWithdraw:
    def test_withdraw_removes_route(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "x")
        assert fib.withdraw(_p("10.0.0.0/8"))
        assert fib.lookup(_a("10.0.0.1")) is None
        assert len(fib) == 0

    def test_withdraw_missing_returns_false(self):
        fib = Fib("r")
        assert not fib.withdraw(_p("10.0.0.0/8"))

    def test_withdraw_falls_back_to_shorter(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "coarse")
        fib.install(_p("10.1.0.0/16"), "fine")
        fib.withdraw(_p("10.1.0.0/16"))
        assert fib.lookup(_a("10.1.0.1")).next_hop == "coarse"


class TestIntrospection:
    def test_exact_ignores_other_lengths(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "x")
        assert fib.exact(_p("10.0.0.0/16")) is None
        assert fib.exact(_p("10.0.0.0/8")).next_hop == "x"

    def test_contains(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "x")
        assert _p("10.0.0.0/8") in fib
        assert _p("10.0.0.0/9") not in fib

    def test_entries_longest_first(self):
        fib = Fib("r")
        fib.install(_p("10.0.0.0/8"), "a")
        fib.install(_p("10.1.2.0/24"), "b")
        fib.install(_p("10.1.0.0/16"), "c")
        lengths = [entry.prefix.length for entry in fib.entries()]
        assert lengths == [24, 16, 8]
