"""Tests for the control-plane event journal."""

import random

import pytest

from repro.net.addr import IPv4Prefix
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.failures import FailureSchedule
from repro.routing.journal import EventKind, RoutingJournal
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import ring_topology

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def _stack(seed=1):
    topo = ring_topology(5)
    scheduler = EventScheduler()
    journal = RoutingJournal()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(seed),
                            journal=journal)
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(seed + 1))
    return topo, scheduler, journal, igp, bgp


class TestJournalBasics:
    def test_time_ordering_enforced(self):
        journal = RoutingJournal()
        journal.record(5.0, EventKind.SPF_RUN, "r1")
        with pytest.raises(ValueError):
            journal.record(4.0, EventKind.SPF_RUN, "r2")

    def test_window_query(self):
        journal = RoutingJournal()
        for t in (1.0, 2.0, 3.0, 4.0):
            journal.record(t, EventKind.SPF_RUN, "r")
        window = journal.window(2.0, 3.0)
        assert [event.time for event in window] == [2.0, 3.0]

    def test_counts(self):
        journal = RoutingJournal()
        journal.record(1.0, EventKind.LINK_DOWN, "a")
        journal.record(2.0, EventKind.SPF_RUN, "a")
        journal.record(2.0, EventKind.SPF_RUN, "b")
        assert journal.counts() == {EventKind.LINK_DOWN: 1,
                                    EventKind.SPF_RUN: 2}

    def test_kind_classification(self):
        assert EventKind.LINK_DOWN.is_igp
        assert EventKind.SPF_RUN.is_igp
        assert not EventKind.BGP_WITHDRAW_SENT.is_igp
        assert EventKind.BGP_EGRESS_CHANGED.is_bgp
        assert not EventKind.IGP_FIB_INSTALLED.is_bgp


class TestIgpJournaling:
    def test_failure_produces_full_event_chain(self):
        topo, scheduler, journal, igp, bgp = _stack()
        igp.start()
        bgp.start()
        FailureSchedule().fail(5.0, "R0--R1").apply(topo, scheduler, igp)
        scheduler.run(until=60.0)
        counts = journal.counts()
        assert counts[EventKind.LINK_DOWN] == 1
        assert counts[EventKind.ADJACENCY_LOST] == 2  # both endpoints
        assert counts[EventKind.LSA_ORIGINATED] == 2
        assert counts[EventKind.SPF_RUN] >= len(topo.routers)
        assert counts[EventKind.IGP_FIB_INSTALLED] >= len(topo.routers)

    def test_repair_produces_up_events(self):
        topo, scheduler, journal, igp, bgp = _stack()
        igp.start()
        bgp.start()
        FailureSchedule().flap(5.0, "R0--R1", 10.0).apply(
            topo, scheduler, igp
        )
        scheduler.run(until=120.0)
        counts = journal.counts()
        assert counts[EventKind.LINK_UP] == 1
        assert counts[EventKind.ADJACENCY_FORMED] == 2

    def test_no_journal_is_fine(self):
        topo = ring_topology(4)
        scheduler = EventScheduler()
        igp = LinkStateProtocol(topo, scheduler, rng=random.Random(0))
        bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(1))
        igp.start()
        bgp.start()
        FailureSchedule().fail(1.0, "R0--R1").apply(topo, scheduler, igp)
        scheduler.run(until=30.0)
        assert igp.is_converged()


class TestBgpJournaling:
    def test_withdrawal_event_chain(self):
        topo, scheduler, journal, igp, bgp = _stack()
        bgp.originate(PREFIX, "R0")
        bgp.originate(PREFIX, "R2")
        igp.start()
        bgp.start()
        bgp.withdraw(PREFIX, "R0")
        scheduler.run(until=60.0)
        counts = journal.counts()
        assert counts[EventKind.BGP_WITHDRAW_SENT] == 1
        assert counts[EventKind.BGP_UPDATE_RECEIVED] == len(topo.routers)
        assert counts[EventKind.BGP_EGRESS_CHANGED] >= 1
        assert counts[EventKind.BGP_ROUTE_INSTALLED] >= 1

    def test_prefix_attached_to_bgp_events(self):
        topo, scheduler, journal, igp, bgp = _stack()
        bgp.originate(PREFIX, "R0")
        bgp.originate(PREFIX, "R2")
        igp.start()
        bgp.start()
        bgp.withdraw(PREFIX, "R0")
        scheduler.run(until=60.0)
        events = journal.events_for_prefix(PREFIX, 0.0, 60.0)
        assert events
        assert all(event.prefix == PREFIX for event in events)

    def test_igp_event_filter(self):
        topo, scheduler, journal, igp, bgp = _stack()
        bgp.originate(PREFIX, "R0")
        igp.start()
        bgp.start()
        FailureSchedule().fail(5.0, "R2--R3").apply(topo, scheduler, igp)
        scheduler.run(until=60.0)
        igp_events = journal.igp_events(0.0, 60.0)
        assert igp_events
        assert all(event.kind.is_igp for event in igp_events)


class TestScenarioJournal:
    def test_scenario_run_exposes_journal(self):
        from tests.conftest import small_sim

        run = small_sim(seed=11, duration=40.0)
        assert len(run.journal) > 0
        counts = run.journal.counts()
        assert EventKind.LINK_DOWN in counts
        assert EventKind.BGP_WITHDRAW_SENT in counts
