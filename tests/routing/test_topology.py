"""Tests for the topology model and shortest paths."""

import random

import pytest

from repro.routing.topology import (
    Link,
    Topology,
    TopologyError,
    backbone_topology,
    dijkstra,
    line_topology,
    ring_topology,
)


class TestConstruction:
    def test_add_router_and_loopback(self):
        topo = Topology()
        topo.add_router("a")
        topo.add_router("b")
        assert topo.loopback("a") != topo.loopback("b")

    def test_duplicate_router_rejected(self):
        topo = Topology()
        topo.add_router("a")
        with pytest.raises(TopologyError):
            topo.add_router("a")

    def test_link_requires_known_routers(self):
        topo = Topology()
        topo.add_router("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "ghost")

    def test_duplicate_link_rejected(self):
        topo = line_topology(2)
        with pytest.raises(TopologyError):
            topo.add_link("R1", "R0")  # same link, either orientation

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_router("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "a")

    def test_link_name_canonical(self):
        topo = line_topology(2)
        link = topo.link_between("R1", "R0")
        assert link.name == "R0--R1"

    def test_link_other(self):
        topo = line_topology(2)
        link = topo.link_between("R0", "R1")
        assert link.other("R0") == "R1"
        assert link.other("R1") == "R0"
        with pytest.raises(TopologyError):
            link.other("R9")


class TestLinkProperties:
    def test_cost_validation(self):
        with pytest.raises(TopologyError):
            Link(a="x", b="y", cost=0)

    def test_transmission_delay(self):
        link = Link(a="x", b="y", capacity_bps=8000.0)
        assert link.transmission_delay(1000) == pytest.approx(1.0)

    def test_neighbors_respect_link_state(self):
        topo = ring_topology(4)
        assert sorted(topo.neighbors("R0")) == ["R1", "R3"]
        topo.link_between("R0", "R1").up = False
        assert topo.neighbors("R0") == ["R3"]
        assert sorted(topo.neighbors("R0", only_up=False)) == ["R1", "R3"]


class TestShortestPaths:
    def test_line_distances(self):
        topo = line_topology(4)
        paths = topo.shortest_paths("R0")
        assert paths["R3"][0] == 3
        assert paths["R3"][1] == "R1"
        assert paths["R0"] == (0, None)

    def test_respects_costs(self):
        topo = Topology()
        for name in "abc":
            topo.add_router(name)
        topo.add_link("a", "b", cost=10)
        topo.add_link("a", "c", cost=1)
        topo.add_link("c", "b", cost=1)
        paths = topo.shortest_paths("a")
        assert paths["b"] == (2, "c")

    def test_down_links_excluded(self):
        topo = ring_topology(4)
        topo.link_between("R0", "R1").up = False
        paths = topo.shortest_paths("R0")
        assert paths["R1"] == (3, "R3")

    def test_unreachable_omitted(self):
        topo = Topology()
        topo.add_router("a")
        topo.add_router("island")
        paths = topo.shortest_paths("a")
        assert "island" not in paths

    def test_deterministic_tie_breaking(self):
        # Two equal-cost paths: the lexicographically smaller first hop wins.
        topo = Topology()
        for name in ("s", "m1", "m2", "t"):
            topo.add_router(name)
        topo.add_link("s", "m1", cost=1)
        topo.add_link("s", "m2", cost=1)
        topo.add_link("m1", "t", cost=1)
        topo.add_link("m2", "t", cost=1)
        assert topo.shortest_paths("s")["t"] == (2, "m1")

    def test_dijkstra_unknown_source(self):
        with pytest.raises(TopologyError):
            dijkstra("ghost", lambda n: iter(()), ["a"])


class TestGenerators:
    def test_line_topology_shape(self):
        topo = line_topology(5)
        assert len(topo.routers) == 5
        assert len(topo.links) == 4

    def test_ring_topology_shape(self):
        topo = ring_topology(5)
        assert len(topo.links) == 5
        assert len(topo.neighbors("R0")) == 2

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_backbone_topology_connected_and_deterministic(self):
        topo_a = backbone_topology(pops=8, rng=random.Random(5))
        topo_b = backbone_topology(pops=8, rng=random.Random(5))
        assert len(topo_a.routers) == 8
        assert {l.name for l in topo_a.links} == {l.name for l in topo_b.links}
        paths = topo_a.shortest_paths("pop0")
        assert len(paths) == 8  # fully reachable

    def test_backbone_extra_edges(self):
        topo = backbone_topology(pops=8, rng=random.Random(1), extra_edges=3)
        assert len(topo.links) == 11
