"""Property-based tests: anonymization preserves detection results.

The headline property: because the mapping is prefix-preserving and
rewrites checksums consistently, the loop detector finds structurally
identical results on an anonymized trace — same stream count, sizes,
TTL deltas, timestamps, and loop windows, with only the prefixes
renamed.  This is exactly what made sharing anonymized traces viable
for measurement studies like the paper's.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import LoopDetector
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.anonymize import PrefixPreservingAnonymizer
from repro.traffic.synthetic import SyntheticTraceBuilder

KEY = b"property-test-key-32-bytes-long!"

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "loops": st.integers(1, 3),
        "ttl_delta": st.integers(2, 4),
        "replicas": st.integers(3, 8),
        "background": st.integers(20, 150),
    }
)


def _build(params):
    builder = SyntheticTraceBuilder(rng=random.Random(params["seed"]))
    builder.add_background(params["background"], 0.0, 100.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    entry = params["ttl_delta"] * (params["replicas"] - 1) + 2
    for i in range(params["loops"]):
        builder.add_loop(
            10.0 + i * 120.0,
            IPv4Prefix((192 << 24) | (i << 8), 24),
            ttl_delta=params["ttl_delta"],
            n_packets=2,
            replicas_per_packet=params["replicas"],
            spacing=0.01,
            packet_gap=0.015,
            entry_ttl=entry,
        )
    return builder.build()


def _signature(result):
    """Prefix-name-independent summary of a detection result."""
    return sorted(
        (round(loop.start, 9), round(loop.end, 9), loop.ttl_delta,
         loop.stream_count, loop.replica_count)
        for loop in result.loops
    )


class TestDetectionInvariance:
    @given(scenario)
    @settings(max_examples=20, deadline=None)
    def test_same_loops_found(self, params):
        trace = _build(params)
        anonymizer = PrefixPreservingAnonymizer(KEY)
        anonymized = anonymizer.anonymize_trace(trace)

        original = LoopDetector().detect(trace)
        masked = LoopDetector().detect(anonymized)

        assert masked.stream_count == original.stream_count
        assert masked.loop_count == original.loop_count
        assert _signature(masked) == _signature(original)

    @given(scenario)
    @settings(max_examples=15, deadline=None)
    def test_prefix_mapping_consistent(self, params):
        """Each original loop prefix maps to exactly one anonymized
        prefix (the /24 image under the prefix-preserving function)."""
        trace = _build(params)
        anonymizer = PrefixPreservingAnonymizer(KEY)
        anonymized = anonymizer.anonymize_trace(trace)
        original = LoopDetector().detect(trace)
        masked = LoopDetector().detect(anonymized)

        expected_prefixes = {
            anonymizer.anonymize_address(
                loop.prefix.network_address
            ).prefix(24)
            for loop in original.loops
        }
        assert {loop.prefix for loop in masked.loops} == expected_prefixes

    @given(st.integers(0, 1 << 32 - 1), st.integers(0, 31))
    @settings(max_examples=100)
    def test_prefix_preservation_property(self, value, flip_bit):
        anonymizer = PrefixPreservingAnonymizer(KEY)
        other = value ^ (1 << (31 - flip_bit))
        mapped_a = anonymizer.anonymize_address(IPv4Address(value)).value
        mapped_b = anonymizer.anonymize_address(IPv4Address(other)).value
        differ_at = 31 - (mapped_a ^ mapped_b).bit_length() + 1
        assert differ_at == flip_bit
