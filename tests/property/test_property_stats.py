"""Property-based tests for the stats toolkit and the FIB."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.routing.fib import Fib
from repro.stats.cdf import EmpiricalCdf

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=200,
)


class TestCdfProperties:
    @given(samples)
    def test_cdf_is_monotone(self, values):
        cdf = EmpiricalCdf.from_samples(values)
        points = cdf.points(max_points=50)
        ys = [y for _, y in points]
        assert ys == sorted(ys)
        assert 0 < ys[-1] <= 1.0

    @given(samples)
    def test_quantiles_monotone(self, values):
        cdf = EmpiricalCdf.from_samples(values)
        quantiles = [cdf.quantile(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)]
        assert quantiles == sorted(quantiles)

    @given(samples)
    def test_quantile_inverts_fraction(self, values):
        cdf = EmpiricalCdf.from_samples(values)
        for q in (0.25, 0.5, 0.75):
            x = cdf.quantile(q)
            assert cdf.fraction_at_or_below(x) >= q

    @given(samples)
    def test_extremes(self, values):
        cdf = EmpiricalCdf.from_samples(values)
        assert cdf.fraction_at_or_below(cdf.max) == 1.0
        assert cdf.fraction_below(cdf.min) == 0.0
        epsilon = 1e-9 * max(1.0, abs(cdf.max))
        assert cdf.min - epsilon <= cdf.mean() <= cdf.max + epsilon

    @given(samples)
    def test_step_sizes_sum_below_one(self, values):
        cdf = EmpiricalCdf.from_samples(values)
        total = sum(size for _, size in cdf.step_sizes(threshold=0.01))
        assert total <= 1.0 + 1e-9


prefixes = st.builds(
    lambda value, length: IPv4Prefix(
        value & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length
                 else 0),
        length,
    ),
    st.integers(0, 0xFFFFFFFF),
    st.integers(8, 32),
)


class TestFibProperties:
    @given(
        routes=st.dictionaries(prefixes, st.sampled_from(["a", "b", "c"]),
                               min_size=1, max_size=40),
        probe=st.integers(0, 0xFFFFFFFF),
    )
    @settings(max_examples=100)
    def test_lookup_is_longest_matching_route(self, routes, probe):
        fib = Fib("r")
        for prefix, next_hop in routes.items():
            fib.install(prefix, next_hop)
        address = IPv4Address(probe)
        entry = fib.lookup(address)
        matching = [prefix for prefix in routes if prefix.contains(address)]
        if not matching:
            assert entry is None
        else:
            best = max(matching, key=lambda p: p.length)
            assert entry.prefix == best
            assert entry.next_hop == routes[best]

    @given(
        routes=st.dictionaries(prefixes, st.sampled_from(["a", "b"]),
                               min_size=2, max_size=20),
    )
    @settings(max_examples=50)
    def test_withdraw_restores_previous_best(self, routes):
        fib = Fib("r")
        for prefix, next_hop in routes.items():
            fib.install(prefix, next_hop)
        victim = max(routes, key=lambda p: p.length)
        fib.withdraw(victim)
        address = victim.network_address
        entry = fib.lookup(address)
        remaining = [p for p in routes if p != victim and p.contains(address)]
        if remaining:
            assert entry is not None
            assert entry.prefix == max(remaining, key=lambda p: p.length)
        else:
            assert entry is None
