"""Property-based tests for the packet substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.checksum import incremental_update, internet_checksum
from repro.net.packet import IPv4Header, Packet, TcpFlags, TcpHeader, UdpHeader

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address)
ports = st.integers(min_value=0, max_value=0xFFFF)


class TestAddressProperties:
    @given(addresses)
    def test_parse_str_round_trip(self, address):
        assert IPv4Address.parse(str(address)) == address

    @given(addresses)
    def test_packed_round_trip(self, address):
        assert IPv4Address.from_bytes(address.packed) == address

    @given(addresses, st.integers(min_value=0, max_value=32))
    def test_prefix_contains_its_address(self, address, length):
        assert address.prefix(length).contains(address)

    @given(addresses, st.integers(min_value=0, max_value=32))
    def test_prefix_parse_round_trip(self, address, length):
        prefix = address.prefix(length)
        assert IPv4Prefix.parse(str(prefix)) == prefix

    @given(addresses)
    def test_exactly_one_classful_space(self, address):
        flags = [address.is_class_a(), address.is_class_b(),
                 address.is_class_c(), address.is_multicast()]
        # Class E (240/4) is none of them; otherwise exactly one.
        assert sum(flags) <= 1


class TestChecksumProperties:
    @given(st.binary(max_size=200))
    def test_appending_checksum_verifies(self, data):
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        assert internet_checksum(data + checksum.to_bytes(2, "big")) == 0

    @given(st.binary(max_size=100), st.integers(0, 0xFFFF),
           st.integers(0, 0xFFFF))
    def test_incremental_matches_full(self, tail, old_word, new_word):
        if len(tail) % 2:
            tail += b"\x00"
        old_data = old_word.to_bytes(2, "big") + tail
        new_data = new_word.to_bytes(2, "big") + tail
        old_checksum = internet_checksum(old_data)
        updated = incremental_update(old_checksum, old_word, new_word)
        full = internet_checksum(new_data)
        # 0x0000 and 0xFFFF are the two ones-complement representations
        # of zero; they are interchangeable as checksum values.
        assert updated == full or {updated, full} == {0x0000, 0xFFFF}

    @given(st.binary(min_size=2, max_size=100).filter(
        lambda d: any(d)), st.integers(0, 0xFFFF))
    def test_incremental_update_verifies(self, data, new_word):
        """A header updated incrementally still passes verification."""
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        old_word = int.from_bytes(data[:2], "big")
        new_data = new_word.to_bytes(2, "big") + data[2:]
        updated = incremental_update(checksum, old_word, new_word)
        whole = new_data + updated.to_bytes(2, "big")
        if any(new_data):
            assert internet_checksum(whole) == 0


class TestHeaderProperties:
    @given(
        src=addresses, dst=addresses,
        ttl=st.integers(1, 255),
        ident=st.integers(0, 0xFFFF),
        tos=st.integers(0, 255),
    )
    def test_ipv4_round_trip(self, src, dst, ttl, ident, tos):
        header = IPv4Header(src=src, dst=dst, ttl=ttl,
                            identification=ident, tos=tos)
        parsed = IPv4Header.unpack(header.pack())
        assert (parsed.src, parsed.dst, parsed.ttl, parsed.identification,
                parsed.tos) == (src, dst, ttl, ident, tos)
        assert parsed.header_valid()

    @given(
        src=addresses, dst=addresses,
        sport=ports, dport=ports,
        seq=st.integers(0, 0xFFFFFFFF),
        flags=st.integers(0, 255),
        payload=st.binary(max_size=64),
    )
    @settings(max_examples=50)
    def test_tcp_packet_round_trip(self, src, dst, sport, dport, seq,
                                   flags, payload):
        ip = IPv4Header(src=src, dst=dst, ttl=64)
        tcp = TcpHeader(src_port=sport, dst_port=dport, seq=seq,
                        flags=TcpFlags(flags))
        packet = Packet.build(ip, tcp, payload)
        parsed = Packet.unpack(packet.pack())
        assert parsed.l4.src_port == sport
        assert parsed.l4.flags == TcpFlags(flags)
        assert parsed.payload == payload

    @given(
        src=addresses, dst=addresses,
        ttl=st.integers(10, 255),
        hops=st.integers(1, 9),
        payload=st.binary(max_size=32),
    )
    @settings(max_examples=50)
    def test_forwarding_invariant(self, src, dst, ttl, hops, payload):
        """forwarded(h) changes exactly the TTL byte and IP checksum."""
        ip = IPv4Header(src=src, dst=dst, ttl=ttl, identification=7)
        packet = Packet.build(ip, UdpHeader(src_port=1, dst_port=2),
                              payload)
        before = packet.pack()
        after = packet.forwarded(hops).pack()
        diff = {i for i in range(len(before)) if before[i] != after[i]}
        assert diff <= {8, 10, 11}
        assert after[8] == ttl - hops
        assert internet_checksum(after[:20]) == 0
