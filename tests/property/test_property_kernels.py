"""Property suite: the three step-1 kernel tiers are byte-identical.

Hypothesis drives adversarial layouts at the tiers — irregular strides,
padded strides, zero-length bodies, exact duplicates, eviction-interval
boundaries, mixed regular/irregular chunks — and asserts that the
reference, pure-python columnar, and vectorized kernels return the same
streams AND the same scan stats.

Runs without numpy: the vectorized tier then falls back to the columnar
kernel, and the suite degenerates to re-checking that the fallback is
wired (the no-numpy CI job runs exactly this file).
"""

from array import array

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replica import (
    ReplicaScanStats,
    detect_replicas_columnar,
    detect_replicas_indexed,
    detect_replicas_vectorized,
)
from repro.net.columnar import ColumnarChunk


def _stream_fp(stream):
    return (
        stream.key,
        stream.first_data,
        tuple((r.index, r.timestamp, r.ttl) for r in stream.replicas),
    )


def _run_tier(kernel_fn, chunks, params):
    stats = ReplicaScanStats()
    streams = kernel_fn(chunks, stats=stats, **params)
    return (
        [_stream_fp(s) for s in streams],
        (stats.records_scanned, stats.records_skipped_short,
         stats.singletons_evicted, stats.candidate_streams),
    )


def _chunk(bodies, base_index, start_time, pad):
    """One chunk; ``pad`` > 0 declares a padded stride when the bodies
    are uniform (the vectorized fast path), else the chunk is packed
    irregularly (the fallback path)."""
    uniform = len(set(map(len, bodies))) == 1 and bodies
    stride = None
    slab = bytearray()
    offsets = array("Q")
    lengths = array("I")
    for body in bodies:
        offsets.append(len(slab))
        lengths.append(len(body))
        slab.extend(body)
        if uniform and pad:
            slab.extend(b"\xee" * pad)
    if uniform:
        stride = len(bodies[0]) + pad
    return ColumnarChunk(
        data=bytes(slab),
        timestamps=array("d", [start_time + i * 0.003
                               for i in range(len(bodies))]),
        offsets=offsets,
        lengths=lengths,
        base_index=base_index,
        stride=stride,
    )


# Bodies drawn from a tiny alphabet so exact duplicates (the chaining
# trigger) are common; lengths cross the MIN_CAPTURE=20 boundary and
# include zero.
body = st.one_of(
    st.binary(min_size=0, max_size=4),
    st.binary(min_size=18, max_size=22).map(
        lambda b: bytes(x % 4 for x in b)
    ),
    st.binary(min_size=40, max_size=40).map(
        lambda b: bytes(x % 3 for x in b)
    ),
)

chunk_shape = st.tuples(
    st.lists(body, min_size=0, max_size=25),
    st.integers(min_value=0, max_value=9),  # stride padding
)

layout = st.fixed_dictionaries({
    "chunks": st.lists(chunk_shape, min_size=0, max_size=6),
    "eviction_interval": st.sampled_from([0, 1, 3, 7, 100_000]),
    "max_replica_gap": st.sampled_from([0.001, 0.05, 5.0]),
    "min_ttl_delta": st.integers(min_value=1, max_value=4),
})


class TestKernelTierEquivalence:
    @given(layout)
    @settings(max_examples=60, deadline=None)
    def test_three_tiers_byte_identical(self, params):
        chunks = []
        base = 0
        for bodies, pad in params["chunks"]:
            chunks.append(_chunk(bodies, base, base * 0.003, pad))
            base += len(bodies)
        kernel_params = {
            "min_ttl_delta": params["min_ttl_delta"],
            "max_replica_gap": params["max_replica_gap"],
            "eviction_interval": params["eviction_interval"],
        }

        ref_stats = ReplicaScanStats()
        triples = (t for c in chunks for t in c.iter_triples())
        reference = (
            [_stream_fp(s) for s in detect_replicas_indexed(
                triples, stats=ref_stats, **kernel_params)],
            (ref_stats.records_scanned, ref_stats.records_skipped_short,
             ref_stats.singletons_evicted, ref_stats.candidate_streams),
        )
        columnar = _run_tier(detect_replicas_columnar, chunks,
                             kernel_params)
        vectorized = _run_tier(detect_replicas_vectorized, chunks,
                               kernel_params)
        assert columnar == reference
        assert vectorized == reference
