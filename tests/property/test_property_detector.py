"""Property-based tests: the detector recovers whatever loops are planted.

Hypothesis drives the loop geometry (delta, replica count, spacing,
packet count, background volume); the invariants must hold for all of it.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import IPv4Prefix
from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.replica import detect_replicas
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
BACKGROUND_PREFIX = IPv4Prefix.parse("198.51.100.0/24")

loop_params = st.fixed_dictionaries(
    {
        "ttl_delta": st.integers(min_value=2, max_value=6),
        "replicas_per_packet": st.integers(min_value=3, max_value=12),
        "n_packets": st.integers(min_value=1, max_value=5),
        "spacing": st.floats(min_value=0.001, max_value=0.1),
        "seed": st.integers(min_value=0, max_value=10_000),
        "background": st.integers(min_value=0, max_value=300),
    }
)


def _build(params):
    builder = SyntheticTraceBuilder(rng=random.Random(params["seed"]))
    if params["background"]:
        builder.add_background(params["background"], 0.0, 60.0,
                               prefixes=[BACKGROUND_PREFIX])
    entry_ttl = params["ttl_delta"] * (params["replicas_per_packet"] - 1) + 2
    builder.add_loop(
        10.0,
        PREFIX,
        ttl_delta=params["ttl_delta"],
        n_packets=params["n_packets"],
        replicas_per_packet=params["replicas_per_packet"],
        spacing=params["spacing"],
        packet_gap=params["spacing"] * 1.5,
        entry_ttl=entry_ttl,
    )
    return builder.build()


class TestPlantedLoopRecovery:
    @given(loop_params)
    @settings(max_examples=40, deadline=None)
    def test_all_planted_streams_recovered(self, params):
        trace = _build(params)
        result = LoopDetector().detect(trace)
        assert result.stream_count == params["n_packets"]
        for stream in result.streams:
            assert stream.size == params["replicas_per_packet"]
            assert stream.ttl_delta == params["ttl_delta"]

    @given(loop_params)
    @settings(max_examples=40, deadline=None)
    def test_streams_merge_to_one_loop(self, params):
        trace = _build(params)
        result = LoopDetector().detect(trace)
        assert result.loop_count == 1
        assert result.loops[0].prefix == PREFIX

    @given(loop_params)
    @settings(max_examples=30, deadline=None)
    def test_background_never_detected(self, params):
        builder = SyntheticTraceBuilder(rng=random.Random(params["seed"]))
        builder.add_background(max(params["background"], 50), 0.0, 60.0)
        result = LoopDetector().detect(builder.build())
        assert result.stream_count == 0

    @given(loop_params)
    @settings(max_examples=30, deadline=None)
    def test_replica_indices_unique_across_streams(self, params):
        trace = _build(params)
        streams = detect_replicas(trace)
        seen = set()
        for stream in streams:
            indices = stream.member_indices()
            assert not (indices & seen)
            seen |= indices

    @given(loop_params)
    @settings(max_examples=30, deadline=None)
    def test_stream_invariants(self, params):
        trace = _build(params)
        for stream in detect_replicas(trace):
            timestamps = [replica.timestamp for replica in stream.replicas]
            assert timestamps == sorted(timestamps)
            ttls = [replica.ttl for replica in stream.replicas]
            assert all(a - b >= 2 for a, b in zip(ttls, ttls[1:]))
            assert stream.duration >= 0


class TestDetectorConfigProperties:
    @given(loop_params, st.floats(min_value=0.0, max_value=600.0))
    @settings(max_examples=25, deadline=None)
    def test_loop_count_monotone_in_merge_gap(self, params, gap):
        """A larger merge gap can only merge more: fewer or equal loops."""
        trace = _build(params)
        small = LoopDetector(DetectorConfig(merge_gap=gap)).detect(trace)
        large = LoopDetector(
            DetectorConfig(merge_gap=gap + 60.0)
        ).detect(trace)
        assert large.loop_count <= small.loop_count

    @given(loop_params, st.integers(min_value=2, max_value=15))
    @settings(max_examples=25, deadline=None)
    def test_stream_count_monotone_in_min_size(self, params, size):
        trace = _build(params)
        strict = LoopDetector(
            DetectorConfig(min_stream_size=size + 1)
        ).detect(trace)
        lax = LoopDetector(DetectorConfig(min_stream_size=size)).detect(trace)
        assert strict.stream_count <= lax.stream_count
