"""Property suite: the chunk-level batched tier is byte-identical.

Hypothesis drives loop geometry, background volume, and — the axis the
batched tier actually cares about — the chunking of the feed.  For
every generated trace, the same ordered records go through

* the per-record reference (``process`` one record at a time),
* the batched tier (``process_chunk`` over columnar chunks), and
* the offline :class:`~repro.core.detector.LoopDetector`,

and all three must agree: same loop set, and for the two streaming
feeds identical stats and ``state_snapshot`` documents both before and
after the flush.

Every example runs twice: once as imported (numpy present on CI's main
matrix) and once with the vectorized tier force-disabled, so the
per-record fallback is exercised against the same adversarial inputs.
The no-numpy CI job runs this file with numpy genuinely absent.
"""

import random
from dataclasses import asdict
from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import vectorize
from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarTrace
from repro.traffic.synthetic import SyntheticTraceBuilder

BACKGROUND_PREFIX = IPv4Prefix.parse("198.51.100.0/24")

params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 5000),
        "n_loops": st.integers(0, 3),
        "ttl_delta": st.integers(2, 5),
        "replicas": st.integers(2, 8),
        "spacing": st.floats(0.002, 0.5),
        "gap_between_loops": st.floats(1.0, 200.0),
        "background": st.integers(0, 300),
        "span": st.sampled_from([50.0, 500.0, 5000.0]),
        "merge_gap": st.floats(5.0, 120.0),
        # Chunk sizes straddle the n >= 32 fast-tier gate and force
        # cross-chunk promotion when smaller than a loop's footprint.
        "chunk_records": st.sampled_from([1, 16, 31, 32, 33, 64, 500,
                                          65_536]),
    }
)


def _build(p):
    builder = SyntheticTraceBuilder(rng=random.Random(p["seed"]))
    if p["background"]:
        builder.add_background(p["background"], 0.0, p["span"],
                               prefixes=[BACKGROUND_PREFIX])
    entry = p["ttl_delta"] * (p["replicas"] - 1) + 2
    when = 10.0
    for i in range(p["n_loops"]):
        builder.add_loop(
            when,
            IPv4Prefix((192 << 24) | ((i % 2) << 8), 24),
            ttl_delta=p["ttl_delta"],
            n_packets=2,
            replicas_per_packet=p["replicas"],
            spacing=p["spacing"],
            packet_gap=p["spacing"] * 2,
            entry_ttl=entry,
        )
        when += p["gap_between_loops"]
    return builder.build()


def _key(loop):
    return (loop.prefix, round(loop.start, 6), round(loop.end, 6),
            loop.stream_count, loop.replica_count)


def _feed_reference(trace, config):
    detector = StreamingLoopDetector(config)
    loops = []
    for record in trace:
        loops.extend(detector.process(record.timestamp, record.data))
    return detector, loops


def _feed_chunks(trace, chunk_records, config):
    detector = StreamingLoopDetector(config)
    loops = []
    for chunk in ColumnarTrace.from_trace(trace, chunk_records).chunks:
        loops.extend(detector.process_chunk(chunk))
    return detector, loops


def _check_example(p):
    trace = _build(p)
    config = DetectorConfig(merge_gap=p["merge_gap"])

    ref, ref_loops = _feed_reference(trace, config)
    fast, fast_loops = _feed_chunks(trace, p["chunk_records"], config)

    assert asdict(fast.stats) == asdict(ref.stats)
    assert fast.state_snapshot() == ref.state_snapshot()

    ref_loops.extend(ref.flush())
    fast_loops.extend(fast.flush())
    assert list(map(_key, fast_loops)) == list(map(_key, ref_loops))
    assert asdict(fast.stats) == asdict(ref.stats)
    assert fast.state_snapshot() == ref.state_snapshot()

    offline = LoopDetector(config).detect(trace)
    assert sorted(map(_key, fast_loops)) \
        == sorted(map(_key, offline.loops))


class TestChunkTierEquivalence:
    @given(params)
    @settings(max_examples=40, deadline=None)
    def test_three_feeds_byte_identical(self, p):
        _check_example(p)
        if vectorize.HAVE_NUMPY:
            # Same example through the per-record fallback: numpy
            # present must not be a behavioral switch, only a speedup.
            with mock.patch.object(vectorize, "HAVE_NUMPY", False):
                _check_example(p)
