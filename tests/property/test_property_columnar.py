"""Property-based tests for the columnar fast path.

Two contracts, checked over Hypothesis-generated inputs:

* ``mask_mutable_fields`` (single patched bytearray) is byte-for-byte
  the four-slice concatenation it replaced, for every buffer type;
* the batched columnar kernel returns byte-identical streams to
  ``detect_replicas_indexed`` for every record set and chunking.
"""

import random
from array import array

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replica import (
    detect_replicas,
    detect_replicas_columnar,
    mask_mutable_fields,
)
from repro.net.addr import IPv4Prefix
from repro.net.columnar import ColumnarChunk, ColumnarTrace
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
BACKGROUND_PREFIX = IPv4Prefix.parse("198.51.100.0/24")


def _mask_reference(data: bytes) -> bytes:
    """The old four-slice implementation, kept inline as the oracle."""
    return data[:8] + b"\x00" + data[9:10] + b"\x00\x00" + data[12:]


packet_bytes = st.binary(min_size=12, max_size=64)


class TestMaskEquivalence:
    @given(packet_bytes)
    @settings(max_examples=200)
    def test_matches_four_slice_reference(self, data):
        assert mask_mutable_fields(data) == _mask_reference(data)

    @given(packet_bytes)
    @settings(max_examples=50)
    def test_accepts_any_buffer_type(self, data):
        expected = _mask_reference(data)
        assert mask_mutable_fields(bytearray(data)) == expected
        assert mask_mutable_fields(memoryview(data)) == expected
        # Non-zero-offset views too — the columnar kernel passes slices
        # of a shared slab, never whole buffers.
        padded = memoryview(b"\xff" * 7 + data)[7:]
        assert mask_mutable_fields(padded) == expected

    @given(packet_bytes)
    @settings(max_examples=50)
    def test_only_ttl_and_checksum_zeroed(self, data):
        masked = mask_mutable_fields(data)
        assert len(masked) == len(data)
        assert masked[8] == 0 and masked[10] == 0 and masked[11] == 0
        for i, byte in enumerate(masked):
            if i not in (8, 10, 11):
                assert byte == data[i]


loop_params = st.fixed_dictionaries(
    {
        "ttl_delta": st.integers(min_value=2, max_value=6),
        "replicas_per_packet": st.integers(min_value=3, max_value=12),
        "n_packets": st.integers(min_value=1, max_value=5),
        "spacing": st.floats(min_value=0.001, max_value=0.1),
        "seed": st.integers(min_value=0, max_value=10_000),
        "background": st.integers(min_value=0, max_value=300),
        "chunk_records": st.integers(min_value=1, max_value=500),
    }
)


def _build(params):
    builder = SyntheticTraceBuilder(rng=random.Random(params["seed"]))
    if params["background"]:
        builder.add_background(params["background"], 0.0, 60.0,
                               prefixes=[BACKGROUND_PREFIX])
    entry_ttl = params["ttl_delta"] * (params["replicas_per_packet"] - 1) + 2
    builder.add_loop(
        10.0,
        PREFIX,
        ttl_delta=params["ttl_delta"],
        n_packets=params["n_packets"],
        replicas_per_packet=params["replicas_per_packet"],
        spacing=params["spacing"],
        packet_gap=params["spacing"] * 1.5,
        entry_ttl=entry_ttl,
    )
    return builder.build()


def _stream_fp(stream):
    return (
        stream.key,
        stream.first_data,
        tuple((r.index, r.timestamp, r.ttl) for r in stream.replicas),
    )


class TestColumnarKernelProperty:
    @given(loop_params)
    @settings(max_examples=15, deadline=None)
    def test_kernel_matches_reference_for_all_geometries(self, params):
        trace = _build(params)
        ctrace = ColumnarTrace.from_trace(
            trace, chunk_records=params["chunk_records"]
        )
        columnar = detect_replicas_columnar(ctrace.chunks)
        reference = detect_replicas(trace)
        assert ([_stream_fp(s) for s in columnar]
                == [_stream_fp(s) for s in reference])

    @given(st.lists(st.binary(min_size=20, max_size=40), min_size=0,
                    max_size=30),
           st.integers(min_value=1, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_kernel_matches_reference_on_arbitrary_bytes(
        self, bodies, chunk_records
    ):
        # Raw generated bodies — including exact duplicates, which is
        # how Hypothesis finds chaining edge cases the builder never
        # produces.
        triples = [(i, float(i) * 0.01, body)
                   for i, body in enumerate(bodies)]
        from repro.core.replica import detect_replicas_indexed
        reference = detect_replicas_indexed(iter(triples))

        chunks = []
        for start in range(0, len(bodies), chunk_records):
            batch = bodies[start:start + chunk_records]
            slab = bytearray()
            offsets = array("Q")
            lengths = array("I")
            for body in batch:
                offsets.append(len(slab))
                lengths.append(len(body))
                slab.extend(body)
            chunks.append(ColumnarChunk(
                data=bytes(slab),
                timestamps=array(
                    "d", [t for _, t, _ in triples[start:start + len(batch)]]
                ),
                offsets=offsets,
                lengths=lengths,
                base_index=start,
            ))
        columnar = detect_replicas_columnar(chunks)
        assert ([_stream_fp(s) for s in columnar]
                == [_stream_fp(s) for s in reference])
