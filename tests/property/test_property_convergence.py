"""Property-based model checking of the routing protocols.

Hypothesis drives random failure/repair sequences; after the network
goes quiet, the protocols must always converge to the oracle state:

* the IGP's installed next hops match a fresh SPF over the physical
  topology;
* BGP's chosen egresses match the hot-potato rule over the converged
  IGP distances;
* packets injected after convergence are delivered loop-free whenever a
  route exists.

These invariants turn the simulator into a checkable model rather than
a demo — any protocol bug (missed LSA, stale FIB, un-cancelled timer)
shows up as a convergence violation on some generated sequence.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.failures import FailureSchedule
from repro.routing.forwarding import ForwardingEngine, PacketFate
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import backbone_topology, ring_topology

PREFIX = IPv4Prefix.parse("192.0.2.0/24")

# A failure plan: which links flap, when, and for how long.
failure_plans = st.lists(
    st.tuples(
        st.integers(0, 10_000),       # link selector (mod #links)
        st.floats(1.0, 60.0),         # start time
        st.floats(0.5, 30.0),         # downtime
    ),
    min_size=0,
    max_size=5,
)


def _build(seed: int, pops: int):
    topo = (ring_topology(max(3, pops)) if pops < 6
            else backbone_topology(pops=pops, rng=random.Random(seed)))
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topo, scheduler, rng=random.Random(seed + 1))
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(seed + 2))
    routers = topo.routers
    bgp.originate(PREFIX, routers[0])
    bgp.originate(PREFIX, routers[len(routers) // 2])
    igp.start()
    bgp.start()
    return topo, scheduler, igp, bgp


def _apply_plan(topo, scheduler, igp, plan):
    links = sorted(link.name for link in topo.links)
    schedule = FailureSchedule()
    for selector, start, downtime in plan:
        name = links[selector % len(links)]
        schedule.flap(start, name, downtime)
    schedule.apply(topo, scheduler, igp)


class TestEventualConvergence:
    @given(
        st.integers(0, 500),
        st.sampled_from([4, 5, 6, 8]),
        failure_plans,
    )
    @settings(max_examples=25, deadline=None)
    def test_igp_matches_oracle_after_quiet(self, seed, pops, plan):
        topo, scheduler, igp, bgp = _build(seed, pops)
        _apply_plan(topo, scheduler, igp, plan)
        scheduler.run(until=250.0)  # far beyond any timer
        assert igp.is_converged()
        for source in topo.routers:
            oracle = topo.shortest_paths(source)
            for dest in topo.routers:
                if dest == source:
                    continue
                expected = oracle.get(dest)
                installed = igp.next_hop(source, dest)
                if expected is None:
                    assert installed is None
                else:
                    distance, _ = expected
                    assert igp.distance(source, dest) == distance
                    # The installed hop must lie on *a* shortest path.
                    hops = igp.next_hop_set(source, dest)
                    assert installed in hops
                    for hop in hops:
                        link = topo.link_between(source, hop)
                        hop_distance = igp.distance(hop, dest)
                        assert hop_distance is not None
                        assert (link.cost_from(source) + hop_distance
                                == distance)

    @given(
        st.integers(0, 500),
        st.sampled_from([4, 6, 8]),
        failure_plans,
    )
    @settings(max_examples=15, deadline=None)
    def test_bgp_hot_potato_after_quiet(self, seed, pops, plan):
        topo, scheduler, igp, bgp = _build(seed, pops)
        _apply_plan(topo, scheduler, igp, plan)
        scheduler.run(until=250.0)
        routers = topo.routers
        egresses = {routers[0], routers[len(routers) // 2]}
        for router in routers:
            chosen = bgp.chosen_egress(router, PREFIX)
            reachable = {
                egress for egress in egresses
                if igp.distance(router, egress) is not None
            }
            if not reachable:
                assert chosen is None
                continue
            assert chosen is not None
            best = min(
                (igp.distance(router, egress), egress)
                for egress in reachable
            )
            assert (igp.distance(router, chosen), chosen) == best

    @given(
        st.integers(0, 500),
        failure_plans,
    )
    @settings(max_examples=15, deadline=None)
    def test_post_convergence_forwarding_is_loop_free(self, seed, plan):
        topo, scheduler, igp, bgp = _build(seed, 6)
        engine = ForwardingEngine(topo, scheduler, igp, bgp,
                                  rng=random.Random(seed + 3))
        _apply_plan(topo, scheduler, igp, plan)
        scheduler.run(until=250.0)
        rng = random.Random(seed + 4)
        audits = []
        for i, ingress in enumerate(topo.routers):
            ip = IPv4Header(src=IPv4Address.parse("10.0.0.9"),
                            dst=PREFIX.random_address(rng), ttl=64,
                            identification=i)
            packet = Packet.build(ip, UdpHeader(src_port=1, dst_port=2),
                                  b"")
            audits.append(engine.inject(packet, ingress))
        scheduler.run(until=300.0)
        for audit in audits:
            assert not audit.looped
            assert audit.fate in (PacketFate.DELIVERED,
                                  PacketFate.NO_ROUTE)
