"""Property-based equivalence: streaming detector == offline detector.

Hypothesis drives the loop geometry and background volume; for every
generated trace the streaming detector must emit exactly the offline
detector's loop set.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder

BACKGROUND_PREFIX = IPv4Prefix.parse("198.51.100.0/24")

params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 5000),
        "n_loops": st.integers(0, 4),
        "ttl_delta": st.integers(2, 5),
        "replicas": st.integers(2, 10),
        "spacing": st.floats(0.002, 0.5),
        "gap_between_loops": st.floats(1.0, 200.0),
        "background": st.integers(0, 400),
        "merge_gap": st.floats(5.0, 120.0),
    }
)


def _build(p):
    builder = SyntheticTraceBuilder(rng=random.Random(p["seed"]))
    if p["background"]:
        builder.add_background(p["background"], 0.0, 500.0,
                               prefixes=[BACKGROUND_PREFIX])
    entry = p["ttl_delta"] * (p["replicas"] - 1) + 2
    when = 10.0
    for i in range(p["n_loops"]):
        builder.add_loop(
            when,
            IPv4Prefix((192 << 24) | ((i % 2) << 8), 24),
            ttl_delta=p["ttl_delta"],
            n_packets=2,
            replicas_per_packet=p["replicas"],
            spacing=p["spacing"],
            packet_gap=p["spacing"] * 2,
            entry_ttl=entry,
        )
        when += p["gap_between_loops"]
    return builder.build()


def _key(loop):
    return (loop.prefix, round(loop.start, 6), round(loop.end, 6),
            loop.stream_count, loop.replica_count)


@given(params)
@settings(max_examples=40, deadline=None)
def test_streaming_equals_offline(p):
    trace = _build(p)
    config = DetectorConfig(merge_gap=p["merge_gap"])
    offline = LoopDetector(config).detect(trace)
    online = StreamingLoopDetector(config).process_trace(trace)
    assert sorted(map(_key, online)) == sorted(map(_key, offline.loops))


@given(params)
@settings(max_examples=20, deadline=None)
def test_streaming_in_two_halves_equals_whole(p):
    """Feeding the records through process() one by one (collecting
    emissions along the way plus a final flush) equals process_trace."""
    trace = _build(p)
    whole = StreamingLoopDetector().process_trace(trace)
    piecewise_detector = StreamingLoopDetector()
    piecewise = []
    for record in trace:
        piecewise.extend(
            piecewise_detector.process(record.timestamp, record.data)
        )
    piecewise.extend(piecewise_detector.flush())
    assert sorted(map(_key, piecewise)) == sorted(map(_key, whole))
