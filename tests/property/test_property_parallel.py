"""Property-based tests: the sharded engine is exact for all geometries.

For every loop geometry Hypothesis generates, ``ParallelLoopDetector``
with 1, 2, and 4 workers must return byte-identical streams and loops to
the offline ``LoopDetector``, which in turn must agree with the online
``StreamingLoopDetector`` — the three engines are one algorithm.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import LoopDetector
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.parallel.engine import ParallelLoopDetector
from repro.sim import table1_scenario
from repro.traffic.synthetic import SyntheticTraceBuilder

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
BACKGROUND_PREFIX = IPv4Prefix.parse("198.51.100.0/24")

loop_params = st.fixed_dictionaries(
    {
        "ttl_delta": st.integers(min_value=2, max_value=6),
        "replicas_per_packet": st.integers(min_value=3, max_value=12),
        "n_packets": st.integers(min_value=1, max_value=5),
        "spacing": st.floats(min_value=0.001, max_value=0.1),
        "seed": st.integers(min_value=0, max_value=10_000),
        "background": st.integers(min_value=0, max_value=300),
    }
)


def _build(params):
    builder = SyntheticTraceBuilder(rng=random.Random(params["seed"]))
    if params["background"]:
        builder.add_background(params["background"], 0.0, 60.0,
                               prefixes=[BACKGROUND_PREFIX])
    entry_ttl = params["ttl_delta"] * (params["replicas_per_packet"] - 1) + 2
    builder.add_loop(
        10.0,
        PREFIX,
        ttl_delta=params["ttl_delta"],
        n_packets=params["n_packets"],
        replicas_per_packet=params["replicas_per_packet"],
        spacing=params["spacing"],
        packet_gap=params["spacing"] * 1.5,
        entry_ttl=entry_ttl,
    )
    return builder.build()


def _stream_fp(stream):
    return (
        stream.key,
        tuple((r.index, r.timestamp, r.ttl) for r in stream.replicas),
    )


def _loop_fp(loop):
    return (str(loop.prefix),
            tuple(sorted(_stream_fp(s) for s in loop.streams)))


def _assert_engines_agree(trace):
    offline = LoopDetector().detect(trace)
    streaming_loops = StreamingLoopDetector(offline.config).process_trace(trace)
    assert (sorted(_loop_fp(l) for l in streaming_loops)
            == sorted(_loop_fp(l) for l in offline.loops))
    for jobs in (1, 2, 4):
        parallel = ParallelLoopDetector(jobs=jobs).detect(trace)
        assert ([_stream_fp(s) for s in parallel.candidate_streams]
                == [_stream_fp(s) for s in offline.candidate_streams]), jobs
        assert ([_stream_fp(s) for s in parallel.streams]
                == [_stream_fp(s) for s in offline.streams]), jobs
        assert ([_loop_fp(l) for l in parallel.loops]
                == [_loop_fp(l) for l in offline.loops]), jobs
        assert (parallel.looped_packet_count
                == offline.looped_packet_count), jobs


class TestParallelExactness:
    @given(loop_params)
    @settings(max_examples=15, deadline=None)
    def test_all_engines_agree_on_synthetic_traces(self, params):
        _assert_engines_agree(_build(params))

    @given(loop_params, st.integers(min_value=2, max_value=9))
    @settings(max_examples=10, deadline=None)
    def test_shard_count_never_changes_results(self, params, shards):
        trace = _build(params)
        offline = LoopDetector().detect(trace)
        parallel = ParallelLoopDetector(jobs=1, shards=shards).detect(trace)
        assert ([_stream_fp(s) for s in parallel.streams]
                == [_stream_fp(s) for s in offline.streams])
        assert ([_loop_fp(l) for l in parallel.loops]
                == [_loop_fp(l) for l in offline.loops])


class TestParallelOnSimulatedTraces:
    def test_all_engines_agree_on_backbone_scenario(self):
        trace = table1_scenario("backbone1", duration=40.0).run().trace
        _assert_engines_agree(trace)
