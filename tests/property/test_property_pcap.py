"""Property-based tests for pcap round-trips and pipeline composition."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import LoopDetector
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.net.anonymize import PrefixPreservingAnonymizer
from repro.net.pcap import read_pcap, write_pcap
from repro.net.trace import Trace, TraceRecord
from repro.traffic.synthetic import SyntheticTraceBuilder

records = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6),
        st.binary(min_size=0, max_size=80),
    ),
    min_size=0,
    max_size=40,
)


class TestPcapRoundTripProperty:
    @given(items=records)
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_records_round_trip(self, items, tmp_path_factory):
        path = tmp_path_factory.mktemp("pcap") / "t.pcap"
        trace = Trace(snaplen=100)
        for timestamp, data in sorted(items, key=lambda item: item[0]):
            trace.append(TraceRecord(timestamp=timestamp, data=data,
                                     wire_length=len(data)))
        write_pcap(trace, path)
        loaded = read_pcap(path)
        assert len(loaded) == len(trace)
        for original, reloaded in zip(trace, loaded):
            assert reloaded.data == original.data
            assert reloaded.wire_length == original.wire_length
            assert abs(reloaded.timestamp - original.timestamp) < 1e-5


scenario = st.fixed_dictionaries({
    "seed": st.integers(0, 3000),
    "replicas": st.integers(3, 8),
    "background": st.integers(10, 120),
})


class TestPipelineComposition:
    @given(params=scenario)
    @settings(max_examples=15, deadline=None)
    def test_anonymize_then_stream_equals_offline_plain(self, params,
                                                        tmp_path_factory):
        """The full production pipeline — capture, anonymize, write pcap,
        read back, stream-detect — finds the same loop structure as
        offline detection on the raw trace."""
        builder = SyntheticTraceBuilder(rng=random.Random(params["seed"]))
        builder.add_background(params["background"], 0.0, 60.0,
                               prefixes=[IPv4Prefix.parse(
                                   "198.51.100.0/24")])
        builder.add_loop(10.0, IPv4Prefix.parse("192.0.2.0/24"),
                         n_packets=2,
                         replicas_per_packet=params["replicas"],
                         spacing=0.01, packet_gap=0.015, entry_ttl=40)
        trace = builder.build()

        baseline = LoopDetector().detect(trace)

        anonymizer = PrefixPreservingAnonymizer(
            b"pipeline-composition-test-key-32"
        )
        masked = anonymizer.anonymize_trace(trace)
        path = tmp_path_factory.mktemp("pipe") / "masked.pcap"
        write_pcap(masked, path)
        reloaded = read_pcap(path)
        online = StreamingLoopDetector().process_trace(reloaded)

        assert len(online) == baseline.loop_count
        # pcap stores microsecond timestamps: compare windows with a
        # tolerance rather than rounding (rounding can straddle digits).
        online_sorted = sorted(online, key=lambda loop: loop.start)
        expected_sorted = sorted(baseline.loops,
                                 key=lambda loop: loop.start)
        for got, want in zip(online_sorted, expected_sorted):
            assert abs(got.start - want.start) < 5e-5
            assert abs(got.end - want.end) < 5e-5
            assert got.stream_count == want.stream_count
            assert got.replica_count == want.replica_count
