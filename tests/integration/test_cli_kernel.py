"""CLI-level kernel-tier parity: --kernel never changes the answer.

Every tier (and the parallel engine on top of the shared-memory
fan-out) must print byte-identical JSON — the tier picks an
implementation, not a result.  Plus flag semantics: an explicit
--kernel overrides the --columnar ingest default.
"""

import random

import pytest

from repro.cli import main
from repro.core.replica import KERNEL_TIERS
from repro.net.addr import IPv4Prefix
from repro.net.pcap import write_pcap
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def loop_pcap(tmp_path_factory):
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    builder.add_background(150, 0.0, 30.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(5.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=2,
                     replicas_per_packet=5, spacing=0.01, entry_ttl=40)
    path = tmp_path_factory.mktemp("cli_kernel") / "loop.pcap"
    write_pcap(builder.build(), path)
    return path


def _run(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    assert code == 0, out
    return out


class TestKernelParity:
    def test_json_identical_across_tiers(self, loop_pcap, capsys):
        outputs = {
            tier: _run(capsys, ["detect", str(loop_pcap), "--json",
                                "--kernel", tier])
            for tier in KERNEL_TIERS
        }
        assert len(set(outputs.values())) == 1
        assert '"loops"' in outputs["auto"]

    def test_json_identical_with_parallel_shm_fanout(self, loop_pcap,
                                                     capsys):
        import json

        single = json.loads(_run(capsys, ["detect", str(loop_pcap),
                                          "--json",
                                          "--kernel", "reference"]))
        parallel = json.loads(_run(capsys, ["detect", str(loop_pcap),
                                            "--json",
                                            "--kernel", "vectorized",
                                            "--jobs", "2"]))
        # The parallel run adds wall-clock gauges and stamps the link
        # name; every detection key must match byte for byte.
        for key in single:
            if key in ("metrics", "trace"):
                continue
            assert parallel[key] == single[key], key
        single["trace"].pop("link")
        parallel["trace"].pop("link")
        assert parallel["trace"] == single["trace"]

    def test_summary_identical_across_tiers(self, loop_pcap, capsys):
        outputs = {
            tier: _run(capsys, ["detect", str(loop_pcap),
                                "--kernel", tier])
            for tier in ("reference", "columnar", "vectorized")
        }
        assert len(set(outputs.values())) == 1
        assert "routing loops: 1" in outputs["reference"]

    def test_kernel_overrides_columnar_flag(self, loop_pcap, capsys):
        # --no-columnar alone means the reference path; an explicit
        # --kernel wins over it and still prints the same answer.
        reference = _run(capsys, ["detect", str(loop_pcap), "--json",
                                  "--no-columnar"])
        overridden = _run(capsys, ["detect", str(loop_pcap), "--json",
                                   "--no-columnar",
                                   "--kernel", "vectorized"])
        assert overridden == reference

    def test_rejects_unknown_tier(self, loop_pcap, capsys):
        with pytest.raises(SystemExit):
            main(["detect", str(loop_pcap), "--kernel", "simd"])
        capsys.readouterr()

    def test_monitor_accepts_kernel(self, loop_pcap, capsys):
        out = _run(capsys, ["monitor", str(loop_pcap), "--no-dashboard",
                            "--kernel", "auto"])
        assert "routing loops:" in out
