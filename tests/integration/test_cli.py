"""Tests for the command-line interface."""

import random

import pytest

from repro.cli import main
from repro.net.addr import IPv4Prefix
from repro.net.pcap import write_pcap
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture
def pcap_with_loop(tmp_path):
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    builder.add_background(100, 0.0, 30.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(5.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=2,
                     replicas_per_packet=5, spacing=0.01, entry_ttl=40)
    path = tmp_path / "loop.pcap"
    write_pcap(builder.build(), path)
    return path


class TestDetectCommand:
    def test_detect_summary(self, pcap_with_loop, capsys):
        code = main(["detect", str(pcap_with_loop)])
        assert code == 0
        out = capsys.readouterr().out
        assert "validated streams: 2" in out
        assert "routing loops: 1" in out

    def test_detect_with_figures(self, pcap_with_loop, capsys):
        code = main(["detect", str(pcap_with_loop), "--figures"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Figure 9" in out
        assert "escape analysis" in out

    def test_detect_missing_file(self, capsys):
        code = main(["detect", "/no/such/file.pcap"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_detect_options_forwarded(self, pcap_with_loop, capsys):
        code = main(["detect", str(pcap_with_loop),
                     "--min-stream-size", "9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "validated streams: 0" in out


class TestSimulateCommand:
    def test_simulate_and_pcap_out(self, tmp_path, capsys):
        out_pcap = tmp_path / "sim.pcap"
        code = main(["simulate", "backbone3", "--duration", "20",
                     "--pcap", str(out_pcap)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ground-truth looped packets" in out
        assert out_pcap.exists()

    def test_unknown_scenario(self, capsys):
        code = main(["simulate", "backbone99", "--duration", "20"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestReportCommand:
    def test_report_prints_all_figures(self, capsys):
        code = main(["report", "backbone3", "--duration", "20"])
        assert code == 0
        out = capsys.readouterr().out
        for figure in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                       "Figure 6", "Figure 7", "Figure 8", "Figure 9"):
            assert figure in out


class TestAnonymizeCommand:
    def test_anonymize_round_trip(self, pcap_with_loop, tmp_path, capsys):
        from repro.net.pcap import read_pcap

        out = tmp_path / "anon.pcap"
        code = main(["anonymize", str(pcap_with_loop), str(out),
                     "--key", "a-sufficiently-long-secret-key"])
        assert code == 0
        assert "anonymized" in capsys.readouterr().out
        original = read_pcap(pcap_with_loop)
        masked = read_pcap(out)
        assert len(masked) == len(original)
        assert masked[0].data[16:20] != original[0].data[16:20]

    def test_anonymized_detection_equivalent(self, pcap_with_loop,
                                             tmp_path, capsys):
        out = tmp_path / "anon.pcap"
        main(["anonymize", str(pcap_with_loop), str(out),
              "--key", "a-sufficiently-long-secret-key"])
        capsys.readouterr()
        code = main(["detect", str(out)])
        assert code == 0
        assert "routing loops: 1" in capsys.readouterr().out

    def test_short_key_rejected(self, pcap_with_loop, tmp_path, capsys):
        out = tmp_path / "anon.pcap"
        code = main(["anonymize", str(pcap_with_loop), str(out),
                     "--key", "short"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestParallelDetect:
    def test_detect_jobs_matches_offline_summary(self, pcap_with_loop,
                                                 capsys):
        code = main(["detect", str(pcap_with_loop)])
        assert code == 0
        offline_out = capsys.readouterr().out
        code = main(["detect", str(pcap_with_loop), "--jobs", "2"])
        assert code == 0
        parallel_out = capsys.readouterr().out
        for line in ("candidate streams:", "validated streams:",
                     "routing loops:", "looped packets:", "looped records:"):
            offline_line = next(l for l in offline_out.splitlines()
                                if l.startswith(line))
            assert offline_line in parallel_out
        assert "parallel: 2 worker(s)" in parallel_out
        assert "shard skew" in parallel_out

    def test_detect_jobs_with_figures(self, pcap_with_loop, capsys):
        code = main(["detect", str(pcap_with_loop), "--jobs", "2",
                     "--figures"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "parallel: 2 worker(s)" in out

    def test_streaming_and_jobs_conflict(self, pcap_with_loop, capsys):
        code = main(["detect", str(pcap_with_loop), "--streaming",
                     "--jobs", "2"])
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err


class TestBatchCommand:
    def test_batch_over_pcaps(self, pcap_with_loop, capsys):
        code = main(["batch", str(pcap_with_loop), str(pcap_with_loop),
                     "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Batch detection" in out
        assert "totals:" in out
        assert "2 loops" in out

    def test_batch_scenario(self, capsys):
        code = main(["batch", "backbone1", "--duration", "20"])
        assert code == 0
        assert "backbone1" in capsys.readouterr().out

    def test_batch_unknown_target(self, capsys):
        code = main(["batch", "no-such-target"])
        assert code == 1
        assert "error" in capsys.readouterr().err
