"""CLI observability flags: --metrics-out, --trace-out, --progress,
--log-level, and the metrics/lifecycle sections of --json output."""

import json
import random

import pytest

from repro.cli import main
from repro.net.addr import IPv4Prefix
from repro.net.pcap import write_pcap
from repro.obs.metrics import get_registry, parse_prometheus
from repro.obs.tracing import read_trace, spans
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture
def pcap_with_loop(tmp_path):
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    builder.add_background(100, 0.0, 30.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(5.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=2,
                     replicas_per_packet=5, spacing=0.01, entry_ttl=40)
    path = tmp_path / "loop.pcap"
    write_pcap(builder.build(), path)
    return path


class TestMetricsOut:
    def test_prometheus_file(self, pcap_with_loop, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main(["detect", str(pcap_with_loop),
                     "--metrics-out", str(out)])
        assert code == 0
        parsed = parse_prometheus(out.read_text())
        assert parsed["counters"]["detect_loops_total"] == 1
        assert parsed["counters"]["detect_records_total"] == 110

    def test_json_file_by_suffix(self, pcap_with_loop, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main(["detect", str(pcap_with_loop),
                     "--metrics-out", str(out)])
        assert code == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["detect_loops_total"] == 1

    def test_registry_restored_after_run(self, pcap_with_loop, tmp_path,
                                         capsys):
        before = get_registry()
        main(["detect", str(pcap_with_loop),
              "--metrics-out", str(tmp_path / "m.prom")])
        assert get_registry() is before

    def test_streaming_metrics(self, pcap_with_loop, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main(["detect", str(pcap_with_loop), "--streaming",
                     "--metrics-out", str(out)])
        assert code == 0
        parsed = parse_prometheus(out.read_text())
        assert parsed["counters"]["streaming_records_total"] == 110
        assert parsed["counters"]["streaming_loops_emitted_total"] == 1

    def test_parallel_metrics(self, pcap_with_loop, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main(["detect", str(pcap_with_loop), "--jobs", "2",
                     "--metrics-out", str(out)])
        assert code == 0
        parsed = parse_prometheus(out.read_text())
        assert parsed["counters"]["parallel_records_total"] == 110
        assert parsed["gauges"]["parallel_jobs"] == 2


class TestDetectJson:
    def test_json_includes_metrics_section(self, pcap_with_loop, capsys):
        code = main(["detect", str(pcap_with_loop), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["detect_loops_total"] == 1
        assert payload["summary"]["loops"] == 1


class TestTraceOut:
    def test_detect_trace_has_phases_and_loops(self, pcap_with_loop,
                                               tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["detect", str(pcap_with_loop),
                     "--trace-out", str(out)])
        assert code == 0
        records = read_trace(out)
        names = {r["name"] for r in records}
        assert {"detect.replicas", "detect.validate",
                "detect.merge"} <= names
        assert len(spans(records, "loop")) == 1

    def test_simulate_trace_and_lifecycle(self, tmp_path, capsys):
        out = tmp_path / "sim.jsonl"
        code = main(["simulate", "backbone3", "--duration", "20",
                     "--trace-out", str(out)])
        assert code == 0
        assert "loop lifecycle:" in capsys.readouterr().out
        records = read_trace(out)
        names = {r["name"] for r in records}
        # Control-plane events plus detection-pipeline phases in one file.
        assert "spf_run" in names
        assert "igp_fib_install" in names
        assert "detect.merge" in names


class TestSimulateJson:
    def test_json_carries_route_cache_and_metrics(self, capsys):
        code = main(["simulate", "backbone3", "--duration", "20",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["route_cache"]["enabled"] is True
        assert payload["route_cache"]["hits"] > 0
        assert "ttl_expiries" in payload["ground_truth"]
        counters = payload["metrics"]["counters"]
        assert counters["sim_packets_injected_total"] > 0
        assert counters["monitor_packets_seen_total"] > 0

    def test_json_with_trace_adds_lifecycle(self, tmp_path, capsys):
        code = main(["simulate", "backbone3", "--duration", "20",
                     "--json", "--trace-out", str(tmp_path / "t.jsonl")])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["lifecycle"]["loops"] == payload["summary"]["loops"]


class TestProgressAndLogging:
    def test_progress_logs_heartbeats(self, pcap_with_loop, capsys):
        code = main(["detect", str(pcap_with_loop), "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "read" in err and "done," in err

    def test_error_goes_through_logger(self, capsys):
        code = main(["detect", "/no/such/file.pcap"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")

    def test_log_level_error_silences_warnings(self, tmp_path, capsys):
        # A truncated pcap warns at warning level; --log-level error
        # hides the log line (the result still prints).
        source = tmp_path / "trunc.pcap"
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_background(20, 0.0, 5.0)
        write_pcap(builder.build(), source)
        data = source.read_bytes()
        source.write_bytes(data[:-7])
        with pytest.warns(Warning):
            code = main(["detect", str(source), "--log-level", "error"])
        assert code == 0
        assert "mid-record" not in capsys.readouterr().err

    def test_truncated_pcap_logged_with_filename(self, tmp_path, capsys):
        source = tmp_path / "trunc.pcap"
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_background(20, 0.0, 5.0)
        write_pcap(builder.build(), source)
        data = source.read_bytes()
        source.write_bytes(data[:-7])
        with pytest.warns(Warning):
            code = main(["detect", str(source)])
        assert code == 0
        err = capsys.readouterr().err
        assert "trunc.pcap" in err
        assert "mid-record" in err

    def test_truncation_counter_in_metrics(self, tmp_path, capsys):
        source = tmp_path / "trunc.pcap"
        builder = SyntheticTraceBuilder(rng=random.Random(1))
        builder.add_background(20, 0.0, 5.0)
        write_pcap(builder.build(), source)
        data = source.read_bytes()
        source.write_bytes(data[:-7])
        out = tmp_path / "m.prom"
        with pytest.warns(Warning):
            code = main(["detect", str(source), "--metrics-out", str(out)])
        assert code == 0
        parsed = parse_prometheus(out.read_text())
        assert parsed["counters"]["pcap_truncated_records_total"] == 1


class TestMonitorCommand:
    def test_ascii_dashboard_and_summary(self, pcap_with_loop, capsys):
        assert main(["monitor", str(pcap_with_loop)]) == 0
        out = capsys.readouterr().out
        assert "routing-loop live monitor" in out
        assert "looped share per minute (Sec. VI)" in out

    def test_no_dashboard_summary(self, pcap_with_loop, capsys):
        assert main(["monitor", str(pcap_with_loop),
                     "--no-dashboard"]) == 0
        out = capsys.readouterr().out
        assert "records: 110" in out
        assert "routing loops:" in out

    def test_alerts_and_dashboard_out(self, pcap_with_loop, tmp_path,
                                      capsys):
        dashboard = tmp_path / "dash.html"
        assert main(["monitor", str(pcap_with_loop), "--alerts",
                     "--dashboard-out", str(dashboard)]) == 0
        html = dashboard.read_text(encoding="utf-8")
        assert "Looped traffic share per minute" in html
        assert "<svg" in html
        # The synthetic loop pushes the looped share over the Sec. VI
        # ceiling within minute 0, so the alert must have fired.
        out = capsys.readouterr().out
        assert "looped_loss_share" in out

    def test_metrics_out_composes(self, pcap_with_loop, tmp_path,
                                  capsys):
        metrics = tmp_path / "metrics.prom"
        assert main(["monitor", str(pcap_with_loop), "--alerts",
                     "--metrics-out", str(metrics)]) == 0
        parsed = parse_prometheus(metrics.read_text(encoding="utf-8"))
        assert parsed["counters"]["alerts_fired_total"] >= 1


class TestServeEndToEnd:
    def test_serve_scrapes_during_run(self, pcap_with_loop, tmp_path):
        """Full black-box run: spawn the CLI with --serve 0 --linger,
        parse the printed endpoint URL, scrape /metrics and /healthz
        while it lingers, then let it exit cleanly."""
        import os
        import subprocess
        import sys
        import urllib.request

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.cli import main; raise SystemExit(main())",
             "monitor", str(pcap_with_loop), "--serve", "0",
             "--alerts", "--no-dashboard", "--linger", "20"],
            cwd="/root/repo", env=env,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert line.startswith("monitoring endpoints at http://")
            url = line.rsplit(None, 1)[-1]

            def fetch(path):
                with urllib.request.urlopen(url + path,
                                            timeout=10.0) as resp:
                    return resp.read().decode("utf-8")

            deadline = 100
            while True:
                health = json.loads(fetch("/healthz"))
                if health["finished"]:
                    break
                deadline -= 1
                assert deadline > 0, "stream never finished"
            assert health["records"] == 110
            parsed = parse_prometheus(fetch("/metrics"))
            assert parsed["counters"]["alerts_fired_total"] >= 1
            assert "<svg" in fetch("/")
        finally:
            process.terminate()
            process.wait(timeout=10.0)
