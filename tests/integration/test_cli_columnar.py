"""CLI-level parity: --columnar and --no-columnar print the same thing.

The flag selects an execution path, never an answer — every command and
output mode must produce byte-identical stdout either way.  Plus the
--profile satellite: a pstats-loadable profile lands where asked.
"""

import pstats
import random

import pytest

from repro.cli import main
from repro.net.addr import IPv4Prefix
from repro.net.pcap import write_pcap
from repro.traffic.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def loop_pcap(tmp_path_factory):
    builder = SyntheticTraceBuilder(rng=random.Random(0))
    builder.add_background(100, 0.0, 30.0,
                           prefixes=[IPv4Prefix.parse("198.51.100.0/24")])
    builder.add_loop(5.0, IPv4Prefix.parse("192.0.2.0/24"), n_packets=2,
                     replicas_per_packet=5, spacing=0.01, entry_ttl=40)
    path = tmp_path_factory.mktemp("cli_columnar") / "loop.pcap"
    write_pcap(builder.build(), path)
    return path


def _run(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    assert code == 0, out
    return out


class TestColumnarFlagParity:
    def _both(self, capsys, argv_tail):
        base = ["detect", *argv_tail]
        columnar = _run(capsys, [*base[:1], base[1],
                                 "--columnar", *base[2:]])
        reference = _run(capsys, [*base[:1], base[1],
                                  "--no-columnar", *base[2:]])
        assert columnar == reference
        return columnar

    def test_detect_summary_identical(self, loop_pcap, capsys):
        out = self._both(capsys, [str(loop_pcap)])
        assert "validated streams: 2" in out
        assert "routing loops: 1" in out

    def test_detect_figures_identical(self, loop_pcap, capsys):
        out = self._both(capsys, [str(loop_pcap), "--figures"])
        assert "Figure 2" in out

    def test_detect_json_identical(self, loop_pcap, capsys):
        out = self._both(capsys, [str(loop_pcap), "--json"])
        assert '"loops"' in out

    def test_detect_streaming_identical(self, loop_pcap, capsys):
        out = self._both(capsys, [str(loop_pcap), "--streaming"])
        assert "routing loops: 1" in out

    def test_detect_options_identical(self, loop_pcap, capsys):
        out = self._both(capsys, [str(loop_pcap),
                                  "--min-stream-size", "9"])
        assert "validated streams: 0" in out

    def test_detect_parallel_identical(self, loop_pcap, capsys):
        columnar = _run(capsys, ["detect", str(loop_pcap), "--jobs", "2",
                                 "--columnar"])
        reference = _run(capsys, ["detect", str(loop_pcap), "--jobs", "2",
                                  "--no-columnar"])
        # The instrumentation block reports fan-out payload sizes, which
        # legitimately differ between the two paths; everything above it
        # (the detection summary) must match.
        def summary(text):
            return text.split("parallel:")[0]

        assert summary(columnar) == summary(reference)
        assert "fan-out payload:" in columnar

    def test_monitor_identical(self, loop_pcap, capsys):
        columnar = _run(capsys, ["monitor", str(loop_pcap),
                                 "--no-dashboard", "--columnar"])
        reference = _run(capsys, ["monitor", str(loop_pcap),
                                  "--no-dashboard", "--no-columnar"])
        assert columnar == reference


class TestProfileFlag:
    def test_detect_profile_writes_pstats(self, loop_pcap, tmp_path,
                                          capsys):
        out_path = tmp_path / "detect.pstats"
        _run(capsys, ["detect", str(loop_pcap),
                      "--profile", str(out_path)])
        assert out_path.exists()
        stats = pstats.Stats(str(out_path))
        assert stats.total_calls > 0

    def test_batch_profile_writes_pstats(self, loop_pcap, tmp_path,
                                         capsys):
        out_path = tmp_path / "batch.pstats"
        _run(capsys, ["batch", str(loop_pcap),
                      "--profile", str(out_path)])
        assert out_path.exists()
        assert pstats.Stats(str(out_path)).total_calls > 0

    def test_profile_not_written_without_flag(self, loop_pcap, tmp_path,
                                              capsys):
        _run(capsys, ["detect", str(loop_pcap)])
        assert not list(tmp_path.iterdir())


class TestBatchColumnarParity:
    def test_batch_pcap_identical(self, loop_pcap, capsys):
        import re

        columnar = _run(capsys, ["batch", str(loop_pcap), "--columnar"])
        reference = _run(capsys, ["batch", str(loop_pcap),
                                  "--no-columnar"])

        # Wall-clock columns (2-decimal seconds) legitimately vary
        # between runs; every detection number must match.
        def normalize(text):
            return re.sub(r"\d+\.\d\d", "X", text)

        assert normalize(columnar) == normalize(reference)
