"""End-to-end integration: simulate → capture → detect → score.

These tests close the loop the paper could not: the simulator's audit
channel gives per-packet ground truth, so detector precision and recall
are measured directly rather than argued.
"""

import random

import pytest

from repro.core.detector import DetectorConfig, LoopDetector
from repro.net.pcap import read_pcap, write_pcap
from repro.sim.backbone import BackboneScenario, ScenarioConfig


@pytest.fixture(scope="module")
def run():
    from repro.routing.linkstate import LinkStateTimers

    config = ScenarioConfig(
        name="integration",
        seed=11,
        pops=6,
        extra_edges=2,
        duration=90.0,
        rate_pps=400.0,
        n_prefixes=60,
        n_flows=400,
        igp_flaps=4,
        flap_downtime=(3.0, 10.0),
        bgp_withdrawals=2,
        withdrawal_holdtime=20.0,
        igp_timers=LinkStateTimers(fib_update_delay=0.4,
                                   fib_update_jitter=1.2),
    )
    return BackboneScenario(config).run(record_crossings=True)


@pytest.fixture(scope="module")
def detection(run):
    return LoopDetector().detect(run.trace)


class TestDetectionAgainstGroundTruth:
    def test_loops_exist_and_are_detected(self, run, detection):
        assert run.ground_truth_looped > 0
        assert detection.stream_count > 0
        assert detection.loop_count > 0

    def test_recall_on_monitored_link(self, run, detection):
        """Nearly all packets that looped across the monitored direction
        (>= 3 crossings to satisfy the size rule) appear as validated
        streams."""
        from_router, to_router = run.monitor_direction
        wanted = f"{from_router}->{to_router}"
        detectable = 0
        for audit in run.engine.audits:
            if not audit.looped:
                continue
            crossings = sum(1 for _, _, direction, _ in audit.crossings
                            if direction == wanted)
            if crossings >= 3:
                detectable += 1
        assert detectable > 0
        recall = detection.stream_count / detectable
        assert recall >= 0.8

    def test_precision_loop_windows_match_events(self, run, detection):
        """Every detected loop overlaps a window when some audited packet
        was genuinely looping (no phantom loops)."""
        loop_windows = []
        for audit in run.engine.audits:
            if audit.looped:
                loop_windows.append((audit.injected_at, audit.fate_time))
        for loop in detection.loops:
            overlapping = any(
                start <= loop.end and loop.start <= end
                for start, end in loop_windows
            )
            assert overlapping, f"phantom loop at {loop.start}"

    def test_detected_ttl_deltas_match_loop_geometry(self, run, detection):
        """TTL deltas correspond to real loop sizes: at least 2, at most
        the router count."""
        for stream in detection.streams:
            assert 2 <= stream.ttl_delta <= len(run.topology.routers)

    def test_replica_bytes_are_real_trace_bytes(self, run, detection):
        from repro.core.replica import mask_mutable_fields

        for stream in detection.streams[:10]:
            keys = {
                mask_mutable_fields(run.trace[replica.index].data)
                for replica in stream.replicas
            }
            assert keys == {stream.key}


class TestPcapRoundTripIntegration:
    def test_detection_identical_through_pcap(self, run, detection,
                                              tmp_path):
        path = tmp_path / "monitor.pcap"
        write_pcap(run.trace, path)
        reloaded = read_pcap(path)
        result = LoopDetector().detect(reloaded)
        assert result.stream_count == detection.stream_count
        assert result.loop_count == detection.loop_count


class TestAblationConsistency:
    def test_merge_gap_insensitivity(self, run):
        """The paper's footnote: 1/2/5-minute merge gaps give similar
        loop counts."""
        counts = {}
        for gap in (60.0, 120.0, 300.0):
            config = DetectorConfig(merge_gap=gap)
            counts[gap] = LoopDetector(config).detect(run.trace).loop_count
        assert counts[120.0] <= counts[60.0]
        assert counts[300.0] <= counts[120.0]
        assert counts[60.0] - counts[300.0] <= max(2, counts[60.0] // 2)

    def test_validation_only_removes_streams(self, run):
        strict = LoopDetector().detect(run.trace)
        lax = LoopDetector(
            DetectorConfig(check_prefix_consistency=False)
        ).detect(run.trace)
        assert strict.stream_count <= lax.stream_count
