"""The cached fast path is observationally identical to the reference path.

The forwarding engine's epoch-versioned route cache is a pure
optimization: for any scenario — including convergence windows where
transient loops form — the cached engine and the ``route_cache=False``
reference engine must produce the same ``PacketAudit`` stream and
byte-identical pcap output.  This is the property the whole PR rests on:
the paper's Table II counts come from the monitor trace, so a single
divergent byte could change what the detector sees.
"""

from __future__ import annotations

import pytest

from repro.core.detector import LoopDetector
from repro.net.pcap import write_pcap
from repro.routing.linkstate import LinkStateTimers
from repro.sim.backbone import BackboneScenario, ScenarioConfig


def _config(route_cache: bool) -> ScenarioConfig:
    # A churn-heavy run: slow FIB installs widen the inconsistency
    # windows, IGP flaps and BGP withdrawals land while traffic flows, so
    # plenty of packets traverse mid-convergence state and loop.
    return ScenarioConfig(
        name="cache-equivalence",
        seed=23,
        pops=6,
        extra_edges=2,
        duration=60.0,
        rate_pps=200.0,
        n_prefixes=40,
        n_flows=200,
        igp_flaps=4,
        flap_downtime=(3.0, 6.0),
        bgp_withdrawals=2,
        withdrawal_holdtime=15.0,
        igp_timers=LinkStateTimers(fib_update_delay=0.4,
                                   fib_update_jitter=1.2),
        route_cache=route_cache,
    )


def _audit_stream(run):
    return [
        (a.packet_id, a.fate, a.fate_time, a.fate_router, a.hops, a.looped)
        for a in run.engine.audits
    ]


@pytest.fixture(scope="module")
def runs():
    return {
        cached: BackboneScenario(_config(route_cache=cached)).run()
        for cached in (True, False)
    }


class TestObservationalEquivalence:
    def test_scenario_forms_loops(self, runs):
        # The property is only interesting if convergence windows were
        # actually exercised.
        assert runs[True].ground_truth_looped > 0
        assert runs[True].ground_truth_looped == runs[False].ground_truth_looped

    def test_cache_flavours_as_configured(self, runs):
        assert runs[True].engine.route_cache_stats()["enabled"]
        assert not runs[False].engine.route_cache_stats()["enabled"]
        # Churn means the cached run must also have invalidated entries.
        assert runs[True].engine.route_cache_stats()["invalidations"] > 0

    def test_identical_packet_audit_streams(self, runs):
        assert _audit_stream(runs[True]) == _audit_stream(runs[False])

    def test_identical_fate_counts(self, runs):
        assert dict(runs[True].engine.fate_counts) == \
            dict(runs[False].engine.fate_counts)

    def test_byte_identical_pcap(self, runs, tmp_path):
        paths = {}
        for cached, run in runs.items():
            paths[cached] = tmp_path / f"cache_{cached}.pcap"
            write_pcap(run.trace, paths[cached])
        assert paths[True].read_bytes() == paths[False].read_bytes()

    def test_detector_sees_the_same_loops(self, runs):
        # Table II is derived from the trace; identical bytes must yield
        # identical detection results end-to-end.
        results = {
            cached: LoopDetector().detect(run.trace)
            for cached, run in runs.items()
        }
        assert results[True].stream_count == results[False].stream_count
        assert results[True].loop_count == results[False].loop_count

    def test_identical_minute_telemetry(self, runs):
        assert dict(runs[True].engine.queue_delay_by_minute) == \
            dict(runs[False].engine.queue_delay_by_minute)
        assert dict(runs[True].engine.transmissions_by_minute) == \
            dict(runs[False].engine.transmissions_by_minute)
