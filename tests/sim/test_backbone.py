"""Tests for the backbone scenario builder."""

import pytest

from repro.sim.backbone import BackboneScenario, ScenarioConfig, ScenarioError


def _config(**overrides):
    from repro.routing.linkstate import LinkStateTimers

    defaults = dict(
        name="t",
        seed=11,
        pops=6,
        extra_edges=2,
        duration=60.0,
        rate_pps=200.0,
        n_prefixes=40,
        n_flows=200,
        igp_flaps=4,
        flap_downtime=(3.0, 6.0),
        bgp_withdrawals=2,
        withdrawal_holdtime=15.0,
        # Slow FIB installs widen the inconsistency windows so loops are
        # near-certain even in a short test run.
        igp_timers=LinkStateTimers(fib_update_delay=0.4,
                                   fib_update_jitter=1.2),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestConfigValidation:
    def test_duration_must_exceed_warmup(self):
        with pytest.raises(ScenarioError):
            _config(duration=1.0, warmup=5.0)

    def test_minimum_pops(self):
        with pytest.raises(ScenarioError):
            _config(pops=3)


class TestBuild:
    def test_build_wires_the_stack(self):
        run = BackboneScenario(_config()).build()
        assert run.igp.is_converged()
        assert len(run.topology.routers) == 6
        from_router, to_router = run.monitor_direction
        assert run.topology.link_between(from_router, to_router)

    def test_monitor_is_on_primary_egress_link(self):
        run = BackboneScenario(_config()).build()
        _, primary = run.monitor_direction
        assert primary == run.topology.routers[0]

    def test_prefixes_originated(self):
        run = BackboneScenario(_config()).build()
        assert len(run.bgp.prefixes) >= 40  # population + multicast


class TestRun:
    @pytest.fixture(scope="class")
    def run(self):
        return BackboneScenario(_config()).run()

    def test_trace_collected(self, run):
        assert len(run.trace) > 100
        stamps = [record.timestamp for record in run.trace]
        assert stamps == sorted(stamps)

    def test_snaplen_is_40(self, run):
        assert run.trace.snaplen == 40
        assert all(len(record.data) <= 40 for record in run.trace)

    def test_loops_emerged(self, run):
        assert run.ground_truth_looped > 0

    def test_traffic_delivered_mostly(self, run):
        from repro.routing.forwarding import PacketFate

        delivered = run.engine.fate_counts[PacketFate.DELIVERED]
        assert delivered / run.engine.packets_injected > 0.9

    def test_deterministic(self):
        run_a = BackboneScenario(_config()).run()
        run_b = BackboneScenario(_config()).run()
        assert len(run_a.trace) == len(run_b.trace)
        assert run_a.ground_truth_looped == run_b.ground_truth_looped
        assert [r.timestamp for r in run_a.trace[:100]] == [
            r.timestamp for r in run_b.trace[:100]
        ]

    def test_record_crossings_enables_monitor_attribution(self):
        run = BackboneScenario(_config(igp_flaps=3)).run(
            record_crossings=True
        )
        ids = run.looped_packet_ids_crossing_monitor()
        assert isinstance(ids, set)
        # Every id refers to a looped audit.
        by_id = {audit.packet_id: audit for audit in run.engine.audits}
        assert all(by_id[i].looped for i in ids)
