"""Tests for the Table I scenario registry."""

import pytest

from repro.sim.scenarios import TABLE1_SCENARIOS, table1_scenario


class TestRegistry:
    def test_four_scenarios(self):
        assert set(TABLE1_SCENARIOS) == {
            "backbone1", "backbone2", "backbone3", "backbone4"
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            table1_scenario("backbone9")

    def test_overrides_applied(self):
        scenario = table1_scenario("backbone1", duration=33.0)
        assert scenario.config.duration == 33.0
        # The registry itself is untouched.
        assert TABLE1_SCENARIOS["backbone1"].duration == 300.0

    def test_backbone2_is_the_busy_link(self):
        rates = {name: config.rate_pps
                 for name, config in TABLE1_SCENARIOS.items()}
        assert rates["backbone2"] == max(rates.values())
        assert rates["backbone2"] >= 3 * min(rates.values())

    def test_bgp_flavour_split(self):
        """Backbones 1-2 are BGP-event heavy; 3-4 are IGP-flap heavy —
        the mechanism split behind the paper's Fig. 9 duration contrast."""
        for name in ("backbone1", "backbone2"):
            config = TABLE1_SCENARIOS[name]
            assert config.bgp_withdrawals > config.igp_flaps / 2
        for name in ("backbone3", "backbone4"):
            config = TABLE1_SCENARIOS[name]
            assert config.igp_flaps >= config.bgp_withdrawals * 2

    def test_unique_seeds(self):
        seeds = [config.seed for config in TABLE1_SCENARIOS.values()]
        assert len(set(seeds)) == 4


class TestShortRuns:
    @pytest.mark.parametrize("name", sorted(TABLE1_SCENARIOS))
    def test_scenario_runs_and_produces_traffic(self, name):
        run = table1_scenario(
            name, duration=30.0, rate_pps=100.0, igp_flaps=1,
            bgp_withdrawals=1,
        ).run()
        assert len(run.trace) > 30
        assert run.engine.packets_injected > 1000
