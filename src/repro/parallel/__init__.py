"""Sharded, multi-process loop detection.

The paper's analysis ran offline over OC-12 traces of up to 2.8 billion
packets; a single Python process does not keep up with that.  This
subsystem splits step 1 (replica chaining) across worker processes and
keeps steps 2–3 (validation, merging) global, producing results identical
to the offline :class:`~repro.core.detector.LoopDetector`:

* :mod:`repro.parallel.shard` — deterministic masked-key → shard
  assignment (exact, because all chaining state is keyed by the masked
  packet bytes);
* :mod:`repro.parallel.engine` — :class:`ParallelLoopDetector`, the
  process-pool driver plus the cross-shard merge;
* :mod:`repro.parallel.batch` — concurrent multi-trace runs (all four
  Table I scenarios at once).
"""

from repro.parallel.batch import BatchItemResult, BatchResult, run_batch
from repro.parallel.engine import (
    ParallelDetectionResult,
    ParallelLoopDetector,
    ParallelStats,
    ShardRunStats,
    TraceSummary,
)
from repro.parallel.shard import (
    ColumnarShardPartition,
    ShardPartition,
    assign_shard,
    shard_key,
)

__all__ = [
    "ParallelLoopDetector",
    "ParallelDetectionResult",
    "ParallelStats",
    "ShardRunStats",
    "TraceSummary",
    "ShardPartition",
    "ColumnarShardPartition",
    "assign_shard",
    "shard_key",
    "BatchItemResult",
    "BatchResult",
    "run_batch",
]
