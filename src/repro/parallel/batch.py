"""Concurrent multi-trace runs.

The paper analyzed four traces (Table I); an operator analyzes one trace
per monitored link direction.  :func:`run_batch` fans whole traces out
over a process pool — each worker simulates (or loads) one trace and
runs the offline detector on it — and aggregates per-trace results into
one report.  Trace-level parallelism composes with the sharded engine:
use ``batch`` when there are many traces, ``--jobs`` when there is one
big one.

Targets are scenario names (``backbone1``..``backbone4``) or pcap file
paths; a path that exists on disk is loaded, anything else must name a
Table I scenario.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.report import format_table
from repro.net.pcap import read_pcap, read_pcap_columnar


class BatchError(ValueError):
    """Raised for invalid batch targets or parameters."""


@dataclass(slots=True)
class BatchItemResult:
    """Aggregated detection outcome for one trace in a batch."""

    name: str
    kind: str  # "scenario" | "pcap"
    records: int = 0
    trace_seconds: float = 0.0
    candidate_streams: int = 0
    validated_streams: int = 0
    loops: int = 0
    looped_packets: int = 0
    wall_seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(slots=True)
class BatchResult:
    """Everything one batch run produced."""

    items: list[BatchItemResult] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0

    @property
    def total_loops(self) -> int:
        return sum(item.loops for item in self.items if item.ok)

    @property
    def total_looped_packets(self) -> int:
        return sum(item.looped_packets for item in self.items if item.ok)

    @property
    def total_records(self) -> int:
        return sum(item.records for item in self.items if item.ok)

    @property
    def failed(self) -> list[BatchItemResult]:
        return [item for item in self.items if not item.ok]

    def render(self) -> str:
        """Table II-style per-trace summary plus batch totals."""
        rows = []
        for item in self.items:
            if item.ok:
                rows.append([
                    item.name, item.records, f"{item.trace_seconds:.1f}",
                    item.candidate_streams, item.validated_streams,
                    item.loops, item.looped_packets,
                    f"{item.wall_seconds:.2f}",
                ])
            else:
                rows.append([item.name, "-", "-", "-", "-", "-", "-",
                             f"error: {item.error}"])
        table = format_table(
            ["Trace", "Records", "Length (s)", "Candidates", "Streams",
             "Loops", "Looped Pkts", "Wall (s)"],
            rows,
            title=f"Batch detection — {len(self.items)} trace(s), "
                  f"{self.jobs} worker(s)",
        )
        totals = (
            f"totals: {self.total_records} records, {self.total_loops} "
            f"loops, {self.total_looped_packets} looped packets in "
            f"{self.wall_seconds:.2f} s"
        )
        return f"{table}\n{totals}"


def _run_batch_target(
    spec: tuple[str, str, DetectorConfig, float | None, bool],
) -> BatchItemResult:
    """Worker entry point: produce one trace and detect loops on it.

    Returns compact counters, not the full result — a worker's
    DetectionResult drags the whole trace through pickling, and the batch
    report only needs Table I/II numbers.  With ``columnar``, pcap
    targets go through the mmap columnar reader and the batched kernel
    (identical counters); scenario traces are born in memory, so the
    flag does not apply to them.
    """
    kind, name, config, duration, columnar = spec
    item = BatchItemResult(name=name, kind=kind)
    started = time.perf_counter()
    try:
        if kind == "scenario":
            from repro.sim import table1_scenario

            overrides = {} if duration is None else {"duration": duration}
            trace = table1_scenario(name, **overrides).run().trace
            result = LoopDetector(config).detect(trace)
        elif columnar:
            trace = read_pcap_columnar(name, link_name=name)
            result = LoopDetector(config).detect_columnar(trace)
        else:
            trace = read_pcap(name, link_name=name)
            result = LoopDetector(config).detect(trace)
    except Exception as error:  # surface per-trace failures, don't abort
        item.error = f"{type(error).__name__}: {error}"
        item.wall_seconds = time.perf_counter() - started
        return item
    item.records = len(trace)
    item.trace_seconds = trace.duration
    item.candidate_streams = len(result.candidate_streams)
    item.validated_streams = result.stream_count
    item.loops = result.loop_count
    item.looped_packets = result.looped_packet_count
    item.wall_seconds = time.perf_counter() - started
    return item


def classify_target(target: str) -> tuple[str, str]:
    """Map a CLI target to ``(kind, name)``: existing file → pcap,
    otherwise a Table I scenario name."""
    from repro.sim import TABLE1_SCENARIOS

    if Path(target).exists():
        return ("pcap", target)
    if target in TABLE1_SCENARIOS:
        return ("scenario", target)
    raise BatchError(
        f"unknown batch target {target!r}: not a file and not one of "
        f"{sorted(TABLE1_SCENARIOS)}"
    )


def run_batch(
    targets: list[str] | None = None,
    jobs: int = 1,
    config: DetectorConfig | None = None,
    duration: float | None = None,
    progress=None,
    columnar: bool = False,
) -> BatchResult:
    """Run detection over several traces concurrently.

    ``targets`` defaults to all four Table I scenarios.  ``duration``
    overrides scenario length (ignored for pcap targets).  ``progress``
    is called as ``progress(item)`` with each finished
    :class:`BatchItemResult`, in target order, as results stream in.
    ``columnar`` routes pcap targets through the mmap columnar pipeline.
    """
    if jobs < 1:
        raise BatchError(f"jobs must be >= 1: {jobs}")
    if targets is None or not targets:
        from repro.sim import TABLE1_SCENARIOS

        targets = list(TABLE1_SCENARIOS)
    config = config or DetectorConfig()
    specs = [
        (*classify_target(target), config, duration, columnar)
        for target in targets
    ]
    started = time.perf_counter()
    items: list[BatchItemResult] = []
    if jobs == 1 or len(specs) == 1:
        for spec in specs:
            items.append(_run_batch_target(spec))
            if progress is not None:
                progress(items[-1])
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
            for item in pool.map(_run_batch_target, specs):
                items.append(item)
                if progress is not None:
                    progress(item)
    return BatchResult(
        items=items,
        jobs=jobs,
        wall_seconds=time.perf_counter() - started,
    )
