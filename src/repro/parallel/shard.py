"""Deterministic key → shard assignment for exact parallel detection.

Step 1 of the paper's algorithm chains replicas by the *masked-packet
key* (:func:`repro.core.replica.mask_mutable_fields`): the captured bytes
with TTL and IP checksum zeroed.  Every piece of chaining state —
singletons, open streams — is looked up by that key, and keys never
interact.  Records can therefore be hashed to N shards by key and chained
per shard without losing (or double-counting) a single candidate stream,
as long as each shard sees its records in global time order.

:func:`shard_key` drops the mutable bytes instead of zeroing them; two
records have equal masks exactly when they have equal shard keys, which
is all the assignment needs.  The hash is CRC-32, so the placement is
deterministic across processes and runs (unlike ``hash(bytes)``, which is
salted per interpreter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from zlib import crc32

#: Wire offsets of the fields a loop legitimately changes (see
#: :mod:`repro.core.replica`): TTL at byte 8, header checksum at 10–11.
_TTL_OFFSET = 8
_CHECKSUM_OFFSET = 10

#: Minimum captured bytes for a record to participate in detection.
MIN_CAPTURE = 20


class ShardError(ValueError):
    """Raised for invalid sharding parameters."""


def shard_key(data: bytes) -> bytes:
    """The replica-invariant bytes of a captured packet.

    Equivalent to :func:`~repro.core.replica.mask_mutable_fields` for
    grouping purposes: the TTL and checksum bytes are removed rather than
    zeroed, so all replicas of one packet share a shard key.
    """
    return (
        data[:_TTL_OFFSET]
        + data[_TTL_OFFSET + 1:_CHECKSUM_OFFSET]
        + data[_CHECKSUM_OFFSET + 2:]
    )


def assign_shard(data: bytes, num_shards: int) -> int:
    """Deterministic shard id in ``[0, num_shards)`` for a record."""
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1: {num_shards}")
    if num_shards == 1:
        return 0
    return crc32(shard_key(data)) % num_shards


@dataclass(slots=True)
class ShardPartition:
    """Per-shard record partitions of one trace.

    Each shard holds ``(global_index, timestamp, data)`` triples in
    original trace order, ready to feed
    :func:`~repro.core.replica.detect_replicas_indexed`.  Records shorter
    than a full IP header never reach a shard (the detector would skip
    them anyway) but are counted so aggregated scan stats match the
    offline pass.
    """

    num_shards: int
    shards: list[list[tuple[int, float, bytes]]] = field(default_factory=list)
    records_total: int = 0
    records_short: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardError(f"num_shards must be >= 1: {self.num_shards}")
        if not self.shards:
            self.shards = [[] for _ in range(self.num_shards)]

    def add(self, index: int, timestamp: float, data: bytes) -> None:
        """Route one record to its shard (call in trace order)."""
        self.records_total += 1
        if len(data) < MIN_CAPTURE:
            self.records_short += 1
            return
        self.shards[assign_shard(data, self.num_shards)].append(
            (index, timestamp, data)
        )

    @property
    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self.shards]

    @property
    def skew(self) -> float:
        """Largest shard over the mean shard size (1.0 = perfectly even).

        High skew means one hot key dominates and caps the parallel
        speedup; it is reported in the engine's instrumentation.
        """
        sizes = self.shard_sizes
        total = sum(sizes)
        if not total:
            return 1.0
        return max(sizes) / (total / len(sizes))


def partition_records(
    records, num_shards: int
) -> ShardPartition:
    """Partition an iterable of ``(index, timestamp, data)`` triples."""
    partition = ShardPartition(num_shards=num_shards)
    for index, timestamp, data in records:
        partition.add(index, timestamp, data)
    return partition
