"""Deterministic key → shard assignment for exact parallel detection.

Step 1 of the paper's algorithm chains replicas by the *masked-packet
key* (:func:`repro.core.replica.mask_mutable_fields`): the captured bytes
with TTL and IP checksum zeroed.  Every piece of chaining state —
singletons, open streams — is looked up by that key, and keys never
interact.  Records can therefore be hashed to N shards by key and chained
per shard without losing (or double-counting) a single candidate stream,
as long as each shard sees its records in global time order.

:func:`shard_key` drops the mutable bytes instead of zeroing them; two
records have equal masks exactly when they have equal shard keys, which
is all the assignment needs.  The hash is CRC-32, so the placement is
deterministic across processes and runs (unlike ``hash(bytes)``, which is
salted per interpreter).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from itertools import accumulate
from zlib import crc32

from repro.net.columnar import ColumnarChunk

#: Wire offsets of the fields a loop legitimately changes (see
#: :mod:`repro.core.replica`): TTL at byte 8, header checksum at 10–11.
_TTL_OFFSET = 8
_CHECKSUM_OFFSET = 10

#: Minimum captured bytes for a record to participate in detection.
MIN_CAPTURE = 20


class ShardError(ValueError):
    """Raised for invalid sharding parameters."""


def shard_key(data: bytes) -> bytes:
    """The replica-invariant bytes of a captured packet.

    Equivalent to :func:`~repro.core.replica.mask_mutable_fields` for
    grouping purposes: the TTL and checksum bytes are removed rather than
    zeroed, so all replicas of one packet share a shard key.
    """
    return (
        data[:_TTL_OFFSET]
        + data[_TTL_OFFSET + 1:_CHECKSUM_OFFSET]
        + data[_CHECKSUM_OFFSET + 2:]
    )


def assign_shard(data: bytes, num_shards: int) -> int:
    """Deterministic shard id in ``[0, num_shards)`` for a record."""
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1: {num_shards}")
    if num_shards == 1:
        return 0
    return crc32(shard_key(data)) % num_shards


@dataclass(slots=True)
class ShardPartition:
    """Per-shard record partitions of one trace.

    Each shard holds ``(global_index, timestamp, data)`` triples in
    original trace order, ready to feed
    :func:`~repro.core.replica.detect_replicas_indexed`.  Records shorter
    than a full IP header never reach a shard (the detector would skip
    them anyway) but are counted so aggregated scan stats match the
    offline pass.
    """

    num_shards: int
    shards: list[list[tuple[int, float, bytes]]] = field(default_factory=list)
    records_total: int = 0
    records_short: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardError(f"num_shards must be >= 1: {self.num_shards}")
        if not self.shards:
            self.shards = [[] for _ in range(self.num_shards)]

    def add(self, index: int, timestamp: float, data: bytes) -> None:
        """Route one record to its shard (call in trace order)."""
        self.records_total += 1
        if len(data) < MIN_CAPTURE:
            self.records_short += 1
            return
        self.shards[assign_shard(data, self.num_shards)].append(
            (index, timestamp, data)
        )

    @property
    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self.shards]

    @property
    def fanout_bytes(self) -> int:
        """Nominal fan-out payload size: record bytes plus the index and
        timestamp scalars of every triple, excluding per-object pickle
        framing (which the tuple form pays on top — see the parallel
        throughput benchmark for measured ``pickle.dumps`` sizes)."""
        return sum(
            len(data) + 16
            for shard in self.shards
            for _, _, data in shard
        )

    @property
    def skew(self) -> float:
        """Largest shard over the mean shard size (1.0 = perfectly even).

        High skew means one hot key dominates and caps the parallel
        speedup; it is reported in the engine's instrumentation.  An
        empty partition reports 0.0 — "no skew observed" — rather than
        pretending to be perfectly balanced.
        """
        sizes = self.shard_sizes
        total = sum(sizes)
        if not total:
            return 0.0
        return max(sizes) / (total / len(sizes))


def partition_records(
    records, num_shards: int
) -> ShardPartition:
    """Partition an iterable of ``(index, timestamp, data)`` triples."""
    partition = ShardPartition(num_shards=num_shards)
    for index, timestamp, data in records:
        partition.add(index, timestamp, data)
    return partition


@dataclass(slots=True)
class ColumnarShardPartition:
    """Per-shard *columnar slabs* of one trace.

    The tuple-list partition above ships one pickled Python object per
    record to each worker.  This partition instead accumulates, per
    shard, one contiguous ``bytearray`` slab of record bodies plus
    ``array`` columns (global indices, timestamps, captured lengths) that
    pickle as single buffers — the fan-out payload for a shard of a
    million 40-byte records is four buffers instead of a million tuples.

    Shard assignment hashes the *zeroed* mask (CRC-32 of the scratch key
    the columnar kernel computes anyway) rather than :func:`shard_key`'s
    byte-removal form.  Two records have equal zeroed masks exactly when
    they have equal shard keys, so both assignments group replicas
    identically; the shard *ids* differ between the two partitions, but
    the global candidate sort makes the final output independent of
    which shard chained which key.

    Global record indices never cross the process boundary: workers
    chain by *local* shard position and the parent remaps the (rare)
    stream members back through the per-shard index column it kept.
    Offsets are likewise rebuilt worker-side from the cumulative
    lengths, so the wire payload per record is its captured bytes plus
    one float64 timestamp and one 2- or 4-byte length.
    """

    num_shards: int
    records_total: int = 0
    records_short: int = 0
    _slabs: list[bytearray] = field(default_factory=list)
    _indices: list[array] = field(default_factory=list)
    _timestamps: list[array] = field(default_factory=list)
    _lengths: list[array] = field(default_factory=list)
    _payload_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardError(f"num_shards must be >= 1: {self.num_shards}")
        if not self._slabs:
            self._slabs = [bytearray() for _ in range(self.num_shards)]
            self._indices = [array("Q") for _ in range(self.num_shards)]
            self._timestamps = [array("d") for _ in range(self.num_shards)]
            self._lengths = [array("I") for _ in range(self.num_shards)]

    def add_chunk(self, chunk: ColumnarChunk) -> None:
        """Route one columnar chunk's records to their shards (call in
        trace order).  Record bodies are copied straight from the chunk's
        data slab into the shard slabs — no intermediate ``bytes``.

        Regular chunks (declared stride, uniform record length) take a
        chunk-level vectorized pass when numpy is available: the whole
        chunk is masked with three column assignments and hashed with
        :func:`~repro.core.vectorize.crc32_rows` — bit-identical to the
        per-record ``crc32(scratch)`` loop, so placement never depends
        on which path ran."""
        if self._add_chunk_vectorized(chunk):
            return
        view = memoryview(chunk.data)
        offsets = chunk.offsets
        timestamps = chunk.timestamps
        indices = chunk.indices
        base_index = chunk.base_index
        num_shards = self.num_shards
        slabs = self._slabs
        shard_indices = self._indices
        shard_timestamps = self._timestamps
        shard_lengths = self._lengths
        scratch = bytearray(40)
        total = 0
        short = 0
        for i, length in enumerate(chunk.lengths):
            total += 1
            if length < MIN_CAPTURE:
                short += 1
                continue
            offset = offsets[i]
            end = offset + length
            if num_shards > 1:
                if len(scratch) != length:
                    scratch = bytearray(length)
                scratch[:] = view[offset:end]
                scratch[_TTL_OFFSET] = 0
                scratch[_CHECKSUM_OFFSET] = 0
                scratch[_CHECKSUM_OFFSET + 1] = 0
                shard = crc32(scratch) % num_shards
            else:
                shard = 0
            slabs[shard] += view[offset:end]
            shard_indices[shard].append(
                indices[i] if indices is not None else base_index + i
            )
            shard_timestamps[shard].append(timestamps[i])
            shard_lengths[shard].append(length)
        self.records_total += total
        self.records_short += short

    def _add_chunk_vectorized(self, chunk: ColumnarChunk) -> bool:
        """Chunk-level shard assignment for regular chunks.  Returns
        False when the chunk needs the per-record path (irregular
        layout, sub-IP-header records, or no numpy)."""
        from repro.core import vectorize

        np = vectorize.np
        if np is None:
            return False
        lengths = chunk.lengths
        n = len(lengths)
        if not n:
            return True
        length = lengths[0]
        stride = chunk.stride
        if stride is None or length < MIN_CAPTURE or stride < length:
            return False
        lengths_np = np.frombuffer(
            lengths, dtype={2: "u2", 4: "u4", 8: "u8"}[lengths.itemsize]
        )
        if not bool((lengths_np == length).all()):
            return False

        offsets = chunk.offsets
        first = offsets[0]
        span = (n - 1) * stride + length
        region = np.frombuffer(chunk.data, dtype=np.uint8,
                               offset=first, count=span)
        rows = np.lib.stride_tricks.as_strided(
            region, shape=(n, length), strides=(stride, 1)
        )
        num_shards = self.num_shards
        if num_shards > 1:
            masked = rows.copy()
            masked[:, _TTL_OFFSET] = 0
            masked[:, _CHECKSUM_OFFSET] = 0
            masked[:, _CHECKSUM_OFFSET + 1] = 0
            shards = vectorize.crc32_rows(masked) % np.uint32(num_shards)
        ts_np = np.frombuffer(chunk.timestamps, dtype=np.float64, count=n)
        indices = chunk.indices
        if indices is not None:
            idx_np = np.frombuffer(indices, dtype=np.uint64, count=n)
        else:
            idx_np = np.arange(chunk.base_index, chunk.base_index + n,
                               dtype=np.uint64)
        for shard in range(num_shards):
            if num_shards > 1:
                selected = np.flatnonzero(shards == shard)
                if not len(selected):
                    continue
                count = len(selected)
                body = rows[selected]
                self._indices[shard].frombytes(idx_np[selected].tobytes())
                self._timestamps[shard].frombytes(
                    ts_np[selected].tobytes()
                )
            else:
                count = n
                body = rows
                self._indices[shard].frombytes(idx_np.tobytes())
                self._timestamps[shard].frombytes(ts_np.tobytes())
            self._slabs[shard] += body.tobytes()
            self._lengths[shard].frombytes(
                np.full(count, length, dtype=np.uint32).tobytes()
            )
        self.records_total += n
        return True

    def payloads(
        self, config
    ) -> list[tuple[int, bytes, array, array, object]]:
        """Worker payloads: one ``(shard_id, slab, timestamps, lengths,
        config)`` per non-empty shard — four pickled buffers, no
        per-record objects.  The slab is frozen to ``bytes``; lengths are
        narrowed to ``'H'`` when every record fits in 16 bits (always,
        for snaplen-capped traces).  Use :func:`rebuild_shard_chunk` on
        the worker side and :meth:`shard_global_indices` to map the
        resulting local stream-member positions back to trace-global
        record numbers."""
        payloads = []
        total = 0
        for shard_id in range(self.num_shards):
            lengths = self._lengths[shard_id]
            if not len(lengths):
                continue
            if max(lengths) < 65536:
                lengths = array("H", lengths)
            slab = bytes(self._slabs[shard_id])
            timestamps = self._timestamps[shard_id]
            total += (len(slab) + 8 * len(timestamps)
                      + lengths.itemsize * len(lengths))
            payloads.append((shard_id, slab, timestamps, lengths, config))
        self._payload_bytes = total
        return payloads

    def shm_layout(self, config) -> tuple[int, list[tuple]]:
        """Plan one shared-memory segment holding every non-empty
        shard's slab and columns back to back.

        Returns ``(total_bytes, descriptors)``; each descriptor is
        ``(shard_id, slab_off, slab_len, ts_off, count, len_off,
        len_typecode, config)`` — everything a worker needs besides the
        segment name.  The descriptors *are* the pickled fan-out
        payload: a few scalars per shard instead of megabytes of slab
        bytes.  Column regions are 8-byte aligned so workers can
        ``cast``/``frombuffer`` them in place."""
        descriptors = []
        cursor = 0
        for shard_id in range(self.num_shards):
            lengths = self._lengths[shard_id]
            count = len(lengths)
            if not count:
                continue
            typecode = "H" if max(lengths) < 65536 else "I"
            itemsize = 2 if typecode == "H" else 4
            slab_off = cursor
            slab_len = len(self._slabs[shard_id])
            cursor = (cursor + slab_len + 7) & ~7
            ts_off = cursor
            cursor += 8 * count
            len_off = cursor
            cursor = (cursor + itemsize * count + 7) & ~7
            descriptors.append((shard_id, slab_off, slab_len, ts_off,
                                count, len_off, typecode, config))
        return cursor, descriptors

    def write_shm(self, buf, descriptors) -> None:
        """Write every planned shard region into ``buf`` — the parent's
        single write of the shared segment.  Also fixes
        :attr:`fanout_bytes` to the exact byte volume handed to
        workers, mirroring :meth:`payloads`."""
        total = 0
        for (shard_id, slab_off, slab_len, ts_off, count, len_off,
                typecode, _config) in descriptors:
            buf[slab_off:slab_off + slab_len] = self._slabs[shard_id]
            buf[ts_off:ts_off + 8 * count] = \
                memoryview(self._timestamps[shard_id]).cast("B")
            lengths = self._lengths[shard_id]
            if typecode != lengths.typecode:
                lengths = array(typecode, lengths)
            itemsize = lengths.itemsize
            buf[len_off:len_off + itemsize * count] = \
                memoryview(lengths).cast("B")
            total += slab_len + 8 * count + itemsize * count
        self._payload_bytes = total

    def shard_global_indices(self, shard_id: int) -> array:
        """The trace-global record index of each of ``shard_id``'s
        records, by local position."""
        return self._indices[shard_id]

    @property
    def fanout_bytes(self) -> int:
        """Fan-out payload size: slab bytes plus the per-record column
        scalars that actually cross the process boundary, excluding
        pickle framing (a constant few dozen bytes per shard).  Exact
        once :meth:`payloads` has run; the nominal 12-bytes-per-record
        estimate before."""
        if self._payload_bytes is not None:
            return self._payload_bytes
        total = 0
        for shard_id in range(self.num_shards):
            total += (len(self._slabs[shard_id])
                      + 12 * len(self._lengths[shard_id]))
        return total

    @property
    def shard_sizes(self) -> list[int]:
        return [len(lengths) for lengths in self._lengths]

    @property
    def skew(self) -> float:
        """Largest shard over the mean shard size (1.0 = perfectly even),
        same definition (including 0.0 on an empty partition) as
        :attr:`ShardPartition.skew`."""
        sizes = self.shard_sizes
        total = sum(sizes)
        if not total:
            return 0.0
        return max(sizes) / (total / len(sizes))


def rebuild_shard_chunk(slab, timestamps: array, lengths: array) -> ColumnarChunk:
    """Reassemble a worker-side :class:`ColumnarChunk` from a
    :meth:`ColumnarShardPartition.payloads` payload.

    Offsets are the cumulative lengths (records were appended to the
    slab back to back), rebuilt here with C-speed ``accumulate`` rather
    than shipped.  ``base_index`` stays 0: detection over the chunk
    yields *local* positions, remapped by the parent."""
    offsets = array("Q", accumulate(lengths, initial=0))
    offsets.pop()
    # Back-to-back layout: uniform lengths imply a uniform stride, which
    # lets the worker-side kernel take its bulk-masking fast path.
    stride = None
    if lengths and min(lengths) == max(lengths):
        stride = lengths[0]
    return ColumnarChunk(
        data=slab,
        timestamps=timestamps,
        offsets=offsets,
        lengths=lengths,
        stride=stride,
    )
