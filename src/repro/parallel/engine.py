"""The sharded parallel detection engine.

:class:`ParallelLoopDetector` reproduces the offline
:class:`~repro.core.detector.LoopDetector` result exactly, with step 1
(replica chaining — the bulk of the work) fanned out over a process pool:

1. **Partition** — records are routed to N shards by the masked-packet
   key (:mod:`repro.parallel.shard`).  All replicas of one packet share a
   key, so no candidate stream is split across shards.
2. **Chain** — each worker runs
   :func:`~repro.core.replica.detect_replicas_indexed` over its shard,
   carrying the records' *global* trace indices so stream membership
   lines up with the full trace.
3. **Validate + merge (global)** — the parent concatenates the shard
   streams, restores the offline candidate order, and runs
   :func:`~repro.core.streams.validate_streams` and
   :func:`~repro.core.merge.merge_streams` against the global per-/24
   :class:`~repro.core.streams.PrefixIndex`.  These passes must be
   global: validation compares a stream against *every* packet to its
   prefix, not just those in its shard.

:meth:`ParallelLoopDetector.detect_file` feeds the partition from the
bounded-memory :func:`~repro.net.pcap.iter_pcap_chunks` reader, building
the prefix index incrementally instead of materializing a whole
:class:`~repro.net.trace.Trace`.

Columnar fan-out crosses the process boundary through ONE
``multiprocessing.shared_memory`` segment when a pool actually runs:
the parent lays out every shard's slab and columns back to back
(:meth:`~repro.parallel.shard.ColumnarShardPartition.shm_layout`),
writes the segment once, and ships only per-shard offset descriptors —
a few dozen pickled bytes per worker instead of megabytes of slab.
Workers attach read-only and chain straight off the mapping; the parent
unlinks the segment in a ``finally`` so it cannot outlive the run, even
on a worker crash or ``KeyboardInterrupt``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path

from repro.core.detector import DetectionResult, DetectorConfig
from repro.core.merge import merge_streams
from repro.core.replica import (
    Replica,
    ReplicaScanStats,
    ReplicaStream,
    detect_replicas_indexed,
    detect_replicas_with_kernel,
    stream_sort_key,
)
from repro.core.report import format_table
from repro.core.streams import PrefixIndex, validate_streams
from repro.obs.metrics import Timer
from repro.obs.perf import PipelineProfile
from repro.obs.tracing import NULL_TRACER
from repro.net.columnar import ColumnarTrace
from repro.net.pcap import (
    DEFAULT_CHUNK_RECORDS,
    iter_pcap_chunks,
    read_pcap_columnar,
)
from repro.net.trace import SNAPLEN_40, Trace
from repro.parallel.shard import (
    ColumnarShardPartition,
    ShardError,
    ShardPartition,
    rebuild_shard_chunk,
)


class ParallelError(ValueError):
    """Raised for invalid parallel-engine configuration."""


@dataclass(slots=True)
class ShardRunStats:
    """Instrumentation for one shard's chaining pass."""

    shard_id: int
    records: int
    candidate_streams: int
    seconds: float

    @property
    def records_per_sec(self) -> float:
        return self.records / self.seconds if self.seconds > 0 else 0.0


@dataclass(slots=True)
class ParallelStats:
    """Instrumentation for one parallel detection run."""

    jobs: int
    shards: int
    records_total: int = 0
    partition_seconds: float = 0.0
    detect_seconds: float = 0.0
    merge_seconds: float = 0.0
    wall_seconds: float = 0.0
    shard_skew: float = 1.0
    fanout_bytes: int = 0
    #: Bytes handed to workers through the shared-memory segment (0 when
    #: the run pickled its payloads: in-process runs, tuple-list shards).
    shm_bytes: int = 0
    per_shard: list[ShardRunStats] = field(default_factory=list)

    @property
    def records_per_sec(self) -> float:
        """End-to-end throughput over the whole run."""
        return (self.records_total / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)

    def render(self) -> str:
        """Plain-text instrumentation block for CLI / benchmark reports."""
        lines = [
            f"parallel: {self.jobs} worker(s), {self.shards} shard(s)",
            f"wall time: {self.wall_seconds:.3f} s "
            f"(partition {self.partition_seconds:.3f}, "
            f"detect {self.detect_seconds:.3f}, "
            f"merge {self.merge_seconds:.3f})",
            f"throughput: {self.records_per_sec:,.0f} records/s",
            f"shard skew: {self.shard_skew:.2f}x",
            f"fan-out payload: {self.fanout_bytes:,} bytes"
            + (f" ({self.shm_bytes:,} via shared memory)"
               if self.shm_bytes else ""),
        ]
        if self.per_shard:
            lines.append(format_table(
                ["Shard", "Records", "Streams", "Seconds", "Records/s"],
                [
                    [s.shard_id, s.records, s.candidate_streams,
                     f"{s.seconds:.3f}", f"{s.records_per_sec:,.0f}"]
                    for s in self.per_shard
                ],
            ))
        return "\n".join(lines)


@dataclass(slots=True)
class TraceSummary:
    """Trace metadata stand-in for streamed (never-materialized) traces.

    Quacks enough like :class:`~repro.net.trace.Trace` for
    :func:`~repro.core.report.render_summary` and the Table I columns —
    record count, duration, bandwidth — without holding any records.
    """

    link_name: str = ""
    snaplen: int = SNAPLEN_40
    record_count: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    total_bytes: int = 0

    def __len__(self) -> int:
        return self.record_count

    @property
    def empty(self) -> bool:
        return self.record_count == 0

    @property
    def duration(self) -> float:
        if self.record_count < 2:
            return 0.0
        return self.end_time - self.start_time

    def average_bandwidth_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.total_bytes * 8 / self.duration


@dataclass(slots=True)
class ParallelDetectionResult(DetectionResult):
    """A :class:`~repro.core.detector.DetectionResult` plus parallel
    instrumentation.  For streamed files, ``trace`` is a
    :class:`TraceSummary` rather than a full trace."""

    parallel: ParallelStats


def _detect_shard(
    payload: tuple[int, list[tuple[int, float, bytes]], DetectorConfig],
) -> tuple[int, list[ReplicaStream], ReplicaScanStats, float]:
    """Worker entry point: chain one shard's records (module-level so it
    pickles into pool workers)."""
    shard_id, records, config = payload
    stats = ReplicaScanStats()
    with Timer() as timer:
        streams = detect_replicas_indexed(
            records,
            min_ttl_delta=config.min_ttl_delta,
            max_replica_gap=config.max_replica_gap,
            eviction_interval=config.eviction_interval,
            stats=stats,
        )
    return shard_id, streams, stats, timer.seconds


def _detect_shard_columnar(
    payload: tuple[int, bytes, object, object, DetectorConfig],
) -> tuple[int, list[ReplicaStream], ReplicaScanStats, float]:
    """Columnar worker entry point: chain one shard's slab with the
    kernel tier ``config.kernel`` selects.  The payload crossed the
    process boundary as three pickled buffers (slab, timestamps,
    lengths), not per-record tuples; the returned streams carry *local*
    shard positions as replica indices, remapped to trace-global numbers
    by the parent."""
    shard_id, slab, timestamps, lengths, config = payload
    stats = ReplicaScanStats()
    with Timer() as timer:
        chunk = rebuild_shard_chunk(slab, timestamps, lengths)
        streams = detect_replicas_with_kernel(
            [chunk],
            kernel=config.kernel,
            min_ttl_delta=config.min_ttl_delta,
            max_replica_gap=config.max_replica_gap,
            eviction_interval=config.eviction_interval,
            stats=stats,
        )
    return shard_id, streams, stats, timer.seconds


def _attach_shm(name: str) -> SharedMemory:
    """Attach to the parent's segment without adopting ownership.

    The parent is the sole owner of the unlink; a worker that lets the
    resource tracker register the mapping would have the tracker unlink
    it a second time (warning noise) or, worse, while another worker is
    still attached.  Python 3.13 has ``track=False`` for exactly this;
    on older runtimes attach registers unconditionally, so the
    registration is reverted by hand."""
    try:
        return SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        shm = SharedMemory(name=name, create=False)
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) != "fork":
            # Spawned workers run their own tracker, which would unlink
            # the segment when the worker exits — revert its adoption.
            # Forked workers share the parent's tracker (a set keyed by
            # name, so the attach-time re-register was a no-op) and an
            # unregister here would clobber the parent's entry instead.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker moved
                pass
        return shm


def _chain_shm_shard(buf, payload):
    """Chain one shard straight off the shared mapping.

    Separate frame on purpose: every view of ``buf`` created here is a
    local, so by the time the caller closes the mapping the exports are
    gone.  Nothing that leaves this frame references the buffer — stream
    keys and first-replica bytes are copies by kernel contract."""
    (_, shard_id, slab_off, slab_len, ts_off, count, len_off,
     typecode, config) = payload
    stats = ReplicaScanStats()
    with Timer() as timer:
        slab = buf[slab_off:slab_off + slab_len]
        timestamps = buf[ts_off:ts_off + 8 * count].cast("d")
        itemsize = 2 if typecode == "H" else 4
        lengths = buf[len_off:len_off + itemsize * count].cast(typecode)
        chunk = rebuild_shard_chunk(slab, timestamps, lengths)
        streams = detect_replicas_with_kernel(
            [chunk],
            kernel=config.kernel,
            min_ttl_delta=config.min_ttl_delta,
            max_replica_gap=config.max_replica_gap,
            eviction_interval=config.eviction_interval,
            stats=stats,
        )
    return shard_id, streams, stats, timer.seconds


def _detect_shard_columnar_shm(
    payload,
) -> tuple[int, list[ReplicaStream], ReplicaScanStats, float]:
    """Shared-memory worker entry point: the payload is a segment name
    plus one :meth:`~repro.parallel.shard.ColumnarShardPartition.
    shm_layout` descriptor — offsets into the parent's single segment
    instead of the slab bytes themselves."""
    shm = _attach_shm(payload[0])
    try:
        return _chain_shm_shard(shm.buf, payload)
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exception pinned a view
            pass


class ParallelLoopDetector:
    """Multi-process detect → validate → merge, identical to offline.

    ``jobs`` is the worker-process count; ``shards`` (default: ``jobs``)
    is the partition count.  With ``jobs=1`` everything runs in-process —
    useful both as a no-dependency fallback and for equivalence tests.
    """

    def __init__(
        self,
        config: DetectorConfig | None = None,
        jobs: int = 1,
        shards: int | None = None,
        tracer=NULL_TRACER,
        columnar: bool = False,
        shared_memory: bool = True,
        profile: PipelineProfile | None = None,
    ) -> None:
        if jobs < 1:
            raise ParallelError(f"jobs must be >= 1: {jobs}")
        if shards is not None and shards < 1:
            raise ParallelError(f"shards must be >= 1: {shards}")
        self.config = config or DetectorConfig()
        self.jobs = jobs
        self.shards = shards if shards is not None else jobs
        self.tracer = tracer
        #: Stage-timing accumulator; always real (never the null
        #: profile) because :class:`ParallelStats` reads the span
        #: timings back.  Histograms flow out only once a registry is
        #: attached (pass one here, or via :meth:`register_metrics`).
        self.profile = profile if profile is not None else PipelineProfile()
        #: When True, :meth:`detect_file` reads via the mmap columnar
        #: reader and fans out slab payloads (:class:`~repro.parallel.
        #: shard.ColumnarShardPartition`) instead of tuple lists.
        self.columnar = columnar
        #: Escape hatch: when False, columnar fan-out always pickles its
        #: payloads even when a pool runs (e.g. on a /dev/shm-less
        #: platform).  Results are identical either way.
        self.shared_memory = shared_memory
        #: Name of the most recent run's shared segment (None until a
        #: shared-memory fan-out has run).  The segment itself is
        #: unlinked before the run returns; the name exists so tests can
        #: assert exactly that.
        self.last_shm_name: str | None = None
        #: Stats of the most recent run, published by the pull collector.
        self.last_stats: ParallelStats | None = None
        self._last_shm_bytes = 0

    # -- entry points ---------------------------------------------------------

    def detect(self, trace: Trace) -> ParallelDetectionResult:
        """Run the sharded pipeline over an in-memory trace."""
        started = time.perf_counter()
        with self.profile.stage("parallel.partition") as span:
            partition = ShardPartition(num_shards=self.shards)
            needs_index = (self.config.check_prefix_consistency
                           or self.config.check_gap_consistency)
            prefix_index = (
                PrefixIndex(prefix_length=self.config.prefix_length)
                if needs_index else None
            )
            for index, record in enumerate(trace.records):
                partition.add(index, record.timestamp, record.data)
                if prefix_index is not None:
                    prefix_index.add_record(
                        index, record.timestamp, record.data
                    )
            span.add(records=partition.records_total)
        return self._finish(
            partition, prefix_index, trace, started, span.seconds
        )

    def detect_columnar(self, ctrace: ColumnarTrace) -> ParallelDetectionResult:
        """Run the sharded pipeline over a columnar trace: slab fan-out,
        batched kernel in each worker, identical streams and loops."""
        started = time.perf_counter()
        with self.profile.stage("parallel.partition") as span:
            partition = ColumnarShardPartition(num_shards=self.shards)
            needs_index = (self.config.check_prefix_consistency
                           or self.config.check_gap_consistency)
            prefix_index = (
                PrefixIndex(prefix_length=self.config.prefix_length)
                if needs_index else None
            )
            for chunk in ctrace.chunks:
                partition.add_chunk(chunk)
                if prefix_index is not None:
                    prefix_index.add_chunk(chunk)
            span.add(records=partition.records_total)
        return self._finish(
            partition, prefix_index, ctrace, started, span.seconds
        )

    def detect_file(
        self,
        path: str | Path,
        link_name: str = "",
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        progress=None,
        columnar: bool | None = None,
    ) -> ParallelDetectionResult:
        """Run the sharded pipeline over a pcap file via the chunked
        reader — the whole trace is never materialized; ``result.trace``
        is a :class:`TraceSummary`.

        ``progress`` is called as ``progress(records_partitioned)`` once
        per chunk — hand it a rate-limited
        :class:`~repro.obs.progress.Heartbeat` for long files.

        ``columnar`` (default: the engine's ``columnar`` flag) switches
        to the mmap columnar reader and slab fan-out; ``result.trace`` is
        then the :class:`~repro.net.columnar.ColumnarTrace`, whose record
        bodies are zero-copy views of the page cache rather than heap
        copies.
        """
        use_columnar = self.columnar if columnar is None else columnar
        if use_columnar:
            started = time.perf_counter()
            with self.profile.stage("ingest.columnar") as ingest:
                ctrace = read_pcap_columnar(
                    path, link_name=link_name or str(path),
                    chunk_records=chunk_records,
                )
                ingest.add(records=len(ctrace), bytes=ctrace.total_bytes)
            with self.profile.stage("parallel.partition") as span:
                partition = ColumnarShardPartition(num_shards=self.shards)
                needs_index = (self.config.check_prefix_consistency
                               or self.config.check_gap_consistency)
                prefix_index = (
                    PrefixIndex(prefix_length=self.config.prefix_length)
                    if needs_index else None
                )
                for chunk in ctrace.chunks:
                    partition.add_chunk(chunk)
                    if prefix_index is not None:
                        prefix_index.add_chunk(chunk)
                    if progress is not None:
                        progress(len(chunk))
                span.add(records=partition.records_total)
            # Partition time includes the ingest read for stats-compat
            # with the row-by-row branch (both measure "time to fan
            # out"); the profile's ingest.columnar stage has the split.
            return self._finish(
                partition, prefix_index, ctrace, started,
                ingest.seconds + span.seconds,
            )
        started = time.perf_counter()
        with self.profile.stage("parallel.partition") as span:
            partition = ShardPartition(num_shards=self.shards)
            needs_index = (self.config.check_prefix_consistency
                           or self.config.check_gap_consistency)
            prefix_index = (
                PrefixIndex(prefix_length=self.config.prefix_length)
                if needs_index else None
            )
            summary = TraceSummary(link_name=link_name or str(path))
            index = 0
            for chunk in iter_pcap_chunks(path, chunk_records=chunk_records):
                summary.snaplen = chunk.snaplen
                for record in chunk.records:
                    partition.add(index, record.timestamp, record.data)
                    if prefix_index is not None:
                        prefix_index.add_record(
                            index, record.timestamp, record.data
                        )
                    if summary.record_count == 0:
                        summary.start_time = record.timestamp
                    summary.end_time = record.timestamp
                    summary.record_count += 1
                    summary.total_bytes += record.wire_length
                    index += 1
                if progress is not None:
                    progress(len(chunk.records))
            span.add(records=summary.record_count,
                     bytes=summary.total_bytes)
        return self._finish(
            partition, prefix_index, summary, started, span.seconds
        )

    # -- pipeline internals ---------------------------------------------------

    def _finish(
        self,
        partition: ShardPartition | ColumnarShardPartition,
        prefix_index: PrefixIndex | None,
        trace,
        started: float,
        partition_seconds: float,
    ) -> ParallelDetectionResult:
        detect_started = time.perf_counter()
        with self.profile.stage(
            "parallel.detect", records=partition.records_total
        ) as detect_span:
            shard_outputs = self._run_shards(partition)
        detect_seconds = detect_span.seconds

        merge_started = time.perf_counter()
        with self.profile.stage("parallel.validate_merge") as merge_span:
            candidates: list[ReplicaStream] = []
            scan_stats = ReplicaScanStats(
                records_scanned=partition.records_total,
                records_skipped_short=partition.records_short,
            )
            per_shard: list[ShardRunStats] = []
            for shard_id, streams, shard_stats, seconds in shard_outputs:
                candidates.extend(streams)
                scan_stats.singletons_evicted += shard_stats.singletons_evicted
                per_shard.append(ShardRunStats(
                    shard_id=shard_id,
                    records=shard_stats.records_scanned,
                    candidate_streams=shard_stats.candidate_streams,
                    seconds=seconds,
                ))
            # Restore the offline candidate order: the shared total order
            # on (start time, first replica index) makes the concatenation
            # byte-identical to one pass over the whole trace.
            candidates.sort(key=stream_sort_key)
            scan_stats.candidate_streams = len(candidates)

            config = self.config
            validation_trace = trace if isinstance(trace, Trace) else Trace()
            validation = validate_streams(
                candidates,
                validation_trace,
                min_stream_size=config.min_stream_size,
                prefix_length=config.prefix_length,
                check_prefix_consistency=config.check_prefix_consistency,
                prefix_index=prefix_index,
            )
            loops = merge_streams(
                validation.valid,
                validation_trace,
                merge_gap=config.merge_gap,
                prefix_length=config.prefix_length,
                check_gap_consistency=config.check_gap_consistency,
                prefix_index=prefix_index,
                candidates=candidates,
            )
        merge_seconds = merge_span.seconds

        stats = ParallelStats(
            jobs=self.jobs,
            shards=self.shards,
            records_total=partition.records_total,
            partition_seconds=partition_seconds,
            detect_seconds=detect_seconds,
            merge_seconds=merge_seconds,
            wall_seconds=time.perf_counter() - started,
            shard_skew=partition.skew,
            fanout_bytes=partition.fanout_bytes,
            shm_bytes=self._last_shm_bytes,
            per_shard=per_shard,
        )
        self.last_stats = stats
        self._emit_trace(stats, started, detect_started, merge_started,
                         merge_seconds, loops)
        return ParallelDetectionResult(
            trace=trace,
            config=config,
            candidate_streams=candidates,
            validation=validation,
            loops=loops,
            scan_stats=scan_stats,
            parallel=stats,
        )

    def _emit_trace(self, stats: ParallelStats, started: float,
                    detect_started: float, merge_started: float,
                    merge_seconds: float, loops) -> None:
        """Phase spans for the run (no-ops on the null tracer).

        Timings were already measured for :class:`ParallelStats`; the
        spans reuse them, so tracing adds no clock reads to the pipeline.
        Shard spans are duration-accurate (worker-measured) and anchored
        at the detect phase start; loop spans are in trace time.
        """
        tracer = self.tracer
        tracer.span("parallel.partition", started,
                    started + stats.partition_seconds, clock="wall",
                    records=stats.records_total, shards=stats.shards)
        detect_span = tracer.span(
            "parallel.detect", detect_started,
            detect_started + stats.detect_seconds, clock="wall",
            jobs=stats.jobs, skew=stats.shard_skew,
        )
        for shard in stats.per_shard:
            tracer.span("parallel.shard", detect_started,
                        detect_started + shard.seconds, parent=detect_span,
                        clock="wall", shard=shard.shard_id,
                        records=shard.records,
                        streams=shard.candidate_streams)
        tracer.span("parallel.merge", merge_started,
                    merge_started + merge_seconds, clock="wall",
                    loops=len(loops))
        for loop in loops:
            tracer.span("loop", loop.start, loop.end,
                        prefix=str(loop.prefix), streams=loop.stream_count)

    def state_snapshot(self) -> dict:
        """JSON-ready view of the engine for the monitoring ``/state``
        endpoint: configuration plus the most recent run's stats."""
        state: dict = {
            "jobs": self.jobs,
            "shards": self.shards,
            "perf": self.profile.snapshot(),
            "last_run": None,
        }
        stats = self.last_stats
        if stats is not None:
            state["last_run"] = {
                "records_total": stats.records_total,
                "wall_seconds": stats.wall_seconds,
                "partition_seconds": stats.partition_seconds,
                "detect_seconds": stats.detect_seconds,
                "merge_seconds": stats.merge_seconds,
                "records_per_sec": stats.records_per_sec,
                "shard_skew": stats.shard_skew,
                "fanout_bytes": stats.fanout_bytes,
                "shm_bytes": stats.shm_bytes,
                "per_shard": [
                    {
                        "shard_id": shard.shard_id,
                        "records": shard.records,
                        "candidate_streams": shard.candidate_streams,
                        "seconds": shard.seconds,
                    }
                    for shard in stats.per_shard
                ],
            }
        return state

    def register_metrics(self, registry) -> None:
        """Publish the most recent run's :class:`ParallelStats` and feed
        subsequent runs' stage spans into ``perf_stage_seconds``."""
        registry.register_collector(self._publish_metrics)
        self.profile.registry = registry

    def _publish_metrics(self, registry) -> None:
        stats = self.last_stats
        if stats is None:
            return
        registry.counter(
            "parallel_records_total", "Records partitioned across shards"
        ).set(stats.records_total)
        registry.gauge(
            "parallel_jobs", "Worker processes of the last run"
        ).set(stats.jobs)
        registry.gauge(
            "parallel_shard_skew",
            "Largest shard relative to the ideal even split",
        ).set(stats.shard_skew)
        registry.gauge(
            "parallel_records_per_sec",
            "End-to-end throughput of the last run",
        ).set(stats.records_per_sec)
        registry.gauge(
            "parallel_fanout_bytes",
            "Nominal worker fan-out payload bytes of the last run",
        ).set(stats.fanout_bytes)
        registry.gauge(
            "parallel_shm_bytes",
            "Fan-out bytes carried by shared memory in the last run",
        ).set(stats.shm_bytes)
        for label, seconds in (
            ("partition", stats.partition_seconds),
            ("detect", stats.detect_seconds),
            ("merge", stats.merge_seconds),
            ("wall", stats.wall_seconds),
        ):
            registry.gauge(
                f"parallel_{label}_seconds",
                f"Wall-clock seconds of the {label} phase (last run)",
            ).set(seconds)

    def _run_shards(
        self, partition: ShardPartition | ColumnarShardPartition
    ) -> list[tuple[int, list[ReplicaStream], ReplicaScanStats, float]]:
        self._last_shm_bytes = 0
        columnar = isinstance(partition, ColumnarShardPartition)
        if columnar:
            if self.shared_memory and self.jobs > 1:
                total_bytes, descriptors = partition.shm_layout(self.config)
                if len(descriptors) > 1:
                    outputs = self._run_shards_shm(
                        partition, total_bytes, descriptors
                    )
                    self._remap_columnar(partition, outputs)
                    return outputs
            payloads = partition.payloads(self.config)
            worker = _detect_shard_columnar
        else:
            payloads = [
                (shard_id, records, self.config)
                for shard_id, records in enumerate(partition.shards)
                if records
            ]
            worker = _detect_shard
        if not payloads:
            return []
        if self.jobs == 1 or len(payloads) == 1:
            outputs = [worker(payload) for payload in payloads]
        else:
            workers = min(self.jobs, len(payloads))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outputs = list(pool.map(worker, payloads))
        if columnar:
            self._remap_columnar(partition, outputs)
        return outputs

    def _run_shards_shm(
        self, partition: ColumnarShardPartition, total_bytes: int,
        descriptors: list[tuple],
    ) -> list[tuple[int, list[ReplicaStream], ReplicaScanStats, float]]:
        """Pool fan-out through one shared segment: write once in the
        parent, ship descriptors, unlink no matter how the pool ends —
        a crashed worker (``BrokenProcessPool``) or a ``Ctrl-C`` must
        not leak a ``/dev/shm`` segment."""
        shm = SharedMemory(create=True, size=total_bytes)
        self.last_shm_name = shm.name
        try:
            with self.profile.stage("parallel.shm_write",
                                    bytes=total_bytes):
                partition.write_shm(shm.buf, descriptors)
            self._last_shm_bytes = partition.fanout_bytes
            payloads = [(shm.name, *descriptor) for descriptor in descriptors]
            workers = min(self.jobs, len(payloads))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_detect_shard_columnar_shm, payloads))
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    @staticmethod
    def _remap_columnar(partition: ColumnarShardPartition, outputs) -> None:
        # Workers chained by local shard position; restore the
        # trace-global record numbers from the kept index column.
        # Only stream members (rare) are touched.
        for shard_id, streams, _, _ in outputs:
            mapping = partition.shard_global_indices(shard_id)
            for stream in streams:
                stream.replicas = [
                    Replica(index=mapping[r.index],
                            timestamp=r.timestamp, ttl=r.ttl)
                    for r in stream.replicas
                ]
