"""Async record sources for fleet pipelines.

Every source exposes one coroutine-friendly surface::

    async for chunk in source.batches():
        # chunk is a ColumnarChunk, time-ordered within and across
        # batches

Batches are :class:`~repro.net.columnar.ColumnarChunk` objects — one
contiguous slab plus parallel columns — so the per-record async
overhead is amortized over tens of thousands of records and the
streaming detector's batched tier can consume the chunk without ever
materializing per-record pairs (``chunk.iter_views()`` recovers the
pair form when a consumer wants it).  All blocking work (pcap parsing,
simulator execution, directory listing) runs on the default executor;
the event loop only ever awaits.

Source errors (truncated pcap, bad scenario name) propagate out of
``batches()`` — crash handling is the supervisor's job, not the
source's.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, AsyncIterator, Callable, Iterator

from repro.fleet.config import SourceConfig
from repro.net.columnar import ColumnarChunk, ColumnarTrace
from repro.net.pcap import iter_pcap_columnar
from repro.obs.perf import NULL_PROFILE

Batch = ColumnarChunk

_SENTINEL = object()


async def prefetch_batches(source, profile=NULL_PROFILE,
                           depth: int = 2) -> AsyncIterator[Batch]:
    """Pull ``source.batches()`` ahead of the consumer through a bounded
    queue, so reading the next batch overlaps detecting the current one.

    The queue is the fleet's backpressure point: a slow detector fills
    it and stalls the reader; a slow source leaves it empty and stalls
    the detector.  ``profile`` (a :class:`~repro.obs.perf.
    PipelineProfile`) gets a ``source.prefetch`` queue-depth gauge
    updated on every hand-off, so ``/perf`` shows which side is behind.
    Source errors propagate to the consumer; the producer task is
    cancelled when the consumer stops early.
    """
    queue: asyncio.Queue = asyncio.Queue(maxsize=max(1, depth))

    async def _produce() -> None:
        try:
            async for batch in source.batches():
                await queue.put(("batch", batch))
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            await queue.put(("error", exc))
            return
        await queue.put(("done", None))

    task = asyncio.create_task(_produce())
    try:
        while True:
            profile.queue_depth("source.prefetch", queue.qsize())
            kind, payload = await queue.get()
            if kind == "batch":
                yield payload
            elif kind == "error":
                raise payload
            else:
                return
    finally:
        task.cancel()
        try:
            await task
        except (asyncio.CancelledError, Exception):
            pass


async def _iter_off_thread(make_iterator: Callable[[], Iterator[Any]]
                           ) -> AsyncIterator[Any]:
    """Drive a blocking iterator from the executor, one item per hop."""
    loop = asyncio.get_running_loop()
    iterator = await loop.run_in_executor(None, make_iterator)
    while True:
        item = await loop.run_in_executor(None, next, iterator, _SENTINEL)
        if item is _SENTINEL:
            return
        yield item


class _Pacer:
    """Throttle a replay to ``pace`` trace seconds per wall second.

    ``pace == 0`` replays at full speed.  The pacer anchors trace time
    to the wall clock at the first record and sleeps whenever the
    replay runs ahead of schedule; it never tries to catch up a slow
    reader by dropping records.
    """

    def __init__(self, pace: float) -> None:
        self.pace = pace
        self._trace_start: float | None = None
        self._wall_start = 0.0

    async def pace_to(self, timestamp: float) -> None:
        if not self.pace:
            return
        loop = asyncio.get_running_loop()
        if self._trace_start is None:
            self._trace_start = timestamp
            self._wall_start = loop.time()
            return
        due = self._wall_start + (timestamp - self._trace_start) / self.pace
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)


async def _pcap_batches(path: Path, pacer: _Pacer) -> AsyncIterator[Batch]:
    async for chunk in _iter_off_thread(
        lambda: iter_pcap_columnar(path)
    ):
        if len(chunk):
            await pacer.pace_to(chunk.timestamps[-1])
        yield chunk


class PcapFileSource:
    """Replay one capture file, optionally paced."""

    def __init__(self, config: SourceConfig) -> None:
        self.config = config

    async def batches(self) -> AsyncIterator[Batch]:
        pacer = _Pacer(self.config.pace)
        async for batch in _pcap_batches(Path(self.config.path), pacer):
            yield batch


class DirectoryWatchSource:
    """Follow a directory of rotating captures.

    Files matching ``pattern`` are replayed in sorted-name order; new
    arrivals are picked up every ``poll_interval`` seconds.  Rotation
    schemes that number their files (``link-0001.pcap`` …) therefore
    replay in capture order.  The watch never ends on its own — the
    pipeline stops it by cancellation.

    A file is claimed the moment it is seen, so a file that turns out
    to be corrupt crashes the pipeline run *every* run (the restarted
    run re-lists the directory from scratch) until the crash budget is
    exhausted — a poisoned capture is an operator problem, not
    something to skip silently.
    """

    def __init__(self, config: SourceConfig) -> None:
        self.config = config

    async def batches(self) -> AsyncIterator[Batch]:
        config = self.config
        directory = Path(config.directory)
        pacer = _Pacer(config.pace)
        seen: set[str] = set()
        loop = asyncio.get_running_loop()
        while True:
            names = await loop.run_in_executor(
                None,
                lambda: sorted(
                    entry.name for entry in directory.glob(config.pattern)
                ),
            )
            fresh = [name for name in names if name not in seen]
            for name in fresh:
                seen.add(name)
                async for batch in _pcap_batches(directory / name, pacer):
                    yield batch
            await asyncio.sleep(config.poll_interval)


class SimulatorSource:
    """Run a Table I backbone scenario off-thread, then replay its
    captured trace as columnar batches."""

    def __init__(self, config: SourceConfig) -> None:
        self.config = config

    async def batches(self) -> AsyncIterator[Batch]:
        from repro.sim import table1_scenario

        config = self.config
        overrides: dict[str, Any] = {}
        if config.duration is not None:
            overrides["duration"] = float(config.duration)
        loop = asyncio.get_running_loop()

        def simulate() -> ColumnarTrace:
            scenario = table1_scenario(config.scenario, **overrides)
            return ColumnarTrace.from_trace(scenario.run().trace)

        columnar = await loop.run_in_executor(None, simulate)
        pacer = _Pacer(config.pace)
        for chunk in columnar.chunks:
            if len(chunk):
                await pacer.pace_to(chunk.timestamps[-1])
            yield chunk
            await asyncio.sleep(0)  # yield the loop between chunks


_SOURCES = {
    "pcap": PcapFileSource,
    "watch": DirectoryWatchSource,
    "sim": SimulatorSource,
}


def build_source(config: SourceConfig):
    """Instantiate the source class for a :class:`SourceConfig`."""
    return _SOURCES[config.kind](config)
