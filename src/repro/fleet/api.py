"""The fleet-wide HTTP API.

One server for the whole fleet, grown from the single-link
:class:`~repro.obs.server.MonitorServer` scaffolding (same daemon
thread, same quiet-disconnect handler base):

========================================  =====================================
``GET /``                                 route index (JSON)
``GET /healthz``                          fleet liveness: link/state tally
``GET /links``                            every link: lifecycle + counters
``GET /links/<id>/state``                 one link's full monitor snapshot
``GET /links/<id>/dashboard``             one link's live HTML dashboard
``GET /links/<id>/metrics``               one link's bare registry
``GET /metrics``                          all registries merged, ``link`` label
``POST /links/<id>/restart``              restart that pipeline (202)
========================================  =====================================

Restart requests cross from the HTTP handler thread to the event-loop
thread via ``call_soon_threadsafe`` inside
:meth:`~repro.fleet.supervisor.FleetSupervisor.request_restart`; the
202 means "handed to the supervisor", not "already restarted" — poll
``/links`` for the transition.
"""

from __future__ import annotations

import threading
from http.server import ThreadingHTTPServer
from typing import Any

from repro.fleet.supervisor import FleetSupervisor
from repro.obs.dashboard import render_html
from repro.obs.log import get_logger
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, JSONRequestHandler


class _FleetHandler(JSONRequestHandler):
    # Bound per server class in FleetServer.__init__.
    supervisor: FleetSupervisor

    # -- routing ---------------------------------------------------------------

    def _link_route(self, path: str) -> tuple[str, str] | None:
        """``/links/<id>/<action>`` → ``(link_id, action)``, else None."""
        parts = path.strip("/").split("/")
        if len(parts) == 3 and parts[0] == "links":
            return parts[1], parts[2]
        return None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/":
            self._send_json(200, _INDEX)
        elif path == "/healthz":
            self._send_json(200, self._health())
        elif path == "/links":
            self._send_json(200, self.supervisor.snapshot())
        elif path == "/metrics":
            self._send(200, PROMETHEUS_CONTENT_TYPE,
                       self.supervisor.render_metrics())
        elif (route := self._link_route(path)) is not None:
            self._get_link(*route)
        else:
            self._send_json(404, {"error": "not found", "path": path})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        route = self._link_route(path)
        if route is None or route[1] != "restart":
            self._send_json(404, {"error": "not found", "path": path})
            return
        link_id = route[0]
        if self.supervisor.request_restart(link_id):
            self._send_json(202, {"status": "restart requested",
                                  "link": link_id})
        else:
            self._send_json(404, {"error": "unknown link",
                                  "link": link_id})

    # -- link endpoints --------------------------------------------------------

    def _get_link(self, link_id: str, action: str) -> None:
        pipeline = self.supervisor.pipelines.get(link_id)
        if pipeline is None:
            self._send_json(404, {"error": "unknown link",
                                  "link": link_id})
            return
        if action == "state":
            state = pipeline.state()
            state["task"] = self.supervisor.tasks[link_id].snapshot()
            self._send_json(200, state)
        elif action == "dashboard":
            monitor = pipeline.monitor
            if monitor is None:
                self._send_json(503, {"error": "link has not started",
                                      "link": link_id})
                return
            self._send(200, "text/html; charset=utf-8",
                       render_html(monitor, title=f"link {link_id}"))
        elif action == "metrics":
            registry = pipeline.registry
            body = "" if registry is None else registry.render_prometheus()
            self._send(200, PROMETHEUS_CONTENT_TYPE, body)
        else:
            self._send_json(404, {"error": "not found",
                                  "link": link_id, "action": action})

    def _health(self) -> dict[str, Any]:
        snapshot = self.supervisor.snapshot()
        return {"status": "ok",
                "links": len(snapshot["links"]),
                "states": snapshot["states"]}


_INDEX = {
    "service": "repro fleet",
    "routes": [
        "GET /healthz",
        "GET /links",
        "GET /links/<id>/state",
        "GET /links/<id>/dashboard",
        "GET /links/<id>/metrics",
        "GET /metrics",
        "POST /links/<id>/restart",
    ],
}


class FleetServer:
    """Background-thread HTTP server over a :class:`FleetSupervisor`.

    Same lifecycle contract as :class:`~repro.obs.server.MonitorServer`:
    binds on construction (``port=0`` resolves immediately), serves from
    a daemon thread, stops cleanly as a context manager.
    """

    def __init__(self, supervisor: FleetSupervisor,
                 host: str = "127.0.0.1", port: int = 9470) -> None:
        self.supervisor = supervisor
        handler = type("_BoundFleetHandler", (_FleetHandler,),
                       {"supervisor": supervisor})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-fleet-http",
            daemon=True,
        )
        self._thread.start()
        get_logger("http").info("fleet endpoints at %s", self.url)
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
