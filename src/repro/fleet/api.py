"""The fleet-wide HTTP API.

One server for the whole fleet, grown from the single-link
:class:`~repro.obs.server.MonitorServer` scaffolding (same daemon
thread, same quiet-disconnect handler base):

========================================  =====================================
``GET /``                                 route index (JSON)
``GET /healthz``                          fleet liveness: link/state tally
``GET /links``                            every link: lifecycle + counters
``GET /links/<id>/state``                 one link's full monitor snapshot
``GET /links/<id>/dashboard``             one link's live HTML dashboard
``GET /links/<id>/metrics``               one link's bare registry
``GET /links/<id>/perf``                  one link's stage-timing profile
``GET /metrics``                          all registries merged, ``link`` label
``GET /perf``                             every link's stage-timing profile
``POST /links/<id>/restart``              restart that pipeline (202)
``POST /links/<id>/profile``              sample stacks for ``?seconds=N``
========================================  =====================================

Restart requests cross from the HTTP handler thread to the event-loop
thread via ``call_soon_threadsafe`` inside
:meth:`~repro.fleet.supervisor.FleetSupervisor.request_restart`; the
202 means "handed to the supervisor", not "already restarted" — poll
``/links`` for the transition.

The handler is backend-agnostic: it consumes only the supervisor's
read surface (``pipelines``/``tasks``/``snapshot``/``render_metrics``/
``request_restart``), which
:class:`~repro.fleet.workers.ProcessFleetSupervisor` duck-types over
worker-relayed documents — every endpoint serves the identical shape
under both backends.

``POST /links/<id>/profile`` runs a
:class:`~repro.obs.perf.SamplingProfiler` *in the handler thread* for a
bounded duration (default 2 s, capped at 30 s) and returns collapsed
stacks — the process is shared, so the capture covers every pipeline
thread, which is exactly what a "why is the fleet slow" investigation
wants.
"""

from __future__ import annotations

import threading
from typing import Any
from urllib.parse import parse_qs

from repro.fleet.supervisor import FleetSupervisor
from repro.obs.dashboard import render_html
from repro.obs.log import get_logger
from repro.obs.perf import SamplingProfiler
from repro.obs.server import (
    PROMETHEUS_CONTENT_TYPE,
    JSONRequestHandler,
    bind_http_server,
)

#: Upper bound on one ``POST .../profile`` capture, seconds.
MAX_PROFILE_SECONDS = 30.0


class _FleetHandler(JSONRequestHandler):
    # Bound per server class in FleetServer.__init__.
    supervisor: FleetSupervisor

    # -- routing ---------------------------------------------------------------

    def _link_route(self, path: str) -> tuple[str, str] | None:
        """``/links/<id>/<action>`` → ``(link_id, action)``, else None."""
        parts = path.strip("/").split("/")
        if len(parts) == 3 and parts[0] == "links":
            return parts[1], parts[2]
        return None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/":
            self._send_json(200, _INDEX)
        elif path == "/healthz":
            self._send_json(200, self._health())
        elif path == "/links":
            self._send_json(200, self.supervisor.snapshot())
        elif path == "/metrics":
            self._send(200, PROMETHEUS_CONTENT_TYPE,
                       self.supervisor.render_metrics())
        elif path == "/perf":
            self._send_json(200, {
                "links": {link_id: pipeline.perf()
                          for link_id, pipeline
                          in sorted(self.supervisor.pipelines.items())},
            })
        elif (route := self._link_route(path)) is not None:
            self._get_link(*route)
        else:
            self._send_json(404, {"error": "not found", "path": path})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path, _, query = self.path.partition("?")
        route = self._link_route(path)
        if route is None or route[1] not in ("restart", "profile"):
            self._send_json(404, {"error": "not found", "path": path})
            return
        link_id, action = route
        if action == "profile":
            self._profile_link(link_id, query)
            return
        if self.supervisor.request_restart(link_id):
            self._send_json(202, {"status": "restart requested",
                                  "link": link_id})
        else:
            self._send_json(404, {"error": "unknown link",
                                  "link": link_id})

    def _profile_link(self, link_id: str, query: str) -> None:
        """Run a bounded sampling-profiler capture and return collapsed
        stacks.  Blocks this handler thread only (the server threads per
        request), so scrapes keep serving during the capture."""
        if link_id not in self.supervisor.pipelines:
            self._send_json(404, {"error": "unknown link",
                                  "link": link_id})
            return
        params = parse_qs(query)
        try:
            seconds = float(params.get("seconds", ["2.0"])[0])
        except ValueError:
            self._send_json(400, {"error": "seconds must be a number"})
            return
        if not 0 < seconds <= MAX_PROFILE_SECONDS:
            self._send_json(400, {
                "error": f"seconds must be in (0, {MAX_PROFILE_SECONDS:g}]",
            })
            return
        profiler = SamplingProfiler()
        collapsed = profiler.run_for(seconds)
        self._send_json(200, {
            "link": link_id,
            "seconds": seconds,
            "samples": profiler.sample_count,
            "collapsed": collapsed,
        })

    # -- link endpoints --------------------------------------------------------

    def _get_link(self, link_id: str, action: str) -> None:
        pipeline = self.supervisor.pipelines.get(link_id)
        if pipeline is None:
            self._send_json(404, {"error": "unknown link",
                                  "link": link_id})
            return
        if action == "state":
            state = pipeline.state()
            state["task"] = self.supervisor.tasks[link_id].snapshot()
            self._send_json(200, state)
        elif action == "dashboard":
            monitor = pipeline.monitor
            if monitor is None:
                self._send_json(503, {"error": "link has not started",
                                      "link": link_id})
                return
            self._send(200, "text/html; charset=utf-8",
                       render_html(monitor, title=f"link {link_id}",
                                   records_per_s=pipeline.records_per_s()))
        elif action == "metrics":
            registry = pipeline.registry
            body = "" if registry is None else registry.render_prometheus()
            self._send(200, PROMETHEUS_CONTENT_TYPE, body)
        elif action == "perf":
            self._send_json(200, {"link": link_id, **pipeline.perf()})
        else:
            self._send_json(404, {"error": "not found",
                                  "link": link_id, "action": action})

    def _health(self) -> dict[str, Any]:
        snapshot = self.supervisor.snapshot()
        return {"status": "ok",
                "links": len(snapshot["links"]),
                "states": snapshot["states"],
                "port": self.server.server_address[1]}


_INDEX = {
    "service": "repro fleet",
    "routes": [
        "GET /healthz",
        "GET /links",
        "GET /links/<id>/state",
        "GET /links/<id>/dashboard",
        "GET /links/<id>/metrics",
        "GET /links/<id>/perf",
        "GET /metrics",
        "GET /perf",
        "POST /links/<id>/restart",
        "POST /links/<id>/profile",
    ],
}


class FleetServer:
    """Background-thread HTTP server over a :class:`FleetSupervisor`.

    Same lifecycle contract as :class:`~repro.obs.server.MonitorServer`:
    binds on construction (``port=0`` resolves immediately), serves from
    a daemon thread, stops cleanly as a context manager.
    """

    def __init__(self, supervisor: FleetSupervisor,
                 host: str = "127.0.0.1", port: int = 9470) -> None:
        self.supervisor = supervisor
        handler = type("_BoundFleetHandler", (_FleetHandler,),
                       {"supervisor": supervisor})
        self._httpd = bind_http_server(host, port, handler)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-fleet-http",
            daemon=True,
        )
        self._thread.start()
        get_logger("http").info("fleet endpoints at %s", self.url)
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
