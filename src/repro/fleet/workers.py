"""Process-parallel fleet backend: link pipelines in worker processes.

The thread backend (:class:`~repro.fleet.supervisor.FleetSupervisor`)
runs every link pipeline on one event loop, with detection on the
default thread executor — simple, but the GIL caps aggregate fleet
throughput at roughly one core of per-record Python no matter how many
links are configured.  This module fans the links out across worker
*processes* instead:

* Links are partitioned round-robin over ``workers`` processes.  Each
  worker runs a complete, ordinary :class:`FleetSupervisor` over its
  slice of the config — source, streaming detector, recorder, alert
  engine, and per-link ``SupervisedTask`` restart machinery all live
  wholly inside the worker, so per-link crash/backoff semantics are
  *identical* to the thread backend.
* Each worker ships a periodic bundle per link over a duplex command
  pipe — task lifecycle snapshot, ``/links`` row, full ``/state``
  document, ``/perf`` profile, dashboard samples, and a lossless
  metrics dump (:meth:`~repro.obs.metrics.MetricsRegistry.dump`).  The
  parent caches the latest bundle and serves every HTTP endpoint from
  it, so ``/links``, ``/state``, ``/metrics``, ``/perf``, and ``POST
  /restart`` keep their exact document shapes under both backends.
* The parent wraps each worker in its own
  :class:`~repro.fleet.task.SupervisedTask` whose body is "spawn the
  process and relay its pipe".  A worker that dies — nonzero exit or
  lost pipe — is a crash: the parent transitions the worker (and its
  links' reported lifecycle) through ``degraded``, backs off, and
  respawns; the fresh worker replays its links from scratch exactly
  like a restarted thread-backend pipeline.

Restart requests for one link are forwarded over the pipe and executed
by the worker's inner supervisor, so a manual restart never tears down
the process (or its sibling links).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from dataclasses import replace
from typing import Any

from repro.fleet.config import FleetConfig, LinkConfig
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.task import HISTORY_LIMIT, SupervisedTask, TaskState
from repro.obs.metrics import (
    MetricsRegistry,
    merged_registry,
    registry_from_dump,
)

#: Seconds between bundle publications from a worker.
DEFAULT_RELAY_INTERVAL = 0.2


def resolve_workers(config: FleetConfig) -> int:
    """The worker-process count for ``config``: the explicit
    ``fleet.workers`` if set, else one per link capped at the CPU
    count; never more workers than links, never fewer than one."""
    count = config.workers or min(len(config.links),
                                  os.cpu_count() or 1)
    return max(1, min(count, len(config.links)))


def partition_links(links, workers: int) -> list[list[LinkConfig]]:
    """Round-robin ``links`` into ``workers`` non-empty groups (the
    deterministic assignment keeps a link on the same worker across
    daemon restarts with an unchanged config)."""
    groups: list[list[LinkConfig]] = [[] for _ in range(workers)]
    for position, link in enumerate(links):
        groups[position % workers].append(link)
    return [group for group in groups if group]


# -- the worker process --------------------------------------------------------


def _publish(conn, supervisor: FleetSupervisor) -> None:
    links: dict[str, dict[str, Any]] = {}
    for link_id, task in supervisor.tasks.items():
        pipeline = supervisor.pipelines[link_id]
        monitor = pipeline.monitor
        registry = pipeline.registry
        links[link_id] = {
            "task": task.snapshot(),
            "row": pipeline.row(),
            "state": pipeline.state(),
            "perf": pipeline.perf(),
            "samples": None if monitor is None else monitor.samples(),
            "metrics": None if registry is None else registry.dump(),
        }
    try:
        conn.send(("links", links))
    except (BrokenPipeError, OSError):
        pass


async def _worker_async(conn, config: FleetConfig,
                        interval: float) -> None:
    supervisor = FleetSupervisor(config)
    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()

    def _on_command() -> None:
        try:
            while conn.poll():
                kind, payload = conn.recv()
                if kind == "restart":
                    supervisor.request_restart(payload)
                elif kind == "shutdown":
                    shutdown.set()
        except (EOFError, OSError):
            # Parent went away: there is nobody left to serve.
            shutdown.set()

    loop.add_reader(conn.fileno(), _on_command)
    supervisor.start()
    stopper = asyncio.ensure_future(shutdown.wait())
    try:
        while not stopper.done():
            await asyncio.wait({stopper}, timeout=interval)
            _publish(conn, supervisor)
            tasks = supervisor.tasks.values()
            landed = all(task._task is not None and task._task.done()
                         for task in tasks)
            failed = any(task.state is TaskState.FAILED
                         for task in tasks)
            # All sources drained cleanly: the worker's job is done.
            # A FAILED link keeps the worker alive (publishing, command
            # -responsive) so ``POST /restart`` can still re-arm it —
            # same as a failed link under the thread backend's daemon.
            if landed and not failed:
                break
        if stopper.done():
            await supervisor.stop()
        _publish(conn, supervisor)
        try:
            conn.send(("done", None))
        except (BrokenPipeError, OSError):
            pass
    finally:
        stopper.cancel()
        loop.remove_reader(conn.fileno())
        conn.close()


def _worker_main(conn, config: FleetConfig, interval: float) -> None:
    """Entry point of one worker process (spawn-safe: module level,
    picklable arguments)."""
    try:
        import faulthandler
        import signal

        # A wedged worker can be asked for a stack dump without being
        # killed: kill -USR1 <worker pid>.
        faulthandler.register(signal.SIGUSR1)
    except (ImportError, AttributeError, ValueError):
        pass
    asyncio.run(_worker_async(conn, config, interval))


# -- parent-side relays --------------------------------------------------------


class _WorkerHandle:
    """One worker process: spawn, relay, command, reap.

    :meth:`body` is the parent-side :class:`SupervisedTask` body — it
    completes normally only when the worker reports ``done`` (clean
    shutdown or every finite source drained) and exits 0; any other
    process death raises, which is exactly what drives the supervised
    degraded → backoff → respawn cycle.
    """

    def __init__(self, name: str, config: FleetConfig,
                 interval: float) -> None:
        self.name = name
        self.config = config
        self.interval = interval
        self.link_ids = [link.id for link in config.links]
        #: link id → latest relayed bundle entry (stale across a worker
        #: crash until the respawned worker publishes fresh state).
        self.docs: dict[str, dict[str, Any] | None] = {
            link_id: None for link_id in self.link_ids
        }
        self._conn = None
        #: OS pid of the live worker process (None while down).
        self.pid: int | None = None

    def send_command(self, command: tuple) -> None:
        """Forward a command tuple to the worker; silently dropped when
        the worker is down (the respawned worker starts fresh anyway).
        Must run on the event-loop thread."""
        conn = self._conn
        if conn is None:
            return
        try:
            conn.send(command)
        except (BrokenPipeError, OSError):
            pass

    async def body(self) -> None:
        loop = asyncio.get_running_loop()
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_worker_main,
            args=(child_conn, self.config, self.interval),
            name=f"repro-fleet-{self.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._conn = parent_conn
        self.pid = process.pid
        closed = asyncio.Event()
        outcome = {"done": False}

        def _on_readable() -> None:
            try:
                while parent_conn.poll():
                    kind, payload = parent_conn.recv()
                    if kind == "links":
                        self.docs.update(payload)
                    elif kind == "done":
                        outcome["done"] = True
            except (EOFError, OSError):
                closed.set()

        loop.add_reader(parent_conn.fileno(), _on_readable)
        try:
            await closed.wait()
        except asyncio.CancelledError:
            self._stop_process(process, parent_conn)
            raise
        finally:
            loop.remove_reader(parent_conn.fileno())
            self._conn = None
            self.pid = None
            # Drain what the worker managed to send before it exited —
            # the final bundle carries the links' landed (stopped)
            # state, which snapshot() must reflect after a shutdown.
            _on_readable()
            parent_conn.close()
        await loop.run_in_executor(None, process.join, 5.0)
        exitcode = process.exitcode
        if outcome["done"] and exitcode == 0:
            return
        raise RuntimeError(
            f"worker {self.name} died"
            + (f" (exit {exitcode})" if exitcode is not None
               else " (pipe lost)")
        )

    def _stop_process(self, process, conn) -> None:
        """Bounded synchronous shutdown from the cancellation path."""
        try:
            conn.send(("shutdown", None))
        except (BrokenPipeError, OSError):
            pass
        process.join(3.0)
        if process.is_alive():
            process.terminate()
            process.join(2.0)
        if process.is_alive():
            process.kill()
            process.join(1.0)


class _MonitorRelay:
    """Duck-types the :class:`~repro.obs.live.LiveMonitor` read surface
    the dashboard renderer touches, backed by relayed documents."""

    def __init__(self, state: dict[str, Any],
                 samples: dict[str, tuple]) -> None:
        self._state = state
        self._samples = samples

    def state(self) -> dict[str, Any]:
        return self._state

    def samples(self) -> dict[str, tuple]:
        return self._samples


class _LinkRelay:
    """Duck-types the :class:`~repro.fleet.pipeline.LinkPipeline` read
    surface (``row``/``state``/``perf``/``registry``/``monitor``),
    serving the latest bundle its worker relayed."""

    def __init__(self, config: LinkConfig, handle: _WorkerHandle) -> None:
        self.config = config
        self.handle = handle

    def _doc(self) -> dict[str, Any] | None:
        return self.handle.docs.get(self.config.id)

    @property
    def registry(self) -> MetricsRegistry | None:
        doc = self._doc()
        if doc is None or doc.get("metrics") is None:
            return None
        return registry_from_dump(doc["metrics"])

    @property
    def monitor(self) -> _MonitorRelay | None:
        doc = self._doc()
        if doc is None or doc.get("samples") is None:
            return None
        return _MonitorRelay(doc["state"], doc["samples"])

    def records_per_s(self) -> float:
        doc = self._doc()
        if doc is None:
            return 0.0
        return doc["row"].get("records_per_s", 0.0)

    def perf(self) -> dict[str, Any]:
        doc = self._doc()
        if doc is None:
            return {"stages": [], "queues": {}}
        return doc["perf"]

    def row(self) -> dict[str, Any]:
        doc = self._doc()
        if doc is None:
            return {
                "id": self.config.id,
                "source": self.config.source.describe(),
                "records": 0,
                "records_per_s": 0.0,
                "loops": 0,
                "alerts_active": 0,
                "run_started_at": None,
                "run_finished": False,
            }
        return dict(doc["row"])

    def state(self) -> dict[str, Any]:
        doc = self._doc()
        if doc is None:
            return {"id": self.config.id,
                    "source": self.config.source.describe(),
                    "run": None}
        return dict(doc["state"])


class _TaskRelay:
    """Duck-types the ``SupervisedTask`` snapshot surface for one link,
    overlaying the owning worker's parent-side lifecycle."""

    def __init__(self, supervisor: "ProcessFleetSupervisor",
                 link_id: str) -> None:
        self._supervisor = supervisor
        self._link_id = link_id

    def snapshot(self) -> dict[str, Any]:
        return self._supervisor._task_snapshot(self._link_id)


class ProcessFleetSupervisor:
    """Drop-in :class:`FleetSupervisor` replacement running link
    pipelines in supervised worker processes.

    Exposes the same surface the HTTP API and CLI consume —
    ``pipelines``, ``tasks``, ``snapshot()``, ``render_metrics()``,
    ``request_restart()``, and the ``start/wait/stop/run/shutdown``
    lifecycle — with identical document shapes, so
    :class:`~repro.fleet.api.FleetServer` works unchanged.
    """

    def __init__(self, config: FleetConfig, tracer=None,
                 interval: float = DEFAULT_RELAY_INTERVAL) -> None:
        # ``tracer`` is accepted for signature parity with
        # FleetSupervisor but cannot cross the process boundary;
        # workers run with the null tracer.
        self.config = config
        self.workers = resolve_workers(config)
        self.handles: dict[str, _WorkerHandle] = {}
        self._owner: dict[str, _WorkerHandle] = {}
        for index, group in enumerate(
                partition_links(config.links, self.workers)):
            sub = replace(config, links=tuple(group),
                          backend="thread", workers=0)
            handle = _WorkerHandle(f"worker-{index}", sub, interval)
            self.handles[handle.name] = handle
            for link in group:
                self._owner[link.id] = handle
        self.pipelines: dict[str, _LinkRelay] = {
            link.id: _LinkRelay(link, self._owner[link.id])
            for link in config.links
        }
        self.tasks: dict[str, _TaskRelay] = {
            link.id: _TaskRelay(self, link.id) for link in config.links
        }
        self._worker_tasks: dict[str, SupervisedTask] = {
            name: SupervisedTask(name, handle.body,
                                 policy=config.restart)
            for name, handle in self.handles.items()
        }
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested = False
        self._shutdown_event: asyncio.Event | None = None

    # -- lifecycle (event-loop thread) -----------------------------------------

    def start(self) -> None:
        """Spawn every worker process on the running event loop."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        if self._shutdown_requested:
            self._shutdown_event.set()
        for task in self._worker_tasks.values():
            task.start()

    async def wait(self) -> None:
        """Block until every worker task reaches a terminal state."""
        pending = [task._task for task in self._worker_tasks.values()
                   if task._task is not None]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def stop(self) -> None:
        """Stop every worker and wait for all of them to land."""
        await asyncio.gather(
            *(task.stop() for task in self._worker_tasks.values()),
            return_exceptions=True,
        )

    async def run(self, run_for: float | None = None) -> None:
        """Start the fleet and wait — for completion, ``run_for``
        seconds, or a :meth:`shutdown` request, whichever comes
        first."""
        self.start()
        waiter = asyncio.ensure_future(self.wait())
        stopper = asyncio.ensure_future(self._shutdown_event.wait())
        try:
            await asyncio.wait({waiter, stopper}, timeout=run_for,
                               return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            waiter.cancel()
            raise
        finally:
            stopper.cancel()
        if waiter.done():
            return
        await self.stop()
        await waiter

    # -- control (any thread) --------------------------------------------------

    def shutdown(self) -> None:
        """Ask a running :meth:`run` to stop the fleet and return."""
        self._shutdown_requested = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    def request_restart(self, link_id: str) -> bool:
        """Forward a restart request to the owning worker's inner
        supervisor; False for unknown links or before :meth:`start`."""
        handle = self._owner.get(link_id)
        loop = self._loop
        if handle is None or loop is None:
            return False
        loop.call_soon_threadsafe(handle.send_command,
                                  ("restart", link_id))
        return True

    # -- reporting (any thread) ------------------------------------------------

    def _task_snapshot(self, link_id: str) -> dict[str, Any]:
        """The link's lifecycle snapshot: the worker-relayed inner
        ``SupervisedTask`` state, overlaid with the parent-side worker
        lifecycle whenever the process itself is down (starting,
        degraded-and-backing-off, or failed), so a dead worker's links
        read as degraded instead of frozen-at-running."""
        handle = self._owner[link_id]
        worker_task = self._worker_tasks[handle.name]
        doc = handle.docs.get(link_id)
        if doc is None:
            snapshot: dict[str, Any] = {
                "name": link_id,
                "state": TaskState.STARTING.value,
                "since": worker_task.since,
                "crashes": 0,
                "crashes_total": 0,
                "restarts_total": 0,
                "runs_completed": 0,
                "last_error": None,
                "history": [],
            }
        else:
            snapshot = dict(doc["task"])
        if worker_task.state in (TaskState.STARTING, TaskState.DEGRADED,
                                 TaskState.FAILED):
            snapshot["state"] = worker_task.state.value
            snapshot["since"] = worker_task.since
            if worker_task.last_error:
                snapshot["last_error"] = worker_task.last_error
        # Worker-process deaths count against the links they took down;
        # adding the parent-side tally keeps crashes_total monotonic
        # across respawns (the fresh inner supervisor restarts at 0).
        snapshot["crashes_total"] = (snapshot.get("crashes_total", 0)
                                     + worker_task.crashes_total)
        # Same for the transition history: a respawned worker relays a
        # fresh inner history, so the degraded/failed transitions the
        # parent recorded while the process was down would vanish from
        # the API.  Merge them in by timestamp.
        worker_events = [
            entry for entry in worker_task.history
            if entry["state"] in (TaskState.DEGRADED.value,
                                  TaskState.FAILED.value)
        ]
        if worker_events:
            merged = sorted(
                list(snapshot.get("history", ())) + worker_events,
                key=lambda entry: entry["at"],
            )
            snapshot["history"] = merged[-HISTORY_LIMIT:]
        return snapshot

    def snapshot(self) -> dict[str, Any]:
        """The ``/links`` document, shape-identical to
        :meth:`FleetSupervisor.snapshot`."""
        rows = []
        tally: dict[str, int] = {}
        for link in self.config.links:
            row = self._task_snapshot(link.id)
            row.update(self.pipelines[link.id].row())
            rows.append(row)
            tally[row["state"]] = tally.get(row["state"], 0) + 1
        return {"links": rows, "states": dict(sorted(tally.items()))}

    def render_metrics(self) -> str:
        """Fleet-wide Prometheus exposition from the relayed per-link
        registry dumps, merged under the ``link`` label exactly like
        the thread backend."""
        named: dict[str, MetricsRegistry] = {}
        for link in self.config.links:
            doc = self._owner[link.id].docs.get(link.id)
            if doc is not None and doc.get("metrics") is not None:
                named[link.id] = registry_from_dump(doc["metrics"])
        merged = merged_registry(named, label="link")
        merged.gauge(
            "fleet_links", "Number of links this fleet supervises."
        ).set(len(self.pipelines))
        for link in self.config.links:
            snapshot = self._task_snapshot(link.id)
            labels = {"link": link.id}
            merged.counter(
                "fleet_task_crashes_total",
                "Pipeline crashes caught by the supervisor.", labels,
            ).set(snapshot["crashes_total"])
            merged.counter(
                "fleet_task_restarts_total",
                "Manual restart requests honoured.", labels,
            ).set(snapshot["restarts_total"])
            merged.gauge(
                "fleet_task_up",
                "1 while the pipeline task is running, else 0.", labels,
            ).set(1.0 if snapshot["state"] == "running" else 0.0)
        return merged.render_prometheus()


def build_supervisor(config: FleetConfig, tracer=None):
    """The configured backend's supervisor: a
    :class:`ProcessFleetSupervisor` for ``backend = "process"``, else
    the in-process :class:`FleetSupervisor`."""
    if config.backend == "process":
        return ProcessFleetSupervisor(config)
    from repro.obs.tracing import NULL_TRACER
    return FleetSupervisor(config, tracer=tracer or NULL_TRACER)
