"""Declarative fleet configuration.

One file describes the whole fleet: which links to watch, where each
link's records come from, the alert thresholds, and how aggressively
crashed pipelines are restarted.  TOML is the native format (stdlib
:mod:`tomllib`, Python 3.11+); JSON is accepted everywhere as the
lowest common denominator — the two spell the identical structure:

.. code-block:: toml

    [fleet]
    host = "127.0.0.1"
    port = 9470
    backend = "thread"   # or "process": link pipelines in workers
    workers = 0          # process backend: worker count (0 = auto)

    [fleet.restart]
    max_restarts = 5
    backoff_base = 0.5
    backoff_cap = 30.0
    jitter = 0.1

    [fleet.alerts]
    enabled = true
    fire_after = 1
    clear_after = 1

    [[links]]
    id = "sj-to-ny"
    source = { kind = "pcap", path = "traces/sj-ny.pcap" }

    [[links]]
    id = "ny-to-sj"
    source = { kind = "watch", directory = "captures/ny-sj" }
    prefetch = 4   # deeper source read-ahead for this link

    [[links]]
    id = "lab"
    source = { kind = "sim", scenario = "backbone2", duration = 60 }

Unknown keys are rejected loudly — a typo'd threshold silently falling
back to a default is exactly the failure mode a monitoring config must
not have.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11: JSON configs only.
    tomllib = None  # type: ignore[assignment]

from repro.core.detector import DetectorConfig
from repro.fleet.task import RestartPolicy
from repro.obs.alerts import (
    DEFAULT_DURATION_TAIL_SECONDS,
    DEFAULT_LOSS_SHARE_THRESHOLD,
)

#: Link ids appear verbatim in URL paths (``/links/<id>/state``).
_ID_RE = re.compile(r"^[A-Za-z0-9._~-]+$")

SOURCE_KINDS = ("pcap", "watch", "sim")


class FleetConfigError(ValueError):
    """Raised for malformed or inconsistent fleet configuration."""


def _take(data: Mapping[str, Any], context: str,
          allowed: tuple[str, ...]) -> dict[str, Any]:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise FleetConfigError(
            f"unknown {context} keys: {', '.join(unknown)} "
            f"(allowed: {', '.join(allowed)})"
        )
    return dict(data)


@dataclass(frozen=True)
class SourceConfig:
    """Where a link's records come from.

    * ``pcap`` — replay one capture file (``path``), optionally paced
      (``pace`` = trace seconds per wall second; 0 = full speed);
    * ``watch`` — follow a directory of rotating captures
      (``directory``, ``pattern``, ``poll_interval``); runs until the
      pipeline is stopped;
    * ``sim`` — run a Table I backbone scenario off-thread and replay
      its captured trace (``scenario``, ``duration``).
    """

    kind: str
    path: str = ""
    directory: str = ""
    pattern: str = "*.pcap"
    poll_interval: float = 0.5
    scenario: str = ""
    duration: float | None = None
    pace: float = 0.0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  context: str) -> "SourceConfig":
        data = _take(data, f"{context}.source",
                     ("kind", "path", "directory", "pattern",
                      "poll_interval", "scenario", "duration", "pace"))
        kind = data.get("kind")
        if kind not in SOURCE_KINDS:
            raise FleetConfigError(
                f"{context}: source kind must be one of "
                f"{', '.join(SOURCE_KINDS)}; got {kind!r}"
            )
        required = {"pcap": "path", "watch": "directory",
                    "sim": "scenario"}[kind]
        if not data.get(required):
            raise FleetConfigError(
                f"{context}: source kind {kind!r} requires {required!r}"
            )
        config = cls(**data)
        if config.pace < 0:
            raise FleetConfigError(f"{context}: pace must be >= 0")
        if config.poll_interval <= 0:
            raise FleetConfigError(
                f"{context}: poll_interval must be > 0"
            )
        return config

    def describe(self) -> dict[str, Any]:
        """JSON-ready description for the ``/links`` rows."""
        out: dict[str, Any] = {"kind": self.kind}
        if self.kind == "pcap":
            out["path"] = self.path
        elif self.kind == "watch":
            out["directory"] = self.directory
            out["pattern"] = self.pattern
        else:
            out["scenario"] = self.scenario
            if self.duration is not None:
                out["duration"] = self.duration
        if self.pace:
            out["pace"] = self.pace
        return out


@dataclass(frozen=True)
class AlertPolicy:
    """Per-link alerting: paper-grounded rules + hysteresis counters."""

    enabled: bool = True
    fire_after: int = 1
    clear_after: int = 1
    loss_share_threshold: float = DEFAULT_LOSS_SHARE_THRESHOLD
    duration_tail_seconds: float = DEFAULT_DURATION_TAIL_SECONDS

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], context: str,
                  base: "AlertPolicy | None" = None) -> "AlertPolicy":
        data = _take(data, f"{context}.alerts",
                     ("enabled", "fire_after", "clear_after",
                      "loss_share_threshold", "duration_tail_seconds"))
        if base is not None:
            merged = {f.name: getattr(base, f.name)
                      for f in fields(cls)}
            merged.update(data)
            data = merged
        policy = cls(**data)
        if policy.fire_after < 1 or policy.clear_after < 1:
            raise FleetConfigError(
                f"{context}: fire_after and clear_after must be >= 1"
            )
        return policy


def _detector_config(data: Mapping[str, Any],
                     context: str) -> DetectorConfig:
    data = _take(data, f"{context}.detector",
                 ("merge_gap", "min_stream_size", "prefix_length",
                  "validate", "kernel"))
    validate = bool(data.pop("validate", True))
    try:
        return DetectorConfig(
            check_prefix_consistency=validate,
            check_gap_consistency=validate,
            **data,
        )
    except ValueError as error:
        raise FleetConfigError(f"{context}: {error}") from error


@dataclass(frozen=True)
class LinkConfig:
    """One monitored link: identity, source, detection, and alerting.

    ``prefetch`` is the link's source read-ahead depth — how many
    batches :func:`~repro.fleet.sources.prefetch_batches` may queue
    ahead of the detector before the reader stalls.  Deeper queues
    smooth bursty sources (directory watches, paced replays) at the
    cost of holding more chunks in memory.
    """

    id: str
    source: SourceConfig
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    alerts: AlertPolicy = field(default_factory=AlertPolicy)
    prefetch: int = 2

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  fleet_alerts: AlertPolicy) -> "LinkConfig":
        link_id = data.get("id")
        context = f"link {link_id!r}" if link_id else "link"
        data = _take(data, context,
                     ("id", "source", "detector", "alerts", "prefetch"))
        if not link_id or not isinstance(link_id, str):
            raise FleetConfigError("every link needs a string id")
        if not _ID_RE.match(link_id):
            raise FleetConfigError(
                f"link id {link_id!r} must match {_ID_RE.pattern} "
                f"(it appears in URL paths)"
            )
        if "source" not in data:
            raise FleetConfigError(f"{context}: missing source")
        prefetch = data.get("prefetch", 2)
        if not isinstance(prefetch, int) or isinstance(prefetch, bool) \
                or prefetch < 1:
            raise FleetConfigError(
                f"{context}: prefetch must be an integer >= 1"
            )
        return cls(
            id=link_id,
            source=SourceConfig.from_dict(data["source"], context),
            detector=_detector_config(data.get("detector", {}), context),
            alerts=AlertPolicy.from_dict(data.get("alerts", {}), context,
                                         base=fleet_alerts),
            prefetch=prefetch,
        )


def _restart_policy(data: Mapping[str, Any]) -> RestartPolicy:
    data = _take(data, "fleet.restart",
                 ("max_restarts", "backoff_base", "backoff_cap",
                  "jitter"))
    try:
        return RestartPolicy(**data)
    except ValueError as error:
        raise FleetConfigError(f"fleet.restart: {error}") from error


BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class FleetConfig:
    """The whole fleet: links plus service-level policy.

    ``backend`` picks where link pipelines run: ``thread`` (the
    default) keeps every pipeline on the daemon's event loop with
    detection on the thread executor; ``process`` fans the links out
    across ``workers`` supervised worker processes (see
    :mod:`repro.fleet.workers`), so N links detect on N cores instead
    of sharing one GIL.  ``workers = 0`` sizes the pool automatically
    (one per link, capped at the machine's CPU count).
    """

    links: tuple[LinkConfig, ...]
    host: str = "127.0.0.1"
    port: int = 9470
    restart: RestartPolicy = field(default_factory=RestartPolicy)
    alerts: AlertPolicy = field(default_factory=AlertPolicy)
    backend: str = "thread"
    workers: int = 0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetConfig":
        data = _take(data, "top-level", ("fleet", "links"))
        fleet = _take(data.get("fleet", {}), "fleet",
                      ("host", "port", "restart", "alerts", "backend",
                       "workers"))
        alerts = AlertPolicy.from_dict(fleet.get("alerts", {}), "fleet")
        raw_links = data.get("links", [])
        if not raw_links:
            raise FleetConfigError("a fleet needs at least one link")
        links = tuple(LinkConfig.from_dict(raw, alerts)
                      for raw in raw_links)
        seen: set[str] = set()
        for link in links:
            if link.id in seen:
                raise FleetConfigError(f"duplicate link id {link.id!r}")
            seen.add(link.id)
        backend = fleet.get("backend", "thread")
        if backend not in BACKENDS:
            raise FleetConfigError(
                f"fleet.backend must be one of {', '.join(BACKENDS)}; "
                f"got {backend!r}"
            )
        workers = fleet.get("workers", 0)
        if not isinstance(workers, int) or isinstance(workers, bool) \
                or workers < 0:
            raise FleetConfigError(
                "fleet.workers must be an integer >= 0 (0 = auto)"
            )
        return cls(
            links=links,
            host=str(fleet.get("host", "127.0.0.1")),
            port=int(fleet.get("port", 9470)),
            restart=_restart_policy(fleet.get("restart", {})),
            alerts=alerts,
            backend=backend,
            workers=workers,
        )

    @classmethod
    def load(cls, path: str | Path) -> "FleetConfig":
        """Load a TOML (``.toml``) or JSON fleet config file."""
        path = Path(path)
        raw = path.read_bytes()
        if path.suffix.lower() == ".toml":
            if tomllib is None:
                raise FleetConfigError(
                    "TOML configs need Python >= 3.11 (tomllib); "
                    "use the JSON spelling of the same structure"
                )
            try:
                data = tomllib.loads(raw.decode("utf-8"))
            except tomllib.TOMLDecodeError as error:
                raise FleetConfigError(f"{path}: {error}") from error
        else:
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as error:
                raise FleetConfigError(f"{path}: {error}") from error
        return cls.from_dict(data)

    def link(self, link_id: str) -> LinkConfig:
        for link in self.links:
            if link.id == link_id:
                return link
        raise KeyError(link_id)
