"""The fleet supervisor: N link pipelines under one event loop.

:class:`FleetSupervisor` owns one :class:`~repro.fleet.pipeline.
LinkPipeline` per configured link, each wrapped in a
:class:`~repro.fleet.task.SupervisedTask` so a crashing link is
restarted with backoff instead of taking the daemon down — and a link
that keeps crashing is parked as ``failed`` without disturbing its
neighbours.

Thread model: the supervisor lives on the asyncio event-loop thread.
HTTP handler threads only *read* (``snapshot``, ``render_metrics`` —
safe because pipelines publish each run's state as one atomic
attribute write) or hand restart requests across via
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
from collections import Counter as TallyCounter
from typing import Any

from repro.fleet.config import FleetConfig
from repro.fleet.pipeline import LinkPipeline
from repro.fleet.task import SupervisedTask
from repro.obs.metrics import MetricsRegistry, merged_registry
from repro.obs.tracing import NULL_TRACER


class FleetSupervisor:
    """Run, watch, and report on every configured link pipeline."""

    def __init__(self, config: FleetConfig, tracer=NULL_TRACER) -> None:
        self.config = config
        self.pipelines: dict[str, LinkPipeline] = {
            link.id: LinkPipeline(link, tracer=tracer)
            for link in config.links
        }
        self.tasks: dict[str, SupervisedTask] = {
            link_id: SupervisedTask(
                link_id, pipeline.run, policy=config.restart
            )
            for link_id, pipeline in self.pipelines.items()
        }
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested = False
        self._shutdown_event: asyncio.Event | None = None

    # -- lifecycle (event-loop thread) -----------------------------------------

    def start(self) -> None:
        """Start every link task on the running event loop."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        if self._shutdown_requested:
            self._shutdown_event.set()
        for task in self.tasks.values():
            task.start()

    async def wait(self) -> None:
        """Block until every task reaches a terminal state (never, for
        ``watch`` sources — pair with :meth:`stop`)."""
        pending = [task._task for task in self.tasks.values()
                   if task._task is not None]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def stop(self) -> None:
        """Cancel every task and wait for all of them to land."""
        await asyncio.gather(
            *(task.stop() for task in self.tasks.values()),
            return_exceptions=True,
        )

    async def run(self, run_for: float | None = None) -> None:
        """Start the fleet and wait — for completion, ``run_for``
        seconds, or a :meth:`shutdown` request, whichever comes first.

        Natural completion leaves terminal states untouched (a FAILED
        link stays failed); a timeout or shutdown cancels what is still
        live."""
        self.start()
        waiter = asyncio.ensure_future(self.wait())
        stopper = asyncio.ensure_future(self._shutdown_event.wait())
        try:
            await asyncio.wait({waiter, stopper}, timeout=run_for,
                               return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            waiter.cancel()
            raise
        finally:
            stopper.cancel()
        if waiter.done():
            return
        await self.stop()
        await waiter

    # -- control (any thread) --------------------------------------------------

    def shutdown(self) -> None:
        """Ask a running :meth:`run` to stop the fleet and return.

        Callable before :meth:`start` (the request is remembered) and
        from signal handlers — it only sets a flag; the cancellation
        work happens inside :meth:`run` on the event loop."""
        self._shutdown_requested = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    def request_restart(self, link_id: str) -> bool:
        """Thread-safe restart request; False for unknown links or a
        supervisor that has not started."""
        task = self.tasks.get(link_id)
        loop = self._loop
        if task is None or loop is None:
            return False
        task.request_restart(loop)
        return True

    # -- reporting (any thread) ------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The ``/links`` document: one row per link (lifecycle +
        pipeline counters) plus a fleet-level state tally."""
        rows = []
        for link_id, task in self.tasks.items():
            row = task.snapshot()
            row.update(self.pipelines[link_id].row())
            rows.append(row)
        tally = TallyCounter(task.state.value
                             for task in self.tasks.values())
        return {"links": rows, "states": dict(sorted(tally.items()))}

    def render_metrics(self) -> str:
        """Fleet-wide Prometheus exposition: every link's registry
        merged under a ``link`` label, plus supervisor counters."""
        named = {
            link_id: pipeline.registry
            for link_id, pipeline in self.pipelines.items()
            if pipeline.registry is not None
        }
        merged = merged_registry(named, label="link")
        self._publish_supervisor_metrics(merged)
        return merged.render_prometheus()

    def _publish_supervisor_metrics(self, registry: MetricsRegistry) -> None:
        registry.gauge(
            "fleet_links", "Number of links this fleet supervises."
        ).set(len(self.tasks))
        for link_id, task in self.tasks.items():
            labels = {"link": link_id}
            registry.counter(
                "fleet_task_crashes_total",
                "Pipeline crashes caught by the supervisor.", labels,
            ).set(task.crashes_total)
            registry.counter(
                "fleet_task_restarts_total",
                "Manual restart requests honoured.", labels,
            ).set(task.restarts_total)
            registry.gauge(
                "fleet_task_up",
                "1 while the pipeline task is running, else 0.", labels,
            ).set(1.0 if task.state.value == "running" else 0.0)
