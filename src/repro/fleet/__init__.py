"""Fleet-scale monitoring daemon.

The paper monitored four backbone links with one-shot offline analysis;
a tier-1 POP has hundreds of links that must be watched continuously.
This package turns the single-link ``monitor`` pipeline into a
long-running multi-link service:

* :mod:`repro.fleet.config` — declarative fleet configuration
  (TOML/JSON): links, sources, alert thresholds, restart policy;
* :mod:`repro.fleet.task` — restartable supervised asyncio tasks with
  bounded exponential-backoff restarts and a visible lifecycle
  (``starting → running → degraded → failed/stopped``);
* :mod:`repro.fleet.sources` — async record sources: pcap replay,
  directory watch over rotating captures, live simulator feed;
* :mod:`repro.fleet.pipeline` — one link's capture → columnar ingest →
  streaming detection → windowed recorder chain, rebuilt fresh on every
  (re)start;
* :mod:`repro.fleet.supervisor` — owns N concurrent link pipelines;
* :mod:`repro.fleet.workers` — the ``process`` backend: links fanned
  out across supervised worker processes, relayed over command pipes;
* :mod:`repro.fleet.api` — the fleet-wide HTTP API (``/links``,
  per-link ``/state`` and ``/dashboard``, label-aggregated
  ``/metrics``, ``POST /links/<id>/restart``) — identical under both
  backends.

``repro-loops fleet <config>`` is the CLI entry point.
"""

from repro.fleet.api import FleetServer
from repro.fleet.config import FleetConfig, FleetConfigError, LinkConfig
from repro.fleet.pipeline import LinkPipeline
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.task import RestartPolicy, SupervisedTask, TaskState
from repro.fleet.workers import ProcessFleetSupervisor, build_supervisor

__all__ = [
    "FleetConfig",
    "FleetConfigError",
    "FleetServer",
    "FleetSupervisor",
    "LinkConfig",
    "LinkPipeline",
    "ProcessFleetSupervisor",
    "RestartPolicy",
    "SupervisedTask",
    "TaskState",
    "build_supervisor",
]
