"""One link's monitored detection pipeline.

:class:`LinkPipeline` is the ``body`` a :class:`~repro.fleet.task.
SupervisedTask` runs: source batches → streaming detection → windowed
recorder/alerts, using the exact same monitored feed as ``repro-loops
monitor`` (:func:`~repro.obs.live.attach_detector` /
:func:`~repro.obs.live.feed_chunk`), so a fleet link's loop counts are
byte-identical to an independent ``detect`` run over the same records.
Columnar source batches engage the streaming detector's batched tier;
irregular batches degrade to the per-record feed with identical output.

Every (re)start builds the whole chain fresh — registry, recorder,
alert engine, detector.  That is what makes restarts sound: the
streaming detector rejects time travel on its input, so resuming a
half-fed detector after a crash would poison it; replaying from scratch
into fresh state reproduces an uncrashed run exactly.  The previous
run's objects stay readable (the HTTP API swaps to the new ones via a
single attribute write) but are never fed again.

Record batches are processed on the default executor so N link
pipelines make progress on N cores while the event loop only
schedules.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.replica import resolve_kernel
from repro.core.streaming import StreamingLoopDetector
from repro.fleet.config import LinkConfig
from repro.fleet.sources import build_source, prefetch_batches
from repro.net.columnar import ColumnarChunk
from repro.obs.alerts import AlertEngine, HysteresisConfig, default_rules
from repro.obs.live import LiveMonitor, attach_detector, feed_chunk, feed_pairs
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import PipelineProfile
from repro.obs.tracing import NULL_TRACER


@dataclass
class RunArtifacts:
    """Everything one pipeline run builds; swapped atomically on
    (re)start so HTTP readers always see one coherent run."""

    registry: MetricsRegistry
    monitor: LiveMonitor
    streaming: StreamingLoopDetector
    profile: PipelineProfile
    started_at: float
    loops: list = field(default_factory=list)
    finished: bool = False


def _feed_batch(streaming, monitor, batch) -> tuple[list, int]:
    """Feed one source batch through the detector; returns ``(closed
    loops, byte count)``.

    Runs on the executor, never the event loop: both the detection work
    and the per-record byte accounting happen here, so the loop only
    schedules.  Columnar chunks take the batched tier via
    :func:`~repro.obs.live.feed_chunk` and read their byte count from
    the length column in one C-speed ``sum``; anything else (a plain
    iterable of pairs — kept for tests and custom sources) falls back to
    the per-record feed.
    """
    if isinstance(batch, ColumnarChunk):
        return (feed_chunk(streaming, monitor, batch),
                sum(batch.lengths))
    batch = list(batch)
    return (feed_pairs(streaming, monitor, batch),
            sum(len(data) for _, data in batch))


class _RateTracker:
    """Differences a monotonically growing counter against the wall
    clock, so ``/links`` rows can report instantaneous records/s.

    Two consecutive reads closer than ``min_interval`` return the
    previous rate instead of amplifying timer noise; a counter reset
    (fresh run after a restart) re-anchors instead of reporting a
    negative rate.
    """

    __slots__ = ("min_interval", "_at", "_total", "rate")

    def __init__(self, min_interval: float = 0.2) -> None:
        self.min_interval = min_interval
        self._at: float | None = None
        self._total = 0
        self.rate = 0.0

    def update(self, now: float, total: int) -> float:
        if self._at is None or total < self._total:
            self._at = now
            self._total = total
            self.rate = 0.0
            return self.rate
        elapsed = now - self._at
        if elapsed >= self.min_interval:
            self.rate = (total - self._total) / elapsed
            self._at = now
            self._total = total
        return self.rate


def _build_monitor(config: LinkConfig, tracer) -> tuple[
        MetricsRegistry, LiveMonitor]:
    registry = MetricsRegistry(enabled=True)
    alerts = config.alerts
    engine = AlertEngine(
        rules=default_rules(
            loss_share_threshold=alerts.loss_share_threshold,
            duration_tail_seconds=alerts.duration_tail_seconds,
        ) if alerts.enabled else [],
        tracer=tracer,
        hysteresis=HysteresisConfig(
            fire_after=alerts.fire_after,
            clear_after=alerts.clear_after,
        ),
    )
    monitor = LiveMonitor(
        registry=registry, alert_engine=engine, tracer=tracer
    )
    return registry, monitor


class LinkPipeline:
    """The restartable capture → detect → record chain for one link."""

    def __init__(self, config: LinkConfig, tracer=NULL_TRACER,
                 clock=time.time) -> None:
        self.config = config
        self.tracer = tracer
        self._clock = clock
        self.current: RunArtifacts | None = None
        self._rate = _RateTracker()

    # -- the supervised body ---------------------------------------------------

    async def run(self) -> None:
        registry, monitor = _build_monitor(self.config, self.tracer)
        profile = PipelineProfile(registry)
        monitor.add_state_source("perf", profile.snapshot)
        streaming = StreamingLoopDetector(
            config=self.config.detector, tracer=self.tracer
        )
        streaming.register_metrics(registry)
        attach_detector(monitor, streaming)
        artifacts = RunArtifacts(
            registry=registry,
            monitor=monitor,
            streaming=streaming,
            profile=profile,
            started_at=self._clock(),
        )
        self.current = artifacts
        source = build_source(self.config.source)
        loop = asyncio.get_running_loop()
        batches = prefetch_batches(source, profile,
                                   depth=self.config.prefetch)
        feeding: asyncio.Future | None = None
        try:
            while True:
                # source.wait is the time this pipeline spent starved
                # for input; detect.feed is time actually detecting.
                # Their ratio is the link's headroom.
                with profile.stage("source.wait"):
                    try:
                        batch = await anext(batches)
                    except StopAsyncIteration:
                        break
                with profile.stage("detect.feed",
                                   records=len(batch)) as span:
                    # Shielded: cancelling this coroutine (restart or
                    # stop) cannot stop the executor thread mid-feed, so
                    # the feed must be awaited to completion either way
                    # — flushing a detector another thread is still
                    # feeding corrupts its state.
                    feeding = loop.run_in_executor(
                        None, _feed_batch, streaming, monitor, batch
                    )
                    closed, nbytes = await asyncio.shield(feeding)
                    feeding = None
                    span.add(bytes=nbytes)
                artifacts.loops.extend(closed)
        finally:
            # Close the books even on cancellation so the final partial
            # windows are visible; a crashed run is replaced wholesale
            # by the next run's fresh artifacts anyway.
            if feeding is not None and not feeding.done():
                while not feeding.done():
                    try:
                        await asyncio.wait({feeding})
                    except asyncio.CancelledError:
                        continue  # the feed is finite; keep reaping
            if feeding is not None and not feeding.cancelled() \
                    and feeding.exception() is None:
                artifacts.loops.extend(feeding.result()[0])
            await batches.aclose()
            with profile.stage("detect.flush"):
                artifacts.loops.extend(streaming.flush())
            monitor.finish()
            artifacts.finished = True

    # -- read side (HTTP handler threads) --------------------------------------

    @property
    def registry(self) -> MetricsRegistry | None:
        current = self.current
        return None if current is None else current.registry

    @property
    def monitor(self) -> LiveMonitor | None:
        current = self.current
        return None if current is None else current.monitor

    def perf(self) -> dict[str, Any]:
        """The current run's stage-timing snapshot (the ``/perf`` and
        ``/links/<id>/perf`` document body)."""
        current = self.current
        if current is None:
            return {"stages": [], "queues": {}}
        return current.profile.snapshot()

    def records_per_s(self) -> float:
        """Instantaneous feed rate, differenced from the detector's
        record counter between reads (0.0 before the run starts and
        once the feed has drained)."""
        current = self.current
        if current is None:
            return 0.0
        return self._rate.update(self._clock(),
                                 current.streaming.stats.records)

    def row(self) -> dict[str, Any]:
        """The ``/links`` summary row for this pipeline."""
        current = self.current
        row: dict[str, Any] = {
            "id": self.config.id,
            "source": self.config.source.describe(),
            "records": 0,
            "records_per_s": 0.0,
            "loops": 0,
            "alerts_active": 0,
            "run_started_at": None,
            "run_finished": False,
        }
        if current is None:
            return row
        stats = current.streaming.stats
        row.update(
            records=stats.records,
            records_per_s=round(self.records_per_s(), 1),
            loops=stats.loops_emitted,
            alerts_active=len(current.monitor.alerts.active_rules()),
            run_started_at=current.started_at,
            run_finished=current.finished,
        )
        return row

    def state(self) -> dict[str, Any]:
        """The full per-link ``/state`` document."""
        current = self.current
        if current is None:
            return {"id": self.config.id,
                    "source": self.config.source.describe(),
                    "run": None}
        state = current.monitor.state()
        state["id"] = self.config.id
        state["source"] = self.config.source.describe()
        # The streaming chain itself is per-record (tier-independent
        # output); the kernel knob is surfaced so operators can see what
        # any batch re-analysis of this link would run.
        detector_state = state.setdefault("detector", {})
        detector_state["kernel"] = self.config.detector.kernel
        detector_state["resolved_kernel"] = resolve_kernel(
            self.config.detector.kernel
        )
        state["run"] = {
            "started_at": current.started_at,
            "finished": current.finished,
            "loops": current.streaming.stats.loops_emitted,
        }
        return state
