"""Restartable supervised asyncio tasks.

A fleet pipeline must not die because one pcap was truncated or one
simulator tick raised: the supervisor wraps each link's run loop in a
:class:`SupervisedTask` that restarts it with bounded exponential
backoff and keeps a visible lifecycle the HTTP API can report.

State machine::

     start()
        │
        ▼
    STARTING ──────────► RUNNING ──── body returns ────► STOPPED
        ▲                   │
        │    body raises    │ body raises
        │                   ▼
        └── backoff ──── DEGRADED ── budget exhausted ──► FAILED
                                                            │
                                      restart() re-arms ◄───┘

``stop()`` cancels from any state and lands in STOPPED.  ``restart()``
(and its thread-safe twin ``request_restart()``) re-runs the body
immediately *without* consuming the crash budget — a manual restart is
an operator action, not a failure — and re-arms a FAILED task with a
fresh budget.

The clock, sleeper, and jitter rng are injectable so tests can drive
the machine deterministically without real waiting.
"""

from __future__ import annotations

import asyncio
import enum
import logging
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

logger = logging.getLogger("repro.fleet")

#: Transitions kept per task for the API's ``history`` field.
HISTORY_LIMIT = 100


class TaskState(str, enum.Enum):
    """Lifecycle of a supervised task."""

    STARTING = "starting"
    RUNNING = "running"
    DEGRADED = "degraded"
    FAILED = "failed"
    STOPPED = "stopped"


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded exponential backoff with jitter.

    The *i*-th consecutive crash (0-based) waits
    ``min(backoff_cap, backoff_base * 2**i)`` seconds, stretched by up
    to ``jitter`` fractionally so a fleet of simultaneously-crashing
    pipelines does not restart in lockstep.  After ``max_restarts``
    consecutive crashes the task is declared FAILED and left for an
    operator.  A stretch of successful running resets the count.
    """

    max_restarts: int = 5
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_base <= 0:
            raise ValueError("backoff_base must be > 0")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, crashes: int, rng: random.Random) -> float:
        """Backoff before restart number ``crashes`` (1-based count of
        consecutive crashes so far)."""
        exponent = max(0, crashes - 1)
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** exponent))
        return base * (1.0 + self.jitter * rng.random())


class SupervisedTask:
    """One restartable background job with a visible lifecycle.

    ``body`` is an async callable run to completion; it is awaited anew
    on every (re)start, so per-run state belongs inside the body (the
    link pipeline rebuilds its detector/recorder/registry each run —
    that is what makes a restarted run reproduce a fresh one exactly).
    """

    def __init__(
        self,
        name: str,
        body: Callable[[], Awaitable[Any]],
        policy: RestartPolicy | None = None,
        *,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        rng: random.Random | None = None,
    ) -> None:
        self.name = name
        self.body = body
        self.policy = policy or RestartPolicy()
        self._clock = clock
        self._sleep = sleep
        # Deterministic per-task jitter: same name, same sequence.
        self._rng = rng or random.Random(name)
        self.state = TaskState.STOPPED
        self.crashes = 0  # consecutive crashes since last success/restart
        self.crashes_total = 0
        self.restarts_total = 0
        self.runs_completed = 0
        self.last_error: str | None = None
        self.since = self._clock()
        self.history: deque[dict[str, Any]] = deque(maxlen=HISTORY_LIMIT)
        self._task: asyncio.Task | None = None
        self._inner: asyncio.Future | None = None
        self._restart_requested = False
        self._stop_requested = False

    # -- state bookkeeping -----------------------------------------------------

    def _transition(self, state: TaskState, detail: str = "") -> None:
        self.state = state
        self.since = self._clock()
        self.history.append(
            {"at": self.since, "state": state.value, "detail": detail}
        )
        level = (logging.WARNING
                 if state in (TaskState.DEGRADED, TaskState.FAILED)
                 else logging.INFO)
        logger.log(level, "task %s -> %s%s", self.name, state.value,
                   f" ({detail})" if detail else "")

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> asyncio.Task:
        """Start (or re-start a terminal) task on the running loop."""
        if self._task is not None and not self._task.done():
            return self._task
        self._stop_requested = False
        self._restart_requested = False
        self.crashes = 0
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name=f"fleet:{self.name}"
        )
        return self._task

    async def stop(self) -> None:
        """Cancel the task and wait for it to land in STOPPED."""
        self._stop_requested = True
        task = self._task
        if task is None or task.done():
            if self.state is not TaskState.STOPPED:
                self._transition(TaskState.STOPPED, "stopped")
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    def restart(self) -> None:
        """Re-run the body now, without consuming the crash budget.

        From a live state this cancels the current run and starts over;
        from FAILED/STOPPED it re-arms the budget and starts fresh.
        Must be called on the event-loop thread — HTTP handlers use
        :meth:`request_restart` via ``call_soon_threadsafe`` instead.
        """
        self.restarts_total += 1
        self.crashes = 0
        if self._task is None or self._task.done():
            self.start()
            return
        self._restart_requested = True
        inner = self._inner
        if inner is not None and not inner.done():
            inner.cancel()

    def request_restart(self, loop: asyncio.AbstractEventLoop) -> None:
        """Thread-safe :meth:`restart` for HTTP handler threads."""
        loop.call_soon_threadsafe(self.restart)

    # -- the run loop ----------------------------------------------------------

    async def _await_interruptible(self, future: asyncio.Future) -> bool:
        """Await ``future`` as ``self._inner`` so a restart (which
        cancels ``_inner``) or a stop (which cancels this task) can
        interrupt it.  Returns True when interrupted by a restart;
        transitions to STOPPED and re-raises on a real cancellation.
        """
        self._inner = future
        try:
            await future
        except asyncio.CancelledError:
            # Outer cancellation (stop()) does not cancel the awaited
            # task on its own; reap it before leaving.
            if not future.done():
                future.cancel()
                try:
                    await future
                except (asyncio.CancelledError, Exception):
                    pass
            if self._restart_requested and not self._stop_requested:
                self._restart_requested = False
                return True
            self._transition(TaskState.STOPPED, "cancelled")
            raise
        finally:
            self._inner = None
        return False

    async def _run(self) -> None:
        while True:
            self._transition(TaskState.STARTING,
                             "restart" if self.restarts_total else "start")
            body = asyncio.ensure_future(self.body())
            self._transition(TaskState.RUNNING)
            try:
                if await self._await_interruptible(body):
                    continue
            except asyncio.CancelledError:
                raise
            except Exception as error:
                self.crashes += 1
                self.crashes_total += 1
                self.last_error = "".join(
                    traceback.format_exception_only(error)
                ).strip()
                if self.crashes > self.policy.max_restarts:
                    self._transition(
                        TaskState.FAILED,
                        f"crash budget exhausted after "
                        f"{self.crashes} consecutive crashes: "
                        f"{self.last_error}",
                    )
                    return
                delay = self.policy.delay(self.crashes, self._rng)
                self._transition(
                    TaskState.DEGRADED,
                    f"crash {self.crashes}/{self.policy.max_restarts}, "
                    f"restarting in {delay:.2f}s: {self.last_error}",
                )
                sleeper = asyncio.ensure_future(self._sleep(delay))
                await self._await_interruptible(sleeper)
                continue
            self.runs_completed += 1
            self.crashes = 0
            if self._restart_requested:
                self._restart_requested = False
                continue
            self._transition(TaskState.STOPPED, "completed")
            return

    # -- reporting -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready lifecycle snapshot for the HTTP API."""
        return {
            "name": self.name,
            "state": self.state.value,
            "since": self.since,
            "crashes": self.crashes,
            "crashes_total": self.crashes_total,
            "restarts_total": self.restarts_total,
            "runs_completed": self.runs_completed,
            "last_error": self.last_error,
            "history": list(self.history),
        }
