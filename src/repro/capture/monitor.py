"""Passive link monitor.

Equivalent of the paper's optical taps: attached to one direction of one
link, it records every packet crossing that direction into a
:class:`~repro.net.trace.Trace` with a configurable snaplen (40 bytes by
default, exactly like the Sprint collection infrastructure — IP header
plus TCP/UDP header, no payload).
"""

from __future__ import annotations

import heapq

from repro.net.packet import Packet
from repro.net.trace import SNAPLEN_40, Trace, TraceRecord
from repro.routing.forwarding import ForwardingEngine


class LinkMonitor:
    """Captures one direction of a link into a trace."""

    def __init__(
        self,
        engine: ForwardingEngine,
        from_router: str,
        to_router: str,
        snaplen: int = SNAPLEN_40,
    ) -> None:
        self.from_router = from_router
        self.to_router = to_router
        self.snaplen = snaplen
        link = engine.topology.link_between(from_router, to_router)
        self.trace = Trace(
            link_name=f"{from_router}->{to_router}", snaplen=snaplen
        )
        self._pending: list[TraceRecord] = []
        engine.add_tap(from_router, to_router, self._observe)

    def _observe(self, timestamp: float, packet: Packet) -> None:
        # Taps can fire out of order when queueing reorders departures
        # across scheduler ties; buffer and sort on finalize.
        self._pending.append(
            TraceRecord.capture(timestamp, packet, self.snaplen)
        )

    def drain_since(self, cursor: int) -> tuple[int, list[TraceRecord]]:
        """Buffered records not yet seen by a live feed.

        ``cursor`` is the value returned by the previous call (0 to
        start).  Cursors index the pending buffer, so they are only
        valid between :meth:`finalize` calls — live feeds drain fully
        before finalizing.  Records come back in capture order, which
        may include scheduler-tie reorderings; live consumers are
        expected to tolerate that (the trace itself is sorted at
        finalize, exactly as before).
        """
        pending = self._pending
        return len(pending), pending[cursor:]

    def finalize(self) -> Trace:
        """Merge buffered records into the trace and return it.

        A no-op when nothing is pending, so repeated calls are cheap.
        The already-finalized records stay sorted between calls, so the
        pending batch is sorted alone and merged in — O(p log p + n)
        rather than re-sorting the whole trace every time.
        """
        if self._pending:
            self._pending.sort(key=lambda record: record.timestamp)
            records = self.trace.records
            if not records or records[-1].timestamp <= self._pending[0].timestamp:
                records.extend(self._pending)
            else:
                self.trace.records = list(heapq.merge(
                    records, self._pending,
                    key=lambda record: record.timestamp,
                ))
            self._pending = []
        return self.trace

    @property
    def packets_seen(self) -> int:
        return len(self.trace.records) + len(self._pending)

    def register_metrics(self, registry) -> None:
        """Publish monitor counters via a weakly-held pull collector."""
        registry.register_collector(self._publish_metrics)

    def _publish_metrics(self, registry) -> None:
        registry.counter(
            "monitor_packets_seen_total",
            "Packets captured on the monitored link direction",
        ).set(self.packets_seen)
        registry.gauge(
            "monitor_snaplen_bytes", "Capture snap length"
        ).set(self.snaplen)
