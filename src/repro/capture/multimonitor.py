"""Monitoring several links at once.

The paper's traces were collected "in parallel over multiple
uni-directional links"; each was analyzed separately.
:class:`MonitorArray` packages that setup — one passive monitor per link
direction on a shared engine — and :mod:`repro.core.vantage` merges the
per-link detections into AS-wide loop events.
"""

from __future__ import annotations

from repro.capture.monitor import LinkMonitor
from repro.net.trace import SNAPLEN_40, Trace
from repro.routing.forwarding import ForwardingEngine


class MonitorArray:
    """Passive monitors on several link directions of one engine."""

    def __init__(self, engine: ForwardingEngine,
                 directions: list[tuple[str, str]],
                 snaplen: int = SNAPLEN_40) -> None:
        if not directions:
            raise ValueError("need at least one direction to monitor")
        seen: set[tuple[str, str]] = set()
        self._monitors: dict[tuple[str, str], LinkMonitor] = {}
        for direction in directions:
            if direction in seen:
                raise ValueError(f"duplicate monitor direction {direction}")
            seen.add(direction)
            self._monitors[direction] = LinkMonitor(
                engine, direction[0], direction[1], snaplen=snaplen
            )

    @property
    def directions(self) -> list[tuple[str, str]]:
        return list(self._monitors)

    def monitor(self, direction: tuple[str, str]) -> LinkMonitor:
        return self._monitors[direction]

    def finalize(self) -> dict[str, Trace]:
        """All traces, keyed by ``"a->b"`` direction names."""
        return {
            f"{a}->{b}": monitor.finalize()
            for (a, b), monitor in self._monitors.items()
        }
