"""Monitoring several links at once.

The paper's traces were collected "in parallel over multiple
uni-directional links"; each was analyzed separately.
:class:`MonitorArray` packages that setup — one passive monitor per link
direction on a shared engine — and :mod:`repro.core.vantage` merges the
per-link detections into AS-wide loop events.
"""

from __future__ import annotations

import heapq

from repro.capture.monitor import LinkMonitor
from repro.net.trace import SNAPLEN_40, Trace
from repro.routing.forwarding import ForwardingEngine


class MonitorArray:
    """Passive monitors on several link directions of one engine."""

    def __init__(self, engine: ForwardingEngine,
                 directions: list[tuple[str, str]],
                 snaplen: int = SNAPLEN_40) -> None:
        if not directions:
            raise ValueError("need at least one direction to monitor")
        seen: set[tuple[str, str]] = set()
        self._monitors: dict[tuple[str, str], LinkMonitor] = {}
        for direction in directions:
            if direction in seen:
                raise ValueError(f"duplicate monitor direction {direction}")
            seen.add(direction)
            self._monitors[direction] = LinkMonitor(
                engine, direction[0], direction[1], snaplen=snaplen
            )

    @property
    def directions(self) -> list[tuple[str, str]]:
        return list(self._monitors)

    def monitor(self, direction: tuple[str, str]) -> LinkMonitor:
        return self._monitors[direction]

    def finalize(self) -> dict[str, Trace]:
        """All traces, keyed by ``"a->b"`` direction names."""
        return {
            f"{a}->{b}": monitor.finalize()
            for (a, b), monitor in self._monitors.items()
        }

    def finalize_merged(self, link_name: str = "merged") -> Trace:
        """All directions merged into one time-ordered trace.

        Two links can capture records at the *identical* timestamp (the
        simulator stamps departures sharing one scheduler tick, and real
        taps share clock granularity).  A plain timestamp sort would
        order such ties by whichever link happened to be visited first —
        dict insertion order, i.e. the ``directions`` constructor
        argument — so two arrays watching the same links in a different
        order would produce different merged traces.  The merge instead
        breaks timestamp ties by link id (the sorted ``"a->b"`` name),
        and preserves capture order within one link, so the result is a
        deterministic function of what was captured.
        """
        per_link = sorted(self.finalize().items())
        merged = Trace(link_name=link_name,
                       snaplen=max(trace.snaplen
                                   for _, trace in per_link))
        streams = [
            ((record.timestamp, link_id, record)
             for record in trace.records)
            for link_id, trace in per_link
        ]
        # heapq.merge is stable: for equal (timestamp, link_id) keys —
        # ties within one link — records keep their per-link order.
        merged.records = [
            record for _, _, record in heapq.merge(
                *streams, key=lambda item: (item[0], item[1])
            )
        ]
        return merged
