"""Passive capture: link monitors that turn forwarded packets into traces."""

from repro.capture.monitor import LinkMonitor
from repro.capture.multimonitor import MonitorArray

__all__ = ["LinkMonitor", "MonitorArray"]
