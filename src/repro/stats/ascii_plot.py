"""Terminal plotting: CDF curves, bar charts and scatters as text.

The paper's figures are CDFs, bars and a scatter; rendering them as
ASCII lets ``repro-loops report`` and the benchmark outputs show the
*curve*, not just quantile tables, with no plotting dependency.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping, Sequence

from repro.stats.cdf import EmpiricalCdf


def _format_x(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.2g}"
    return f"{value:.3g}"


def cdf_plot(
    cdf: EmpiricalCdf,
    title: str = "",
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
) -> str:
    """Render a CDF as an ASCII curve (y: 0..1, x: value range)."""
    if cdf.empty:
        return f"{title}\n(no samples)"
    lo, hi = cdf.min, cdf.max
    if log_x:
        lo = max(lo, 1e-9)
        hi = max(hi, lo * 1.0001)
    if hi <= lo:
        hi = lo + 1.0

    def x_at(column: int) -> float:
        fraction = column / (width - 1)
        if log_x:
            return math.exp(
                math.log(lo) + fraction * (math.log(hi) - math.log(lo))
            )
        return lo + fraction * (hi - lo)

    grid = [[" "] * width for _ in range(height)]
    for column in range(width):
        y = cdf.fraction_at_or_below(x_at(column))
        row = height - 1 - min(height - 1, int(y * (height - 1) + 0.5))
        grid[row][column] = "*"
        # Fill vertical jumps so steps read as steps.
        if column:
            prev_y = cdf.fraction_at_or_below(x_at(column - 1))
            prev_row = height - 1 - min(
                height - 1, int(prev_y * (height - 1) + 0.5)
            )
            step = 1 if prev_row < row else -1
            for r in range(prev_row, row, step):
                grid[r][column] = "|" if grid[r][column] == " " else "*"

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_label = 1.0 - i / (height - 1)
        lines.append(f"{y_label:4.2f} |" + "".join(row))
    axis = "     +" + "-" * width
    lines.append(axis)
    left = _format_x(lo)
    right = _format_x(hi)
    mid = _format_x(x_at(width // 2))
    pad = width - len(left) - len(mid) - len(right)
    half = max(1, pad // 2)
    lines.append("      " + left + " " * half + mid
                 + " " * max(1, pad - half) + right
                 + ("  (log x)" if log_x else ""))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[Hashable, float],
    title: str = "",
    width: int = 50,
    sort_keys: bool = True,
) -> str:
    """Render a categorical distribution as horizontal bars."""
    if not values:
        return f"{title}\n(no data)"
    items = list(values.items())
    if sort_keys:
        items.sort(key=lambda item: str(item[0]))
    peak = max(value for _, value in items) or 1.0
    label_width = max(len(str(key)) for key, _ in items)
    lines = [title] if title else []
    for key, value in items:
        bar = "#" * max(0, int(round(value / peak * width)))
        if value > 0 and not bar:
            bar = "."
        lines.append(f"{str(key):>{label_width}} |{bar} {value:g}")
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[tuple[float, float]],
    title: str = "",
    width: int = 60,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render (x, y) points as an ASCII scatter (the Figure 7 shape)."""
    if not points:
        return f"{title}\n(no points)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = min(width - 1,
                     int((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = height - 1 - min(
            height - 1, int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        )
        grid[row][column] = "o" if grid[row][column] == " " else "@"
    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   {_format_x(x_lo)}"
                 + " " * max(1, width - 14)
                 + f"{_format_x(x_hi)}  {x_label}")
    return "\n".join(lines)
