"""Fixed-width bucket time series.

The loss-impact analysis (Sec. VI: "up to 9% of packet loss per minute")
needs per-minute ratios; :class:`BucketSeries` counts events into
fixed-width time buckets and computes per-bucket ratios against a second
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SeriesError(ValueError):
    """Raised for invalid bucket parameters."""


@dataclass
class BucketSeries:
    """Event counts in fixed-width time buckets."""

    width: float = 60.0
    counts: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise SeriesError(f"bucket width must be positive: {self.width}")

    def add(self, time: float, amount: float = 1.0) -> None:
        bucket = int(time // self.width)
        self.counts[bucket] = self.counts.get(bucket, 0.0) + amount

    def get(self, bucket: int) -> float:
        return self.counts.get(bucket, 0.0)

    @property
    def total(self) -> float:
        return sum(self.counts.values())

    @property
    def buckets(self) -> list[int]:
        return sorted(self.counts)

    def ratio_series(self, denominator: "BucketSeries") -> dict[int, float]:
        """Per-bucket self/denominator ratios.

        Buckets whose denominator is zero — absent entirely, or recorded
        with an explicit ``0.0`` count (an idle minute on the monitored
        link) — are **skipped**, never divided: the Sec. VI loss-ratio
        panel must not raise :class:`ZeroDivisionError` on quiet windows.
        Negative denominator counts (a mis-fed series) are skipped under
        the same ``<= 0`` rule rather than producing nonsense ratios.
        """
        if denominator.width != self.width:
            raise SeriesError("bucket widths differ")
        ratios: dict[int, float] = {}
        for bucket, count in self.counts.items():
            denom = denominator.get(bucket)
            if denom > 0:
                ratios[bucket] = count / denom
        return ratios

    def max_ratio(self, denominator: "BucketSeries") -> float:
        """The peak per-bucket ratio.

        0.0 when no bucket survives :meth:`ratio_series` — disjoint
        series, or every overlapping denominator bucket zero-valued.
        """
        ratios = self.ratio_series(denominator)
        return max(ratios.values(), default=0.0)
