"""Categorical distributions (normalized histograms).

Figures 2, 5 and 6 of the paper are bar charts over discrete categories
(TTL deltas; traffic types).  :class:`CategoricalDistribution` holds the
counts and exposes fractions, which the report layer renders as rows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping


@dataclass
class CategoricalDistribution:
    """Counts over hashable categories with normalized access."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_items(cls, items: Iterable[Hashable]) -> "CategoricalDistribution":
        return cls(counts=Counter(items))

    @classmethod
    def from_counts(cls, counts: Mapping[Hashable, int]) -> "CategoricalDistribution":
        return cls(counts=Counter(counts))

    def add(self, category: Hashable, count: int = 1) -> None:
        self.counts[category] += count

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, category: Hashable) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.counts.get(category, 0) / total

    def fractions(self) -> dict[Hashable, float]:
        total = self.total
        if total == 0:
            return {}
        return {category: count / total
                for category, count in self.counts.items()}

    def mode(self) -> Hashable:
        if not self.counts:
            raise ValueError("empty distribution has no mode")
        return self.counts.most_common(1)[0][0]

    def sorted_items(self) -> list[tuple[Hashable, int]]:
        """Items sorted by category (for stable table rendering)."""
        return sorted(self.counts.items(), key=lambda item: str(item[0]))

    def __len__(self) -> int:
        return len(self.counts)
