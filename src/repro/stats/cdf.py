"""Empirical cumulative distribution functions.

Every CDF figure in the paper (Figs. 3, 4, 8, 9) is reproduced as an
:class:`EmpiricalCdf`; the benchmark harness prints its points as the
series the figure plots.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence


class CdfError(ValueError):
    """Raised for invalid CDF queries (e.g. on empty data)."""


@dataclass(frozen=True)
class EmpiricalCdf:
    """An immutable empirical CDF over a sample."""

    values: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "EmpiricalCdf":
        return cls(values=tuple(sorted(samples)))

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def empty(self) -> bool:
        return not self.values

    def fraction_at_or_below(self, x: float) -> float:
        """F(x) = P[X <= x]."""
        if self.empty:
            raise CdfError("empty CDF")
        return bisect_right(self.values, x) / self.n

    def fraction_below(self, x: float) -> float:
        """P[X < x]."""
        if self.empty:
            raise CdfError("empty CDF")
        return bisect_left(self.values, x) / self.n

    def quantile(self, q: float) -> float:
        """The smallest x with F(x) >= q, for q in (0, 1]."""
        if self.empty:
            raise CdfError("empty CDF")
        if not 0 < q <= 1:
            raise CdfError(f"quantile out of range: {q}")
        index = max(0, min(self.n - 1, int(q * self.n + 0.999999) - 1))
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def min(self) -> float:
        if self.empty:
            raise CdfError("empty CDF")
        return self.values[0]

    @property
    def max(self) -> float:
        if self.empty:
            raise CdfError("empty CDF")
        return self.values[-1]

    def mean(self) -> float:
        if self.empty:
            raise CdfError("empty CDF")
        return sum(self.values) / self.n

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """(x, F(x)) pairs suitable for plotting, thinned to ``max_points``."""
        if self.empty:
            return []
        step = max(1, self.n // max_points)
        pts = [
            (self.values[i], (i + 1) / self.n)
            for i in range(0, self.n, step)
        ]
        if pts[-1][0] != self.values[-1]:
            pts.append((self.values[-1], 1.0))
        return pts

    def step_sizes(self, threshold: float = 0.05) -> list[tuple[float, float]]:
        """Locations where the CDF jumps by at least ``threshold``.

        Used to verify the paper's step-pattern observations (e.g. Fig. 3's
        jumps at ~31 and ~63 replicas).  Returns (value, jump size) pairs;
        repeated identical values accumulate into one jump.
        """
        if self.empty:
            return []
        jumps: list[tuple[float, float]] = []
        i = 0
        while i < self.n:
            j = i
            while j < self.n and self.values[j] == self.values[i]:
                j += 1
            size = (j - i) / self.n
            if size >= threshold:
                jumps.append((self.values[i], size))
            i = j
        return jumps
