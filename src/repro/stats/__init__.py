"""Small statistics toolkit used by the analysis and benchmark harnesses."""

from repro.stats.cdf import EmpiricalCdf
from repro.stats.hist import CategoricalDistribution
from repro.stats.timeseries import BucketSeries
from repro.stats.ascii_plot import bar_chart, cdf_plot, scatter_plot

__all__ = [
    "EmpiricalCdf",
    "CategoricalDistribution",
    "BucketSeries",
    "cdf_plot",
    "bar_chart",
    "scatter_plot",
]
