"""End-to-end backbone scenarios.

Each scenario wires topology + IGP + BGP + workload + failures + monitor
into one reproducible run, standing in for one of the paper's Sprint
traces.  :data:`TABLE1_SCENARIOS` holds the four rows of Table I.
"""

from repro.sim.backbone import BackboneScenario, ScenarioConfig, ScenarioRun
from repro.sim.scenarios import TABLE1_SCENARIOS, table1_scenario

__all__ = [
    "BackboneScenario",
    "ScenarioConfig",
    "ScenarioRun",
    "TABLE1_SCENARIOS",
    "table1_scenario",
]
