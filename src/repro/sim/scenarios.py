"""The four Table I scenarios.

The paper's traces differ in utilization and in the character of their
loops: Backbones 1 and 2 see longer (BGP-flavoured) loops and Backbone 2
carries an order of magnitude more traffic; Backbones 3 and 4 are lightly
utilized with mostly sub-10-second (IGP-flavoured) loops, and Backbone 4
shows a broader TTL-delta mix (55%/35% at deltas 2/3).  Each scenario
tilts the event mix and timers accordingly.  Durations are minutes rather
than the paper's hours — every reported metric is a distribution or
ratio, so trace length only sets sample size (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import replace

from repro.routing.bgp import BgpTimers
from repro.routing.linkstate import LinkStateTimers
from repro.sim.backbone import BackboneScenario, ScenarioConfig
from repro.traffic.ttl import InitialTtlModel

#: Slow BGP (propagation spread of tens of seconds, as in measured
#: delayed BGP convergence): long-lived loops, some beyond 10 s.
_SLOW_BGP = BgpTimers(
    propagation_delay=1.0,
    propagation_jitter=22.0,
    fib_update_delay=0.2,
    fib_update_jitter=1.0,
)

#: Snappy IGP: sub-second convergence, loops of hundreds of ms.
_FAST_IGP = LinkStateTimers()

#: Sluggish FIB updates (old linecards): wider IGP loop windows.
_SLOW_FIB_IGP = LinkStateTimers(
    fib_update_delay=0.4,
    fib_update_jitter=1.2,
)

#: Backbone 4's TTL population: three dominant initial values
#: (the paper's Fig. 8 shows three distinct duration steps there).
_THREE_MODE_TTL = InitialTtlModel(
    bases={64: 45.0, 128: 35.0, 255: 20.0},
    upstream_hops=(3, 14),
)


TABLE1_SCENARIOS: dict[str, ScenarioConfig] = {
    # Low utilization; BGP-heavy events; longer loops.
    "backbone1": ScenarioConfig(
        name="backbone1",
        seed=101,
        duration=300.0,
        rate_pps=250.0,
        igp_flaps=5,
        bgp_withdrawals=6,
        withdrawal_holdtime=45.0,
        bgp_timers=_SLOW_BGP,
        igp_timers=_SLOW_FIB_IGP,
    ),
    # High utilization (the paper's 243 Mbps link); BGP events too.
    "backbone2": ScenarioConfig(
        name="backbone2",
        seed=206,
        duration=300.0,
        rate_pps=900.0,
        n_flows=3000,
        igp_flaps=5,
        bgp_withdrawals=5,
        withdrawal_holdtime=40.0,
        bgp_timers=_SLOW_BGP,
        igp_timers=_SLOW_FIB_IGP,
    ),
    # Low utilization; IGP flaps dominate; short loops.
    "backbone3": ScenarioConfig(
        name="backbone3",
        seed=303,
        duration=300.0,
        rate_pps=220.0,
        igp_flaps=14,
        flap_downtime=(4.0, 20.0),
        bgp_withdrawals=1,
        igp_timers=_FAST_IGP,
    ),
    # Low utilization; IGP flaps on the engineered-triangle topology:
    # a mix of two- and three-router loops (the paper's 55%/35% TTL
    # deltas of 2 and 3 on this trace) and a three-mode TTL population.
    "backbone4": ScenarioConfig(
        name="backbone4",
        seed=404,
        duration=300.0,
        rate_pps=260.0,
        pops=10,
        extra_edges=2,
        igp_flaps=14,
        flap_downtime=(4.0, 20.0),
        bgp_withdrawals=6,
        withdrawal_holdtime=25.0,
        igp_timers=_SLOW_FIB_IGP,
        ttl_model=_THREE_MODE_TTL,
        topology_style="triangle",
    ),
}


def table1_scenario(name: str, **overrides: object) -> BackboneScenario:
    """A Table I scenario by name, optionally with config overrides
    (e.g. ``duration=60.0`` for quick tests)."""
    try:
        config = TABLE1_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choices: "
            f"{sorted(TABLE1_SCENARIOS)}"
        ) from None
    if overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    return BackboneScenario(config)
