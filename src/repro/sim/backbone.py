"""Backbone scenario builder.

A :class:`BackboneScenario` assembles the whole stack — POP-level
topology, link-state IGP, I-BGP prefix layer, Poisson workload, link
failures and BGP withdrawals, and a passive monitor on one inter-POP link
direction — then runs it and hands back the monitor's trace together with
the simulator's ground truth.

Loops are produced by two mechanisms, both emergent:

* **IGP flaps** of links near the monitored link (convergence windows of
  hundreds of milliseconds → short loops, Fig. 9's "90% under 10 s");
* **BGP withdrawals** of multihomed prefixes (propagation of seconds →
  the longer loops the paper sees on Backbones 1 and 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.capture.monitor import LinkMonitor
from repro.net.addr import IPv4Prefix
from repro.net.trace import Trace
from repro.routing.bgp import BgpProcess, BgpTimers
from repro.routing.events import EventScheduler
from repro.routing.failures import FailureSchedule
from repro.routing.forwarding import ForwardingEngine, PacketFate
from repro.routing.journal import RoutingJournal
from repro.routing.linkstate import LinkStateProtocol, LinkStateTimers
from repro.routing.topology import (
    Topology,
    backbone_topology,
    triangle_backbone_topology,
)
from repro.traffic.flows import PrefixPopulation
from repro.traffic.generator import WorkloadGenerator
from repro.traffic.mix import DEFAULT_MIX, TrafficMix
from repro.traffic.ttl import DEFAULT_TTL_MODEL, InitialTtlModel


class ScenarioError(ValueError):
    """Raised for inconsistent scenario configuration."""


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one reproducible backbone run."""

    name: str
    seed: int = 0
    pops: int = 8
    extra_edges: int = 4
    duration: float = 300.0
    rate_pps: float = 400.0
    n_prefixes: int = 150
    n_flows: int = 1500
    igp_flaps: int = 5
    flap_downtime: tuple[float, float] = (5.0, 30.0)
    bgp_withdrawals: int = 3
    withdrawal_holdtime: float = 60.0
    capacity_bps: float = 622_080_000.0
    mix: TrafficMix = DEFAULT_MIX
    ttl_model: InitialTtlModel = DEFAULT_TTL_MODEL
    igp_timers: LinkStateTimers = field(default_factory=LinkStateTimers)
    bgp_timers: BgpTimers = field(default_factory=BgpTimers)
    icmp_time_exceeded_probability: float = 0.5
    keep_audits: bool = True
    warmup: float = 5.0
    #: Epoch-versioned resolved-route caching in the forwarding engine.
    #: False restores per-packet control-plane resolution (the slow
    #: reference path; output is bit-identical either way).
    route_cache: bool = True
    #: "random" — ring + random chords; "triangle" — the engineered
    #: micro-loop motif topology (multi-hop loops on the monitored link).
    topology_style: str = "random"

    def __post_init__(self) -> None:
        if self.duration <= self.warmup:
            raise ScenarioError("duration must exceed warmup")
        if self.pops < 4:
            raise ScenarioError("need at least 4 POPs")
        if self.topology_style not in ("random", "triangle"):
            raise ScenarioError(
                f"unknown topology style {self.topology_style!r}"
            )
        if self.topology_style == "triangle" and self.pops < 6:
            raise ScenarioError("triangle topology needs at least 6 POPs")


@dataclass(slots=True)
class ScenarioRun:
    """Output of one scenario execution."""

    config: ScenarioConfig
    trace: Trace
    engine: ForwardingEngine
    topology: Topology
    igp: LinkStateProtocol
    bgp: BgpProcess
    generator: WorkloadGenerator
    monitor_direction: tuple[str, str]
    journal: RoutingJournal
    monitor: LinkMonitor

    @property
    def ground_truth_looped(self) -> int:
        """Packets that revisited a router anywhere in the AS (audit)."""
        return sum(1 for audit in self.engine.audits if audit.looped)

    @property
    def ground_truth_expired(self) -> int:
        return self.engine.fate_counts[PacketFate.TTL_EXPIRED]

    def looped_packet_ids_crossing_monitor(self) -> set[int]:
        """Audited looped packets that crossed the monitored direction at
        least twice — the packets the detector could possibly see.

        Requires the engine to have been built with
        ``record_crossings=True``.
        """
        from_router, to_router = self.monitor_direction
        wanted = f"{from_router}->{to_router}"
        ids: set[int] = set()
        for audit in self.engine.audits:
            if not audit.looped:
                continue
            crossings = sum(
                1 for _, _, direction, _ in audit.crossings
                if direction == wanted
            )
            if crossings >= 2:
                ids.add(audit.packet_id)
        return ids


class BackboneScenario:
    """Builds and runs one backbone scenario."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config

    # -- assembly ------------------------------------------------------------

    def build(self, record_crossings: bool = False,
              tracer=None) -> ScenarioRun:
        """Wire the full stack without running it.

        ``tracer`` (a :class:`repro.obs.tracing.Tracer`) is re-clocked to
        simulation time and attached to the control plane — IGP, BGP, the
        failure injector (which reads ``igp.tracer``), and every
        per-router prefix FIB.  It is wired *after* protocol start so the
        trace records convergence activity, not the thousands of initial
        route installs.
        """
        config = self.config
        seed = config.seed
        topo_rng = random.Random(seed)
        if config.topology_style == "triangle":
            topology = triangle_backbone_topology(
                pops=config.pops,
                rng=topo_rng,
                extra_edges=config.extra_edges,
                capacity_bps=config.capacity_bps,
            )
        else:
            topology = backbone_topology(
                pops=config.pops,
                rng=topo_rng,
                extra_edges=config.extra_edges,
                capacity_bps=config.capacity_bps,
            )
        scheduler = EventScheduler()
        journal = RoutingJournal()
        igp = LinkStateProtocol(
            topology, scheduler, timers=config.igp_timers,
            rng=random.Random(seed + 1),
            journal=journal,
        )
        bgp = BgpProcess(
            topology, scheduler, igp, timers=config.bgp_timers,
            rng=random.Random(seed + 2),
        )

        routers = topology.routers
        # Egresses spread around the POP ring (real backbones peer at
        # several POPs).  Hot-potato routing splits the AS into catchment
        # areas; single-homed prefixes at far egresses create *transit*
        # traffic across the monitored link, which is what lets loops
        # longer than two routers show up there.
        count = len(routers)
        if config.topology_style == "triangle":
            # Keep pop2 (the chord endpoint) a pure transit router and
            # put one egress on the far side so near-pop0 traffic
            # transits the failing pop0–pop(n-1) link.
            indices = (0, count // 2, 3 * count // 4)
        elif count >= 8:
            indices = (0, count // 4, count // 2, 3 * count // 4)
        else:
            indices = (0, count // 2)
        egresses = [routers[i] for i in dict.fromkeys(indices)]
        population = PrefixPopulation(
            egresses=egresses,
            n_prefixes=config.n_prefixes,
            rng=random.Random(seed + 3),
        )
        for prefix, egress in population.originations():
            bgp.originate(prefix, egress)
        # Multicast groups exit at the first egress so MCAST packets
        # actually cross backbone links (Figure 5 counts them on the link).
        bgp.originate(IPv4Prefix.parse("224.0.0.0/4"), egresses[0])

        igp.start()
        bgp.start()

        if tracer is not None:
            tracer.clock = lambda: scheduler.now
            igp.tracer = tracer
            bgp.tracer = tracer
            for name in routers:
                bgp.fib(name).on_mutation = (
                    lambda op, prefix, next_hop, epoch, router=name:
                        tracer.event("fib_mutation", router=router, op=op,
                                     prefix=str(prefix), next_hop=next_hop,
                                     epoch=epoch)
                )

        engine = ForwardingEngine(
            topology, scheduler, igp, bgp,
            rng=random.Random(seed + 4),
            keep_audits=config.keep_audits,
            record_crossings=record_crossings,
            icmp_time_exceeded_probability=(
                config.icmp_time_exceeded_probability
            ),
            route_cache=config.route_cache,
        )
        generator = WorkloadGenerator(
            engine, population,
            rate_pps=config.rate_pps,
            rng=random.Random(seed + 5),
            mix=config.mix,
            ttl_model=config.ttl_model,
            n_flows=config.n_flows,
        )
        monitor_direction = self._monitor_direction(topology)
        monitor = LinkMonitor(engine, *monitor_direction)

        run = ScenarioRun(
            config=config,
            trace=monitor.trace,
            engine=engine,
            topology=topology,
            igp=igp,
            bgp=bgp,
            generator=generator,
            monitor_direction=monitor_direction,
            journal=journal,
            monitor=monitor,
        )
        self._monitor = monitor
        self._schedule_events(run, random.Random(seed + 6))
        return run

    def run(self, record_crossings: bool = False, tracer=None,
            progress=None, live_monitor=None) -> ScenarioRun:
        """Build, execute to completion, and finalize the trace.

        ``progress`` is called as ``progress(sim_now)`` at 1/20th of the
        scenario duration (at least every simulated second) — a heartbeat
        for long runs.  The repeating event is cancelled after the drain,
        so the scheduler queue still empties.

        ``live_monitor`` (a :class:`~repro.obs.live.LiveMonitor`) is fed
        the tap's captured records as the simulation advances — drained
        once per simulated second from the capture buffer, never from
        the per-packet path — so a scrape endpoint running alongside the
        simulation shows windows filling in simulation time.
        """
        run = self.build(record_crossings=record_crossings, tracer=tracer)
        config = self.config
        scheduler = run.engine.scheduler
        heartbeat = None
        if progress is not None:
            interval = max(config.duration / 20.0, 1.0)
            heartbeat = scheduler.every(
                interval, lambda: progress(scheduler.now)
            )
        feeder = None
        if live_monitor is not None:
            cursor = [0]

            def feed() -> None:
                cursor[0] = self._feed_live(live_monitor, cursor[0])

            feeder = scheduler.every(1.0, feed)
        run.generator.run(0.0, config.duration)
        # Drain: events (BGP propagation, in-flight packets) can outlive
        # the workload window.
        scheduler.run(until=config.duration + 120.0)
        if heartbeat is not None:
            heartbeat.cancel()
        if feeder is not None:
            feeder.cancel()
            self._feed_live(live_monitor, cursor[0])
        self._monitor.finalize()
        return run

    def _feed_live(self, live_monitor, cursor: int) -> int:
        """Feed records captured since ``cursor`` into the live monitor;
        returns the new cursor."""
        cursor, records = self._monitor.drain_since(cursor)
        for record in records:
            live_monitor.observe_record(record.timestamp)
        return cursor

    # -- event scheduling ----------------------------------------------------------

    def _monitor_direction(self, topology: Topology) -> tuple[str, str]:
        """Monitor the link between the primary egress and its first hop
        toward the backup egress.

        For the engineered triangle topology the loop motif sits on
        pop1→pop0, so that direction is monitored directly.

        During an egress shift away from the primary, the not-yet-updated
        neighbor still forwards toward the primary while the primary
        already forwards toward the backup — a loop exactly on this link,
        observed in the (neighbor → primary) direction.  IGP detours
        around the primary's other adjacencies cross it too.
        """
        routers = topology.routers
        if self.config.topology_style == "triangle":
            return (routers[1], routers[0])
        primary, backup = routers[0], routers[len(routers) // 2]
        paths = topology.shortest_paths(primary)
        _, first_hop = paths[backup]
        if first_hop is None:
            first_hop = routers[1]
        return (first_hop, primary)

    def _schedule_events(self, run: ScenarioRun, rng: random.Random) -> None:
        config = self.config
        topology = run.topology
        from_router, to_router = run.monitor_direction

        if config.igp_flaps > 0:
            monitored = topology.link_between(from_router, to_router).name
            if config.topology_style == "triangle":
                # Flap the link whose failure exercises the engineered
                # motif (pop0–pop(n-1)), plus one far-side ring link for
                # event variety.
                routers = topology.routers
                eligible = [
                    topology.link_between(routers[0], routers[-1]).name,
                    topology.link_between(
                        routers[len(routers) // 2],
                        routers[len(routers) // 2 + 1],
                    ).name,
                ]
            else:
                # Fail links adjacent to the monitored link's endpoints
                # (but never the monitored link itself): the repair
                # detours then route around — and loop across — the
                # monitored link.
                eligible = sorted(
                    {
                        link.name
                        for endpoint in (from_router, to_router)
                        for link in topology.adjacent_links(endpoint)
                        if link.name != monitored
                    }
                )
            schedule = FailureSchedule.random_flaps(
                topology,
                rng,
                count=config.igp_flaps,
                start=config.warmup,
                end=config.duration * 0.95,
                downtime_range=config.flap_downtime,
                eligible_links=eligible,
            )
            schedule.apply(topology, run.engine.scheduler, run.igp)

        if config.bgp_withdrawals > 0:
            population = run.generator.population
            primary_router = to_router
            candidates = [
                prefix for prefix in run.bgp.prefixes
                if prefix in population.backup_egress
            ]
            # Prefer popular prefixes whose primary egress is the
            # monitored router: their withdrawal shifts traffic across
            # the monitored link.
            candidates.sort(
                key=lambda p: (
                    population.primary_egress.get(p) == primary_router,
                    population.popularity(p),
                ),
                reverse=True,
            )
            for i in range(min(config.bgp_withdrawals, len(candidates))):
                prefix = candidates[i]
                egress = run.generator.population.primary_egress[prefix]
                when = rng.uniform(config.warmup, config.duration * 0.9)
                run.engine.scheduler.schedule_at(
                    when,
                    lambda p=prefix, e=egress: run.bgp.withdraw(p, e),
                )
                readvertise = when + config.withdrawal_holdtime
                if readvertise < config.duration:
                    run.engine.scheduler.schedule_at(
                        readvertise,
                        lambda p=prefix, e=egress: run.bgp.advertise(p, e),
                    )
