"""Link-state IGP (OSPF/IS-IS-like) with realistic convergence timing.

The paper (Sec. II-B) decomposes IGP convergence into: link-failure
detection, LSA flooding, SPF recomputation (behind a damping timer), and
FIB update — with FIB-update time a significant, per-router-variable
contribution [Iannaccone et al. 2002].  Each stage here is an explicit,
jittered timer on the shared event scheduler.  Because routers finish the
pipeline at different times, there are windows in which neighboring FIBs
disagree; packets forwarded during such a window loop.  That is the sole
loop-production mechanism in this codebase — nothing ever fabricates a
replica.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.tracing import NULL_TRACER
from repro.routing.events import EventHandle, EventScheduler
from repro.routing.journal import EventKind, RoutingJournal
from repro.routing.topology import (
    Link,
    Topology,
    TopologyError,
    dijkstra_ecmp,
)


@dataclass(slots=True)
class LinkStateTimers:
    """Convergence timer model; all values in seconds.

    Defaults follow the ranges the paper cites: milliseconds-scale failure
    detection on point-to-point links, per-hop flooding delays, an SPF
    damping delay, and FIB update times of hundreds of milliseconds with
    large per-router variation.
    """

    detection_delay: float = 0.020
    detection_jitter: float = 0.030
    flooding_hop_delay: float = 0.010
    flooding_jitter: float = 0.005
    spf_delay: float = 0.100
    spf_jitter: float = 0.050
    spf_compute_time: float = 0.010
    fib_update_delay: float = 0.200
    fib_update_jitter: float = 0.400
    adjacency_up_delay: float = 1.0
    adjacency_up_jitter: float = 0.5

    def sample_detection(self, rng: random.Random) -> float:
        return self.detection_delay + rng.uniform(0, self.detection_jitter)

    def sample_flooding(self, rng: random.Random) -> float:
        return self.flooding_hop_delay + rng.uniform(0, self.flooding_jitter)

    def sample_spf(self, rng: random.Random) -> float:
        return (self.spf_delay + rng.uniform(0, self.spf_jitter)
                + self.spf_compute_time)

    def sample_fib(self, rng: random.Random) -> float:
        return self.fib_update_delay + rng.uniform(0, self.fib_update_jitter)

    def sample_adjacency_up(self, rng: random.Random) -> float:
        return self.adjacency_up_delay + rng.uniform(0, self.adjacency_up_jitter)


@dataclass(slots=True, frozen=True)
class Lsa:
    """A link-state advertisement: one router's view of its adjacencies."""

    origin: str
    sequence: int
    adjacencies: frozenset[tuple[str, int]]  # (neighbor, cost)


@dataclass(slots=True)
class _RouterState:
    """Per-router protocol state."""

    name: str
    lsdb: dict[str, Lsa] = field(default_factory=dict)
    # Known-up adjacencies from this router's own (local) perspective.
    local_adjacencies: dict[str, int] = field(default_factory=dict)
    sequence: int = 0
    # Installed forwarding state (the IGP portion of the FIB).  Each
    # destination maps to its equal-cost next-hop set (ECMP).
    next_hops: dict[str, tuple[str, ...]] = field(default_factory=dict)
    distance: dict[str, int] = field(default_factory=dict)
    spf_pending: bool = False
    pending_fib: EventHandle | None = None
    fib_updates: int = 0
    # Open tracer span covering SPF-done → FIB-installed (0 = none).
    pending_span: int = 0


FibUpdateCallback = Callable[[str, float], None]


class LinkStateProtocol:
    """The IGP instance covering every router in a topology."""

    def __init__(
        self,
        topology: Topology,
        scheduler: EventScheduler,
        timers: LinkStateTimers | None = None,
        rng: random.Random | None = None,
        journal: RoutingJournal | None = None,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.timers = timers or LinkStateTimers()
        self.rng = rng or random.Random(0)
        self.journal = journal
        self._routers: dict[str, _RouterState] = {
            name: _RouterState(name=name) for name in topology.routers
        }
        self._fib_callbacks: list[FibUpdateCallback] = []
        #: Control-plane tracer; the backbone scenario swaps in a real
        #: :class:`repro.obs.tracing.Tracer` clocked on simulation time.
        #: Null dispatch when tracing is off — and only at control-plane
        #: rate, never per packet.
        self.tracer = NULL_TRACER
        self.lsas_flooded = 0
        self.spf_runs = 0
        #: Per-router monotonic FIB-install counter.  The forwarding
        #: engine's route cache reads this dict directly (it is on the
        #: per-packet hot path) to detect that a router's installed IGP
        #: state changed since a route was resolved.
        self.epochs: dict[str, int] = {name: 0 for name in topology.routers}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Initialize every router converged on the current topology.

        The paper analyzes loops triggered by *changes*; the steady state
        before the first event is consistent by construction.
        """
        for state in self._routers.values():
            state.local_adjacencies = {
                link.other(state.name): link.cost_from(state.name)
                for link in self.topology.adjacent_links(state.name)
                if link.up
            }
            state.sequence = 1
        lsas = {
            name: Lsa(
                origin=name,
                sequence=1,
                adjacencies=frozenset(state.local_adjacencies.items()),
            )
            for name, state in self._routers.items()
        }
        for state in self._routers.values():
            state.lsdb = dict(lsas)
            self._install_spf_result(state, now=self.scheduler.now, notify=False)

    def on_fib_update(self, callback: FibUpdateCallback) -> None:
        """Register a hook fired as ``callback(router, now)`` after each
        FIB install (the BGP layer uses it for hot-potato re-decision)."""
        self._fib_callbacks.append(callback)

    # -- events from the failure injector -------------------------------------

    def notify_link_down(self, link: Link) -> None:
        """The physical link just went down; endpoints detect after a delay."""
        for endpoint in link.endpoints():
            delay = self.timers.sample_detection(self.rng)
            self.scheduler.schedule(
                delay,
                lambda router=endpoint, neighbor=link.other(endpoint):
                    self._adjacency_changed(router, neighbor, cost=None),
            )

    def notify_link_up(self, link: Link) -> None:
        """The physical link came back; adjacency forms after hellos."""
        for endpoint in link.endpoints():
            delay = self.timers.sample_adjacency_up(self.rng)
            self.scheduler.schedule(
                delay,
                lambda router=endpoint, neighbor=link.other(endpoint),
                       cost=link.cost_from(endpoint):
                    self._adjacency_changed(router, neighbor, cost=cost),
            )

    # -- forwarding-plane queries ---------------------------------------------

    def next_hop(self, router: str, dest_router: str,
                 flow_hash: int = 0) -> str | None:
        """The *installed* next hop (may be stale during convergence).

        With multiple equal-cost next hops installed, ``flow_hash``
        selects one deterministically — per-flow ECMP load sharing, so
        one flow's packets always take the same path.
        """
        state = self._state(router)
        if dest_router == router:
            return None
        hops = state.next_hops.get(dest_router)
        if not hops:
            return None
        return hops[flow_hash % len(hops)]

    def next_hop_set(self, router: str, dest_router: str) -> tuple[str, ...]:
        """All installed equal-cost next hops toward ``dest_router``."""
        state = self._state(router)
        if dest_router == router:
            return ()
        return state.next_hops.get(dest_router, ())

    def distance(self, router: str, dest_router: str) -> int | None:
        """Installed IGP distance from ``router`` to ``dest_router``."""
        state = self._state(router)
        if dest_router == router:
            return 0
        return state.distance.get(dest_router)

    def fib_update_count(self, router: str) -> int:
        return self._state(router).fib_updates

    def is_converged(self) -> bool:
        """True when all LSDBs agree and all FIBs match their LSDB's SPF."""
        reference: dict[str, Lsa] | None = None
        for state in self._routers.values():
            if reference is None:
                reference = state.lsdb
            elif state.lsdb != reference:
                return False
            if state.spf_pending or state.pending_fib is not None:
                return False
        return True

    # -- internals -------------------------------------------------------------

    def _state(self, router: str) -> _RouterState:
        try:
            return self._routers[router]
        except KeyError:
            raise TopologyError(f"unknown router {router!r}") from None

    def _adjacency_changed(self, router: str, neighbor: str,
                           cost: int | None) -> None:
        """A router detected a local adjacency change; originate an LSA."""
        state = self._state(router)
        if cost is None:
            if neighbor not in state.local_adjacencies:
                return
            del state.local_adjacencies[neighbor]
        else:
            if state.local_adjacencies.get(neighbor) == cost:
                return
            state.local_adjacencies[neighbor] = cost
        if self.journal is not None:
            kind = (EventKind.ADJACENCY_FORMED if cost is not None
                    else EventKind.ADJACENCY_LOST)
            self.journal.record(self.scheduler.now, kind, router,
                                detail=neighbor)
        self.tracer.event(
            "adjacency_formed" if cost is not None else "adjacency_lost",
            router=router, neighbor=neighbor,
        )
        state.sequence += 1
        lsa = Lsa(
            origin=router,
            sequence=state.sequence,
            adjacencies=frozenset(state.local_adjacencies.items()),
        )
        if self.journal is not None:
            self.journal.record(self.scheduler.now,
                                EventKind.LSA_ORIGINATED, router,
                                detail=f"seq={state.sequence}")
        self.tracer.event("lsa_originated", router=router,
                          seq=state.sequence)
        self._receive_lsa(router, lsa, from_neighbor=None)
        if cost is not None:
            # Database exchange: a newly formed adjacency synchronizes
            # the two LSDBs (OSPF's DBD/LSR procedure).  Without this, a
            # router partitioned during an outage would never learn the
            # LSAs originated while it was unreachable.
            self._synchronize_database(router, neighbor)

    def _synchronize_database(self, router: str, neighbor: str) -> None:
        """Send this router's full LSDB to a newly adjacent neighbor."""
        state = self._state(router)
        for lsa in list(state.lsdb.values()):
            delay = self.timers.sample_flooding(self.rng)
            self.scheduler.schedule(
                delay,
                lambda target=neighbor, payload=lsa, sender=router:
                    self._receive_lsa(target, payload,
                                      from_neighbor=sender),
            )

    def _receive_lsa(self, router: str, lsa: Lsa,
                     from_neighbor: str | None) -> None:
        """Install an LSA if newer, re-flood it, and schedule SPF."""
        state = self._state(router)
        known = state.lsdb.get(lsa.origin)
        if known is not None and known.sequence >= lsa.sequence:
            return
        state.lsdb[lsa.origin] = lsa
        self._flood(router, lsa, exclude=from_neighbor)
        self._schedule_spf(state)

    def _flood(self, router: str, lsa: Lsa, exclude: str | None) -> None:
        """Forward the LSA to all up-neighbors except the sender."""
        fanout = 0
        for neighbor in self.topology.neighbors(router, only_up=True):
            if neighbor == exclude:
                continue
            fanout += 1
            self.lsas_flooded += 1
            delay = self.timers.sample_flooding(self.rng)
            self.scheduler.schedule(
                delay,
                lambda target=neighbor, payload=lsa, sender=router:
                    self._receive_lsa(target, payload, from_neighbor=sender),
            )
        if fanout:
            self.tracer.event("lsa_flood", router=router, origin=lsa.origin,
                              seq=lsa.sequence, fanout=fanout)

    def _schedule_spf(self, state: _RouterState) -> None:
        """Damped SPF: one run covers all LSAs arriving before it fires."""
        if state.spf_pending:
            return
        state.spf_pending = True
        delay = self.timers.sample_spf(self.rng)
        self.scheduler.schedule(
            delay, lambda router=state.name: self._run_spf(router)
        )

    def _run_spf(self, router: str) -> None:
        state = self._state(router)
        state.spf_pending = False
        self.spf_runs += 1
        if self.journal is not None:
            self.journal.record(self.scheduler.now, EventKind.SPF_RUN,
                                router)
        self.tracer.event("spf_run", router=router)
        # The new tree is computed now but *installed* after the FIB delay;
        # a newer SPF supersedes a pending install.
        if state.pending_fib is not None:
            state.pending_fib.cancel()
        if state.pending_span:
            self.tracer.end(state.pending_span, superseded=True)
        # Per-router spans interleave freely across routers, so parent
        # explicitly at the root instead of using the tracer's stack.
        state.pending_span = self.tracer.begin("fib_update", parent=0,
                                               router=router)
        delay = self.timers.sample_fib(self.rng)
        state.pending_fib = self.scheduler.schedule(
            delay, lambda name=router: self._complete_fib_update(name)
        )

    def _complete_fib_update(self, router: str) -> None:
        state = self._state(router)
        state.pending_fib = None
        self._install_spf_result(state, now=self.scheduler.now, notify=True)

    def _install_spf_result(self, state: _RouterState, now: float,
                            notify: bool) -> None:
        """Run SPF over the router's LSDB view and install the result."""
        tree = dijkstra_ecmp(state.name, self._view_edges(state),
                             self._routers.keys())
        state.next_hops = {
            node: hops
            for node, (_, hops) in tree.items()
            if hops
        }
        state.distance = {node: dist for node, (dist, _) in tree.items()}
        state.fib_updates += 1
        self.epochs[state.name] += 1
        if notify:
            if self.journal is not None:
                self.journal.record(now, EventKind.IGP_FIB_INSTALLED,
                                    state.name)
            if state.pending_span:
                self.tracer.end(state.pending_span,
                                epoch=self.epochs[state.name])
                state.pending_span = 0
            self.tracer.event("igp_fib_install", router=state.name,
                              epoch=self.epochs[state.name])
            for callback in self._fib_callbacks:
                callback(state.name, now)

    def _view_edges(self, state: _RouterState):
        """Edge function over the router's LSDB, requiring two-way
        advertisement (the standard SPF bidirectionality check)."""
        lsdb = state.lsdb

        def edges(node: str):
            lsa = lsdb.get(node)
            if lsa is None:
                return
            for neighbor, cost in lsa.adjacencies:
                back = lsdb.get(neighbor)
                if back is None:
                    continue
                if any(peer == node for peer, _ in back.adjacencies):
                    yield neighbor, cost

        return edges
