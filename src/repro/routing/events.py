"""Discrete-event simulation kernel.

A minimal, deterministic scheduler: events are ``(time, sequence, action)``
triples ordered by time with FIFO tie-breaking, so two events scheduled for
the same instant fire in scheduling order.  All simulator components (IGP
timers, BGP propagation, per-hop packet forwarding, failure injection) share
one scheduler, which is what lets packets in flight observe FIBs mid-update.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

Action = Callable[[], None]


class SchedulerError(RuntimeError):
    """Raised on invalid scheduler usage (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Action = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventScheduler:
    """A time-ordered event queue with deterministic tie-breaking."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._sequence = 0
        self._queue: list[_ScheduledEvent] = []
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, action: Action) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = _ScheduledEvent(time=time, sequence=self._sequence, action=action)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the queue drains or limits are hit.

        ``until`` is inclusive: events at exactly ``until`` still fire, and
        on return ``now`` equals ``until`` if it was given (even when the
        queue drained earlier), so repeated bounded runs compose.
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            if max_events is not None and processed >= max_events:
                return
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            processed += 1
            event.action()
        if until is not None and until > self._now:
            self._now = until

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Run until the queue is empty; guard against runaway loops."""
        self.run(max_events=max_events)
        if self._queue and not all(event.cancelled for event in self._queue):
            raise SchedulerError(
                f"event limit {max_events} reached with events still pending"
            )
