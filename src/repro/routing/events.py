"""Discrete-event simulation kernel.

A minimal, deterministic scheduler: events are ``(time, sequence, fn,
args)`` entries ordered by time with FIFO tie-breaking, so two events
scheduled for the same instant fire in scheduling order.  All simulator
components (IGP timers, BGP propagation, per-hop packet forwarding,
failure injection) share one scheduler, which is what lets packets in
flight observe FIBs mid-update.

Events are stored as plain lists rather than objects: list comparison is
C-speed (and the unique sequence number guarantees the comparison never
reaches the callable), which matters because the forwarding engine pushes
two events per packet hop.  The :meth:`EventScheduler.call` /
:meth:`EventScheduler.call_at` fast path additionally takes ``(fn,
*args)`` directly, so hot callers need not allocate a lambda closure per
event — and, being fire-and-forget, it skips the :class:`EventHandle`
allocation too.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

Action = Callable[[], None]

# Event list layout: [time, sequence, fn, args, cancelled]
_TIME = 0
_SEQUENCE = 1
_FN = 2
_ARGS = 3
_CANCELLED = 4

_NO_ARGS: tuple = ()


class SchedulerError(RuntimeError):
    """Raised on invalid scheduler usage (e.g. scheduling in the past)."""


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: list) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        self._event[_CANCELLED] = True

    @property
    def cancelled(self) -> bool:
        return self._event[_CANCELLED]

    @property
    def time(self) -> float:
        return self._event[_TIME]


class RepeatingEvent:
    """Handle for :meth:`EventScheduler.every`; allows cancel.

    The next occurrence is scheduled only after the current one fires, so
    cancelling stops the series immediately and leaves at most one dead
    queue entry behind.
    """

    __slots__ = ("_scheduler", "_interval", "_fn", "_args", "_cancelled")

    def __init__(self, scheduler: "EventScheduler", interval: float,
                 fn: Callable[..., Any], args: tuple) -> None:
        self._scheduler = scheduler
        self._interval = interval
        self._fn = fn
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fn(*self._args)
        if not self._cancelled:
            self._scheduler.call(self._interval, self._fire)


class EventScheduler:
    """A time-ordered event queue with deterministic tie-breaking.

    ``now`` is a plain attribute rather than a property: the forwarding
    engine reads it once per hop, and callers treat it as read-only.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = start_time
        self._sequence = 0
        self._queue: list[list] = []
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, action: Action) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self.now:
            raise SchedulerError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        event = [time, self._sequence, action, _NO_ARGS, False]
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fast path: run ``fn(*args)`` after ``delay`` seconds.

        Fire-and-forget — no :class:`EventHandle` is created, so the
        event cannot be cancelled.  Hot paths use this to avoid building
        a closure (and a handle) per scheduled event.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past: delay={delay}")
        heapq.heappush(
            self._queue, [self.now + delay, self._sequence, fn, args, False]
        )
        self._sequence += 1

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fast path: run ``fn(*args)`` at an absolute simulation time.

        Fire-and-forget counterpart of :meth:`schedule_at`; see
        :meth:`call`.
        """
        if time < self.now:
            raise SchedulerError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        heapq.heappush(self._queue, [time, self._sequence, fn, args, False])
        self._sequence += 1

    def every(self, interval: float, fn: Callable[..., Any],
              *args: Any) -> RepeatingEvent:
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled.

        First fires ``interval`` from now.  Beware :meth:`run_all`: an
        uncancelled repeating event keeps the queue non-empty forever —
        pair this with a bounded :meth:`run` (progress heartbeats cancel
        after the bounded drain).
        """
        if interval <= 0:
            raise SchedulerError(f"interval must be positive: {interval}")
        repeating = RepeatingEvent(self, interval, fn, args)
        self.call(interval, repeating._fire)
        return repeating

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the queue drains or limits are hit.

        ``until`` is inclusive: events at exactly ``until`` still fire, and
        on return ``now`` equals ``until`` if it was given (even when the
        queue drained earlier), so repeated bounded runs compose.
        """
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        while queue:
            event = queue[0]
            if until is not None and event[0] > until:
                break
            if max_events is not None and processed >= max_events:
                self._events_processed += processed
                return
            pop(queue)
            if event[4]:
                continue
            self.now = event[0]
            processed += 1
            event[2](*event[3])
        self._events_processed += processed
        if until is not None and until > self.now:
            self.now = until

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Run until the queue is empty; guard against runaway loops."""
        self.run(max_events=max_events)
        if self._queue and not all(event[_CANCELLED] for event in self._queue):
            raise SchedulerError(
                f"event limit {max_events} reached with events still pending"
            )
