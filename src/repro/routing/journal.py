"""Control-plane event journal.

The paper's future work is to correlate detected loops with "complete
BGP and IS-IS routing data".  The simulator can provide exactly that: a
:class:`RoutingJournal` records every control-plane event — link state
changes, LSA originations, SPF runs, FIB installs, BGP updates and
egress changes — with timestamps, so the correlator in
:mod:`repro.core.correlate` can attribute each detected loop to the
routing activity that caused it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.net.addr import IPv4Prefix


class EventKind(Enum):
    """Control-plane event categories."""

    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    ADJACENCY_LOST = "adjacency_lost"
    ADJACENCY_FORMED = "adjacency_formed"
    LSA_ORIGINATED = "lsa_originated"
    SPF_RUN = "spf_run"
    IGP_FIB_INSTALLED = "igp_fib_installed"
    BGP_WITHDRAW_SENT = "bgp_withdraw_sent"
    BGP_ADVERTISE_SENT = "bgp_advertise_sent"
    BGP_UPDATE_RECEIVED = "bgp_update_received"
    BGP_EGRESS_CHANGED = "bgp_egress_changed"
    BGP_ROUTE_INSTALLED = "bgp_route_installed"

    @property
    def is_igp(self) -> bool:
        return self in (
            EventKind.LINK_DOWN, EventKind.LINK_UP,
            EventKind.ADJACENCY_LOST, EventKind.ADJACENCY_FORMED,
            EventKind.LSA_ORIGINATED, EventKind.SPF_RUN,
            EventKind.IGP_FIB_INSTALLED,
        )

    @property
    def is_bgp(self) -> bool:
        return self.name.startswith("BGP_")


@dataclass(slots=True, frozen=True)
class RoutingEvent:
    """One journaled control-plane event."""

    time: float
    kind: EventKind
    router: str
    detail: str = ""
    prefix: IPv4Prefix | None = None


class RoutingJournal:
    """Append-only, time-ordered log of control-plane events."""

    def __init__(self) -> None:
        self._events: list[RoutingEvent] = []
        self._times: list[float] = []

    def record(
        self,
        time: float,
        kind: EventKind,
        router: str,
        detail: str = "",
        prefix: IPv4Prefix | None = None,
    ) -> None:
        """Append an event (times must be non-decreasing, as in a sim)."""
        if self._times and time < self._times[-1] - 1e-9:
            raise ValueError(
                f"journal time went backwards: {time} < {self._times[-1]}"
            )
        self._events.append(RoutingEvent(
            time=time, kind=kind, router=router, detail=detail, prefix=prefix
        ))
        self._times.append(time)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RoutingEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[RoutingEvent]:
        return list(self._events)

    def window(self, start: float, end: float) -> list[RoutingEvent]:
        """Events with ``start <= time <= end``."""
        lo = bisect_left(self._times, start)
        hi = bisect_right(self._times, end)
        return self._events[lo:hi]

    def events_for_prefix(self, prefix: IPv4Prefix, start: float,
                          end: float) -> list[RoutingEvent]:
        """BGP events in the window affecting exactly ``prefix``."""
        return [event for event in self.window(start, end)
                if event.prefix == prefix]

    def igp_events(self, start: float, end: float) -> list[RoutingEvent]:
        """IGP events (topology/SPF/FIB) in the window."""
        return [event for event in self.window(start, end)
                if event.kind.is_igp]

    def counts(self) -> dict[EventKind, int]:
        out: dict[EventKind, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out
