"""Simplified I-BGP layer: externally-learned prefixes and hot-potato exits.

Every backbone router learns, over a full I-BGP mesh, which egress routers
currently advertise each external prefix, and picks the closest advertised
egress by installed IGP distance (hot-potato routing), tie-broken by router
name.  Two convergence processes create forwarding inconsistency for these
prefixes:

* **BGP events** — an egress withdrawing a prefix propagates to peers with
  per-peer delays on the order of seconds (the paper cites BGP convergence
  of seconds to tens of minutes), so routers switch egress at different
  times;
* **IGP events** — a router whose IGP distances just changed re-runs the
  hot-potato decision, while its neighbor still uses the old exit.

Either way, neighbor FIBs can briefly point at each other and packets for
the affected prefixes loop — the EGP-triggered loops of Sec. II.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.obs.tracing import NULL_TRACER
from repro.routing.events import EventScheduler
from repro.routing.fib import Fib
from repro.routing.journal import EventKind, RoutingJournal
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import Topology, TopologyError


@dataclass(slots=True)
class BgpTimers:
    """I-BGP propagation and processing delays, in seconds."""

    propagation_delay: float = 0.5
    propagation_jitter: float = 3.0
    decision_delay: float = 0.050
    decision_jitter: float = 0.150
    fib_update_delay: float = 0.100
    fib_update_jitter: float = 0.400

    def sample_propagation(self, rng: random.Random) -> float:
        return self.propagation_delay + rng.uniform(0, self.propagation_jitter)

    def sample_decision(self, rng: random.Random) -> float:
        return self.decision_delay + rng.uniform(0, self.decision_jitter)

    def sample_fib(self, rng: random.Random) -> float:
        return self.fib_update_delay + rng.uniform(0, self.fib_update_jitter)


@dataclass(slots=True, frozen=True)
class EgressAdvertisement:
    """A static origination: ``prefix`` is reachable via ``egress``."""

    prefix: IPv4Prefix
    egress: str


@dataclass(slots=True)
class _PrefixState:
    """One router's view of a prefix: which egresses advertise it now."""

    available: set[str] = field(default_factory=set)
    chosen: str | None = None


class BgpProcess:
    """The AS-wide collection of I-BGP speakers (one per router)."""

    def __init__(
        self,
        topology: Topology,
        scheduler: EventScheduler,
        igp: LinkStateProtocol,
        timers: BgpTimers | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.igp = igp
        self.timers = timers or BgpTimers()
        self.rng = rng or random.Random(0)
        self.journal = igp.journal
        self._fibs: dict[str, Fib] = {
            name: Fib(name) for name in topology.routers
        }
        self._views: dict[str, dict[IPv4Prefix, _PrefixState]] = {
            name: {} for name in topology.routers
        }
        self._prefixes: set[IPv4Prefix] = set()
        #: Control-plane tracer (see :class:`LinkStateProtocol.tracer`).
        self.tracer = NULL_TRACER
        self.updates_sent = 0
        #: Monotonic count of BGP-driven FIB changes across all routers.
        #: Cache validity itself rides on the per-router ``Fib.epoch``
        #: (bumped by every install/withdraw); this aggregate exists for
        #: observability and convergence diagnostics.
        self.epoch = 0
        igp.on_fib_update(self._igp_changed)

    # -- configuration (pre-start) ---------------------------------------------

    def originate(self, prefix: IPv4Prefix, egress: str) -> None:
        """Statically originate ``prefix`` at ``egress`` (applied by start)."""
        if not self.topology.has_router(egress):
            raise TopologyError(f"unknown egress {egress!r}")
        self._prefixes.add(prefix)
        for view in self._views.values():
            view.setdefault(prefix, _PrefixState()).available.add(egress)

    def start(self) -> None:
        """Converge every router instantly on the configured originations.

        Loopback /32s are also installed so internal destinations resolve
        through the same longest-prefix-match path as external ones.
        """
        now = self.scheduler.now
        for router, view in self._views.items():
            fib = self._fibs[router]
            for name in self.topology.routers:
                fib.install(self.topology.loopback(name).prefix(32), name, now)
            for prefix, state in view.items():
                state.chosen = self._decide(router, state.available)
                if state.chosen is not None:
                    fib.install(prefix, state.chosen, now)
            self.epoch += 1

    # -- runtime events ----------------------------------------------------------

    def withdraw(self, prefix: IPv4Prefix, egress: str) -> None:
        """``egress`` stops advertising ``prefix``; peers learn with delay."""
        self._propagate(prefix, egress, advertise=False)

    def advertise(self, prefix: IPv4Prefix, egress: str) -> None:
        """``egress`` (re-)advertises ``prefix``; peers learn with delay."""
        self._prefixes.add(prefix)
        for view in self._views.values():
            view.setdefault(prefix, _PrefixState())
        self._propagate(prefix, egress, advertise=True)

    def _propagate(self, prefix: IPv4Prefix, egress: str,
                   advertise: bool) -> None:
        if not self.topology.has_router(egress):
            raise TopologyError(f"unknown egress {egress!r}")
        if self.journal is not None:
            kind = (EventKind.BGP_ADVERTISE_SENT if advertise
                    else EventKind.BGP_WITHDRAW_SENT)
            self.journal.record(self.scheduler.now, kind, egress,
                                prefix=prefix)
        self.tracer.event("bgp_advertise" if advertise else "bgp_withdraw",
                          egress=egress, prefix=str(prefix))
        for router in self.topology.routers:
            self.updates_sent += 1
            delay = (0.0 if router == egress
                     else self.timers.sample_propagation(self.rng))
            self.scheduler.schedule(
                delay,
                lambda target=router, p=prefix, e=egress, adv=advertise:
                    self._receive(target, p, e, adv),
            )

    # -- forwarding-plane queries --------------------------------------------------

    def fib(self, router: str) -> Fib:
        """The router's prefix FIB (prefix → chosen egress router)."""
        try:
            return self._fibs[router]
        except KeyError:
            raise TopologyError(f"unknown router {router!r}") from None

    def chosen_egress(self, router: str, prefix: IPv4Prefix) -> str | None:
        state = self._views[router].get(prefix)
        return state.chosen if state is not None else None

    @property
    def prefixes(self) -> set[IPv4Prefix]:
        return set(self._prefixes)

    # -- internals -------------------------------------------------------------------

    def _decide(self, router: str, available: set[str]) -> str | None:
        """Hot-potato choice: nearest advertised egress by installed IGP
        distance, ties broken by name; an egress the router currently has
        no IGP route to is unusable (except the router itself)."""
        best: tuple[int, str] | None = None
        for egress in available:
            distance = self.igp.distance(router, egress)
            if distance is None:
                continue
            candidate = (distance, egress)
            if best is None or candidate < best:
                best = candidate
        return best[1] if best is not None else None

    def _receive(self, router: str, prefix: IPv4Prefix, egress: str,
                 advertise: bool) -> None:
        if self.journal is not None:
            self.journal.record(self.scheduler.now,
                                EventKind.BGP_UPDATE_RECEIVED, router,
                                detail=egress, prefix=prefix)
        state = self._views[router].setdefault(prefix, _PrefixState())
        if advertise:
            state.available.add(egress)
        else:
            state.available.discard(egress)
        delay = self.timers.sample_decision(self.rng)
        self.scheduler.schedule(
            delay, lambda r=router, p=prefix: self._redecide(r, p)
        )

    def _redecide(self, router: str, prefix: IPv4Prefix) -> None:
        state = self._views[router].get(prefix)
        if state is None:
            return
        new_choice = self._decide(router, state.available)
        if new_choice == state.chosen:
            return
        if self.journal is not None:
            self.journal.record(
                self.scheduler.now, EventKind.BGP_EGRESS_CHANGED, router,
                detail=f"{state.chosen}->{new_choice}", prefix=prefix,
            )
        self.tracer.event("bgp_egress_changed", router=router,
                          prefix=str(prefix), old=state.chosen,
                          new=new_choice)
        state.chosen = new_choice
        delay = self.timers.sample_fib(self.rng)
        self.scheduler.schedule(
            delay,
            lambda r=router, p=prefix, choice=new_choice:
                self._install(r, p, choice),
        )

    def _install(self, router: str, prefix: IPv4Prefix,
                 choice: str | None) -> None:
        """Install the decision made earlier; skip if superseded since."""
        state = self._views[router].get(prefix)
        if state is None or state.chosen != choice:
            return
        fib = self._fibs[router]
        if self.journal is not None:
            self.journal.record(
                self.scheduler.now, EventKind.BGP_ROUTE_INSTALLED, router,
                detail=str(choice), prefix=prefix,
            )
        if choice is None:
            fib.withdraw(prefix)
        else:
            fib.install(prefix, choice, self.scheduler.now)
        self.epoch += 1

    def _igp_changed(self, router: str, now: float) -> None:
        """IGP distances at ``router`` changed: re-run hot potato there."""
        for prefix in self._views[router]:
            delay = self.timers.sample_decision(self.rng)
            self.scheduler.schedule(
                delay, lambda r=router, p=prefix: self._redecide(r, p)
            )
