"""Per-router Forwarding Information Base.

A FIB maps destination prefixes to next-hop routers via longest-prefix
match.  FIB updates are what the routing protocols schedule — the window
between one router's update and its neighbor's is where transient loops
live, so the FIB keeps update timestamps for the audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.net.addr import IPv4Address, IPv4Prefix


class FibError(ValueError):
    """Raised for invalid FIB operations."""


@dataclass(slots=True, frozen=True)
class FibEntry:
    """One FIB route: prefix → next-hop router (by name)."""

    prefix: IPv4Prefix
    next_hop: str
    updated_at: float = 0.0


class Fib:
    """Longest-prefix-match forwarding table.

    Implemented as one hash table per prefix length, probed from /32 down;
    lookup is O(32) dict probes worst case, O(#distinct lengths) typical.
    """

    def __init__(self, router: str) -> None:
        self.router = router
        self._tables: dict[int, dict[int, FibEntry]] = {}
        self._lengths_desc: list[int] = []

    def install(self, prefix: IPv4Prefix, next_hop: str, now: float = 0.0) -> None:
        """Install or replace the route for ``prefix``."""
        table = self._tables.get(prefix.length)
        if table is None:
            table = {}
            self._tables[prefix.length] = table
            self._lengths_desc = sorted(self._tables, reverse=True)
        table[prefix.network] = FibEntry(prefix=prefix, next_hop=next_hop,
                                         updated_at=now)

    def withdraw(self, prefix: IPv4Prefix) -> bool:
        """Remove the route for ``prefix``; True if it existed."""
        table = self._tables.get(prefix.length)
        if table is None:
            return False
        removed = table.pop(prefix.network, None) is not None
        if removed and not table:
            del self._tables[prefix.length]
            self._lengths_desc = sorted(self._tables, reverse=True)
        return removed

    def lookup(self, address: IPv4Address) -> FibEntry | None:
        """Longest-prefix-match lookup; None when no route covers it."""
        value = address.value
        for length in self._lengths_desc:
            mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
            entry = self._tables[length].get(value & mask)
            if entry is not None:
                return entry
        return None

    def exact(self, prefix: IPv4Prefix) -> FibEntry | None:
        """The entry for exactly ``prefix``, ignoring longer/shorter routes."""
        table = self._tables.get(prefix.length)
        if table is None:
            return None
        return table.get(prefix.network)

    def entries(self) -> Iterator[FibEntry]:
        """All entries, longest prefixes first."""
        for length in self._lengths_desc:
            yield from self._tables[length].values()

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self.exact(prefix) is not None
