"""Per-router Forwarding Information Base.

A FIB maps destination prefixes to next-hop routers via longest-prefix
match.  FIB updates are what the routing protocols schedule — the window
between one router's update and its neighbor's is where transient loops
live, so the FIB keeps update timestamps for the audit trail.

Every mutation bumps a monotonic :attr:`Fib.epoch`; the forwarding
engine's resolved-route cache compares epochs to decide whether its
cached resolutions are still valid (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.net.addr import IPv4Address, IPv4Prefix

#: Netmask for each prefix length, /0 through /32 — computed once rather
#: than per lookup probe.
_MASKS: tuple[int, ...] = tuple(
    (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    for length in range(33)
)


class FibError(ValueError):
    """Raised for invalid FIB operations."""


@dataclass(slots=True, frozen=True)
class FibEntry:
    """One FIB route: prefix → next-hop router (by name)."""

    prefix: IPv4Prefix
    next_hop: str
    updated_at: float = 0.0


class Fib:
    """Longest-prefix-match forwarding table.

    Implemented as one hash table per prefix length, probed from /32 down;
    lookup is O(32) dict probes worst case, O(#distinct lengths) typical.
    The probe sequence (mask, table) is maintained incrementally on
    install/withdraw instead of re-sorted per mutation.
    """

    def __init__(self, router: str) -> None:
        self.router = router
        self._tables: dict[int, dict[int, FibEntry]] = {}
        self._lengths_desc: list[int] = []
        # Parallel to _lengths_desc: (mask, table) pairs in probe order,
        # so lookup needs no per-probe mask computation or table fetch.
        self._probes: list[tuple[int, dict[int, FibEntry]]] = []
        #: Monotonic change counter; bumped by every install/withdraw.
        self.epoch = 0
        #: Optional observer called as ``on_mutation(op, prefix,
        #: next_hop, epoch)`` after every install/withdraw.  The backbone
        #: scenario wires this to the tracer; mutations are control-plane
        #: rate, so one ``is not None`` check here never touches the
        #: per-packet path.
        self.on_mutation = None

    def install(self, prefix: IPv4Prefix, next_hop: str, now: float = 0.0) -> None:
        """Install or replace the route for ``prefix``."""
        length = prefix.length
        table = self._tables.get(length)
        if table is None:
            table = {}
            self._tables[length] = table
            # Insert keeping descending order; at most 33 lengths, so a
            # linear scan beats re-sorting and stays allocation-free.
            index = 0
            lengths = self._lengths_desc
            while index < len(lengths) and lengths[index] > length:
                index += 1
            lengths.insert(index, length)
            self._probes.insert(index, (_MASKS[length], table))
        table[prefix.network] = FibEntry(prefix=prefix, next_hop=next_hop,
                                         updated_at=now)
        self.epoch += 1
        if self.on_mutation is not None:
            self.on_mutation("install", prefix, next_hop, self.epoch)

    def withdraw(self, prefix: IPv4Prefix) -> bool:
        """Remove the route for ``prefix``; True if it existed."""
        length = prefix.length
        table = self._tables.get(length)
        if table is None:
            return False
        removed = table.pop(prefix.network, None) is not None
        if removed:
            self.epoch += 1
            if self.on_mutation is not None:
                self.on_mutation("withdraw", prefix, None, self.epoch)
            if not table:
                del self._tables[length]
                index = self._lengths_desc.index(length)
                del self._lengths_desc[index]
                del self._probes[index]
        return removed

    def lookup(self, address: IPv4Address) -> FibEntry | None:
        """Longest-prefix-match lookup; None when no route covers it."""
        value = address.value
        for mask, table in self._probes:
            entry = table.get(value & mask)
            if entry is not None:
                return entry
        return None

    def lookup_reference(self, address: IPv4Address) -> FibEntry | None:
        """Longest-prefix-match with per-probe mask computation.

        The pre-optimization lookup, preserved verbatim for the
        forwarding engine's ``route_cache=False`` reference path: the
        equivalence tests and benchmarks compare the cached fast path
        against exactly this resolution work.  Returns the same entry as
        :meth:`lookup` for any address.
        """
        value = address.value
        for length in self._lengths_desc:
            mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
            entry = self._tables[length].get(value & mask)
            if entry is not None:
                return entry
        return None

    def exact(self, prefix: IPv4Prefix) -> FibEntry | None:
        """The entry for exactly ``prefix``, ignoring longer/shorter routes."""
        table = self._tables.get(prefix.length)
        if table is None:
            return None
        return table.get(prefix.network)

    def entries(self) -> Iterator[FibEntry]:
        """All entries, longest prefixes first."""
        for length in self._lengths_desc:
            yield from self._tables[length].values()

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self.exact(prefix) is not None
