"""Routing and forwarding substrate.

A discrete-event simulation of an AS backbone: a link-state IGP
(OSPF/IS-IS-like) with realistic convergence delays, a simplified BGP layer
for externally-learned prefixes, per-router FIBs, and a packet-level
forwarding engine with real TTL semantics.  Transient routing loops *emerge*
from FIB inconsistency during convergence — they are never scripted — which
is what makes the traces this substrate produces a faithful substitute for
the paper's backbone captures.
"""

from repro.routing.events import EventScheduler
from repro.routing.topology import Link, Topology
from repro.routing.fib import Fib, FibEntry
from repro.routing.linkstate import LinkStateProtocol, LinkStateTimers
from repro.routing.bgp import BgpProcess, BgpTimers, EgressAdvertisement
from repro.routing.forwarding import (
    ForwardingEngine,
    PacketFate,
    PacketAudit,
    LinkTap,
)
from repro.routing.failures import FailureEvent, FailureSchedule
from repro.routing.journal import EventKind, RoutingEvent, RoutingJournal

__all__ = [
    "EventScheduler",
    "Topology",
    "Link",
    "Fib",
    "FibEntry",
    "LinkStateProtocol",
    "LinkStateTimers",
    "BgpProcess",
    "BgpTimers",
    "EgressAdvertisement",
    "ForwardingEngine",
    "PacketFate",
    "PacketAudit",
    "LinkTap",
    "FailureEvent",
    "FailureSchedule",
    "RoutingJournal",
    "RoutingEvent",
    "EventKind",
]
