"""Measuring routing convergence time.

The paper grounds its loop-duration findings in convergence behaviour:
link-state protocols "typically converge in seconds", and the observed
loop durations "mostly under 10 seconds" agree with contemporaneous
measurements of 5–10-second convergence after a link failure.  This
module measures exactly that quantity in the simulator — from the
physical failure instant until every router's installed FIB matches the
new topology — so the claim becomes a reproducible experiment
(`benchmarks/test_convergence_time.py`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.linkstate import LinkStateProtocol, LinkStateTimers
from repro.routing.topology import Topology


@dataclass(slots=True)
class ConvergenceSample:
    """One measured convergence episode."""

    link_name: str
    event: str  # "down" or "up"
    duration: float
    spf_runs: int
    lsas_flooded: int


def _converged_on_oracle(topology: Topology,
                         igp: LinkStateProtocol) -> bool:
    """True when every installed FIB matches SPF over the physical
    topology (stronger than LSDB agreement)."""
    if not igp.is_converged():
        return False
    for source in topology.routers:
        oracle = topology.shortest_paths(source)
        for dest in topology.routers:
            if dest == source:
                continue
            expected = oracle.get(dest)
            if expected is None:
                if igp.next_hop(source, dest) is not None:
                    return False
                continue
            if igp.distance(source, dest) != expected[0]:
                return False
    return True


def measure_convergence(
    topology_factory: Callable[[random.Random], Topology],
    timers: LinkStateTimers,
    seed: int,
    link_selector: int = 0,
    resolution: float = 0.05,
    deadline: float = 120.0,
) -> list[ConvergenceSample]:
    """Fail one link, measure down-convergence; repair it, measure
    up-convergence.

    Convergence time is measured by stepping the scheduler in
    ``resolution``-second increments and checking the oracle condition,
    so the result is accurate to that resolution.
    """
    rng = random.Random(seed)
    topology = topology_factory(rng)
    scheduler = EventScheduler()
    igp = LinkStateProtocol(topology, scheduler, timers=timers,
                            rng=random.Random(seed + 1))
    igp.start()

    links = sorted(link.name for link in topology.links)
    link = topology.link_by_name(links[link_selector % len(links)])

    samples = []
    for event in ("down", "up"):
        start = scheduler.now
        link.up = event == "up"
        if event == "down":
            igp.notify_link_down(link)
        else:
            igp.notify_link_up(link)
        elapsed = 0.0
        while elapsed < deadline:
            scheduler.run(until=start + elapsed + resolution)
            elapsed += resolution
            if _converged_on_oracle(topology, igp):
                break
        samples.append(ConvergenceSample(
            link_name=link.name,
            event=event,
            duration=elapsed,
            spf_runs=igp.spf_runs,
            lsas_flooded=igp.lsas_flooded,
        ))
        # Settle fully before the next event.
        scheduler.run(until=scheduler.now + deadline)
    return samples


def convergence_time_distribution(
    topology_factory: Callable[[random.Random], Topology],
    timers: LinkStateTimers,
    trials: int = 20,
    base_seed: int = 0,
) -> list[float]:
    """Down-convergence durations over many (seed, link) trials."""
    durations = []
    for trial in range(trials):
        samples = measure_convergence(
            topology_factory, timers, seed=base_seed + trial,
            link_selector=trial,
        )
        durations.extend(sample.duration for sample in samples
                         if sample.event == "down")
    return durations
