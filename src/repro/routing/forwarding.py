"""Packet-level forwarding engine.

Packets travel hop by hop through the event scheduler; at each hop the
router consults its *current* FIBs (BGP prefix table resolved through the
IGP next-hop table), decrements the TTL, and transmits across the link
with serialization + propagation delay and FIFO queueing.  Because lookups
happen at forwarding time against live protocol state, packets in flight
during convergence loop exactly as the paper describes — and the monitor
taps on a link see each crossing as a replica with a decremented TTL.

The engine also maintains a ground-truth audit channel (per-packet hop
records and loop flags) that the detector never sees; tests use it to
score detector precision and recall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.net.addr import IPv4Address
from repro.net.packet import Packet, icmp_time_exceeded
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import Link, Topology, TopologyError


class PacketFate(Enum):
    """Terminal outcome of a packet's transit through the AS."""

    DELIVERED = "delivered"
    TTL_EXPIRED = "ttl_expired"
    NO_ROUTE = "no_route"
    LINK_DOWN = "link_down"
    QUEUE_DROP = "queue_drop"
    IN_FLIGHT = "in_flight"


@dataclass(slots=True)
class PacketAudit:
    """Ground truth for one packet (never visible to the detector)."""

    packet_id: int
    injected_at: float
    ingress: str
    dst: IPv4Address
    fate: PacketFate = PacketFate.IN_FLIGHT
    fate_time: float = 0.0
    fate_router: str = ""
    hops: int = 0
    looped: bool = False
    crossings: list[tuple[float, str, str, int]] = field(default_factory=list)
    # crossings: (departure time, link name, "a->b" direction, on-wire TTL)

    @property
    def transit_time(self) -> float:
        return self.fate_time - self.injected_at


TapCallback = Callable[[float, Packet], None]


@dataclass(slots=True)
class LinkTap:
    """A passive monitor on one direction of one link."""

    link_name: str
    from_router: str
    to_router: str
    callback: TapCallback


@dataclass(slots=True)
class _Transit:
    """Mutable in-flight packet state."""

    packet: Packet
    ttl: int
    audit: PacketAudit | None
    visited: dict[str, int]
    injected_at: float = 0.0
    is_icmp_error: bool = False
    flow_hash: int = 0


@dataclass(slots=True)
class _DirectionState:
    """FIFO transmit state for one direction of one link."""

    next_free: float = 0.0


def _flow_hash(packet: Packet) -> int:
    """Deterministic per-flow hash for ECMP next-hop selection.

    Mixes the classic five-tuple the way router line cards do, so all
    packets of one flow take one path through equal-cost choices.
    """
    l4 = packet.l4
    src_port = getattr(l4, "src_port", 0) or 0
    dst_port = getattr(l4, "dst_port", 0) or 0
    key = (packet.ip.src.value * 0x9E3779B1
           ^ packet.ip.dst.value * 0x85EBCA77
           ^ (packet.ip.protocol << 16)
           ^ (src_port << 8) ^ dst_port)
    key ^= key >> 13
    return key & 0x7FFFFFFF


class ForwardingEngine:
    """Forwards packets through the simulated AS."""

    def __init__(
        self,
        topology: Topology,
        scheduler: EventScheduler,
        igp: LinkStateProtocol,
        bgp: BgpProcess,
        rng: random.Random | None = None,
        keep_audits: bool = True,
        record_crossings: bool = False,
        icmp_time_exceeded_probability: float = 0.5,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.igp = igp
        self.bgp = bgp
        self.rng = rng or random.Random(0)
        self.keep_audits = keep_audits
        self.record_crossings = record_crossings
        self.icmp_time_exceeded_probability = icmp_time_exceeded_probability

        self._taps: dict[tuple[str, str], list[LinkTap]] = {}
        self._directions: dict[tuple[str, str], _DirectionState] = {}
        self._delivery_listeners: list[Callable[[float, Packet, str], None]] = []
        self._drop_listeners: list[
            Callable[[float, Packet, str, PacketFate], None]
        ] = []
        self._next_packet_id = 0
        self._next_icmp_id = 1

        self.audits: list[PacketAudit] = []
        self.fate_counts: dict[PacketFate, int] = {fate: 0 for fate in PacketFate}
        self.loss_by_minute: dict[int, dict[PacketFate, int]] = {}
        self.injected_by_minute: dict[int, int] = {}
        # Per-minute queueing telemetry: summed queue wait and number of
        # transmissions, for the Sec. VI queueing-delay analysis.
        self.queue_delay_by_minute: dict[int, float] = {}
        self.transmissions_by_minute: dict[int, int] = {}
        self.looped_by_minute: dict[int, int] = {}
        self.looped_delivered_delays: list[tuple[float, int]] = []
        self._normal_delay_sum = 0.0
        self._normal_delay_count = 0

    # -- taps ---------------------------------------------------------------

    def add_delivery_listener(
        self, callback: Callable[[float, Packet, str], None]
    ) -> None:
        """Register ``callback(time, packet, router)`` fired on delivery.

        Active-measurement baselines use this to receive their probe
        responses (the simulated AS has no end hosts).
        """
        self._delivery_listeners.append(callback)

    def add_drop_listener(
        self, callback: Callable[[float, Packet, str, PacketFate], None]
    ) -> None:
        """Register ``callback(time, packet, router, fate)`` fired when a
        packet is lost (any fate except DELIVERED).

        The connection-aware workload generator uses this as its loss
        signal: flows whose packets die re-enter connection setup, which
        is what concentrates SYNs (and diagnostic pings) in loop windows.
        """
        self._drop_listeners.append(callback)

    def add_tap(self, from_router: str, to_router: str,
                callback: TapCallback) -> LinkTap:
        """Attach a passive monitor to the ``from → to`` link direction."""
        link = self.topology.link_between(from_router, to_router)
        tap = LinkTap(link_name=link.name, from_router=from_router,
                      to_router=to_router, callback=callback)
        self._taps.setdefault((from_router, to_router), []).append(tap)
        return tap

    # -- injection ------------------------------------------------------------

    def inject(self, packet: Packet, ingress: str,
               is_icmp_error: bool = False) -> PacketAudit | None:
        """Hand a packet to ``ingress`` at the current simulation time."""
        if not self.topology.has_router(ingress):
            raise TopologyError(f"unknown router {ingress!r}")
        now = self.scheduler.now
        audit: PacketAudit | None = None
        if self.keep_audits:
            audit = PacketAudit(
                packet_id=self._next_packet_id,
                injected_at=now,
                ingress=ingress,
                dst=packet.ip.dst,
            )
            self.audits.append(audit)
        self._next_packet_id += 1
        minute = int(now // 60)
        self.injected_by_minute[minute] = self.injected_by_minute.get(minute, 0) + 1
        transit = _Transit(
            packet=packet,
            ttl=packet.ip.ttl,
            audit=audit,
            visited={},
            injected_at=now,
            is_icmp_error=is_icmp_error,
            flow_hash=_flow_hash(packet),
        )
        self._arrive(transit, ingress)
        return audit

    def inject_at(self, time: float, packet: Packet, ingress: str) -> None:
        """Schedule an injection at a future simulation time."""
        self.scheduler.schedule_at(
            time, lambda p=packet, r=ingress: self.inject(p, r)
        )

    # -- statistics ------------------------------------------------------------

    @property
    def packets_injected(self) -> int:
        return self._next_packet_id

    def loss_fraction(self, fate: PacketFate) -> float:
        """Fraction of injected packets that met ``fate``."""
        if self._next_packet_id == 0:
            return 0.0
        return self.fate_counts[fate] / self._next_packet_id

    def mean_normal_delay(self) -> float:
        """Mean transit time of delivered packets that never looped."""
        if self._normal_delay_count == 0:
            return 0.0
        return self._normal_delay_sum / self._normal_delay_count

    # -- per-hop machinery -------------------------------------------------------

    def _arrive(self, transit: _Transit, router: str) -> None:
        """Packet arrives at ``router``; look up, maybe deliver or drop."""
        count = transit.visited.get(router, 0) + 1
        transit.visited[router] = count
        if count > 1 and transit.audit is not None:
            transit.audit.looped = True

        entry = self.bgp.fib(router).lookup(transit.packet.ip.dst)
        if entry is None:
            self._finish(transit, router, PacketFate.NO_ROUTE)
            return
        egress = entry.next_hop
        if egress == router:
            self._finish(transit, router, PacketFate.DELIVERED)
            return
        next_router = self.igp.next_hop(router, egress, transit.flow_hash)
        if next_router is None:
            self._finish(transit, router, PacketFate.NO_ROUTE)
            return
        if transit.ttl <= 1:
            self._expire(transit, router)
            return
        link = self.topology.link_between(router, next_router)
        if not link.up:
            # Failure not yet detected by the control plane: black hole.
            self._finish(transit, router, PacketFate.LINK_DOWN)
            return
        self._transmit(transit, router, next_router, link)

    def _transmit(self, transit: _Transit, router: str, next_router: str,
                  link: Link) -> None:
        now = self.scheduler.now
        direction = self._directions.setdefault(
            (router, next_router), _DirectionState()
        )
        queue_delay = max(0.0, direction.next_free - now)
        minute = int(now // 60)
        self.queue_delay_by_minute[minute] = (
            self.queue_delay_by_minute.get(minute, 0.0) + queue_delay
        )
        self.transmissions_by_minute[minute] = (
            self.transmissions_by_minute.get(minute, 0) + 1
        )
        if queue_delay > link.max_queue_delay:
            self._finish(transit, router, PacketFate.QUEUE_DROP)
            return
        wire_bytes = transit.packet.ip.total_length
        departure = now + queue_delay + link.transmission_delay(wire_bytes)
        direction.next_free = departure

        transit.ttl -= 1
        if transit.audit is not None:
            transit.audit.hops += 1
            if self.record_crossings:
                transit.audit.crossings.append(
                    (departure, link.name, f"{router}->{next_router}",
                     transit.ttl)
                )

        taps = self._taps.get((router, next_router))
        if taps:
            on_wire = self._materialize(transit)
            for tap in taps:
                self.scheduler.schedule_at(
                    departure,
                    lambda cb=tap.callback, t=departure, p=on_wire: cb(t, p),
                )

        arrival = departure + link.propagation_delay
        self.scheduler.schedule_at(
            arrival, lambda tr=transit, r=next_router: self._arrive(tr, r)
        )

    def _materialize(self, transit: _Transit) -> Packet:
        """The packet as it appears on the wire right now: original bytes
        with the current TTL and a recomputed IP checksum."""
        hops = transit.packet.ip.ttl - transit.ttl
        return transit.packet.forwarded(hops)

    def _expire(self, transit: _Transit, router: str) -> None:
        self._finish(transit, router, PacketFate.TTL_EXPIRED)
        if transit.is_icmp_error:
            return  # ICMP errors never beget ICMP errors (RFC 1122)
        if self.rng.random() >= self.icmp_time_exceeded_probability:
            return  # router ICMP rate limiting
        reply = icmp_time_exceeded(
            transit.packet,
            self.topology.loopback(router),
            identification=self._next_icmp_id & 0xFFFF,
        )
        self._next_icmp_id += 1
        self.inject(reply, router, is_icmp_error=True)

    def _finish(self, transit: _Transit, router: str, fate: PacketFate) -> None:
        now = self.scheduler.now
        self.fate_counts[fate] += 1
        minute = int(now // 60)
        bucket = self.loss_by_minute.setdefault(minute, {})
        bucket[fate] = bucket.get(fate, 0) + 1
        audit = transit.audit
        if audit is not None:
            audit.fate = fate
            audit.fate_time = now
            audit.fate_router = router
        if max(transit.visited.values(), default=0) > 1:
            self.looped_by_minute[minute] = (
                self.looped_by_minute.get(minute, 0) + 1
            )
        if fate is not PacketFate.DELIVERED:
            for drop_listener in self._drop_listeners:
                drop_listener(now, transit.packet, router, fate)
        if fate is PacketFate.DELIVERED:
            for listener in self._delivery_listeners:
                listener(now, transit.packet, router)
            looped = max(transit.visited.values(), default=0) > 1
            delay = now - transit.injected_at
            if looped:
                hops = transit.packet.ip.ttl - transit.ttl
                self.looped_delivered_delays.append((delay, hops))
            else:
                self._normal_delay_sum += delay
                self._normal_delay_count += 1
