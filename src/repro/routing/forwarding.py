"""Packet-level forwarding engine.

Packets travel hop by hop through the event scheduler; at each hop the
router consults its *current* FIBs (BGP prefix table resolved through the
IGP next-hop table), decrements the TTL, and transmits across the link
with serialization + propagation delay and FIFO queueing.  Because lookups
happen at forwarding time against live protocol state, packets in flight
during convergence loop exactly as the paper describes — and the monitor
taps on a link see each crossing as a replica with a decremented TTL.

The per-hop lookup chain (longest-prefix match, hot-potato egress, ECMP
next-hop selection, link resolution) is cached per router in an
epoch-versioned resolved-route cache: each router's cache is valid only
while that router's IGP install epoch and BGP FIB epoch are unchanged, so
converged steady-state forwarding skips resolution entirely while packets
in flight during convergence always see live state and loop exactly as
before.  Cached routes carry the static per-direction link parameters, so
a cache hit forwards without touching the topology at all.

``route_cache=False`` selects the *reference path* instead: the
pre-optimization engine preserved verbatim — per-hop LPM probes with
fresh mask computation, ``topology.link_between`` resolution, closure
allocation per scheduled event, and full checksum recompute per tapped
crossing.  Its output is byte-identical to the fast path; the equivalence
tests pin that, and the benchmarks measure the gap (see
``docs/PERFORMANCE.md``).

The engine also maintains a ground-truth audit channel (per-packet hop
records and loop flags) that the detector never sees; tests use it to
score detector precision and recall.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Callable

from repro.net.addr import IPv4Address
from repro.net.packet import Packet, icmp_time_exceeded
from repro.routing.bgp import BgpProcess
from repro.routing.events import EventScheduler
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import Link, Topology, TopologyError


class PacketFate(Enum):
    """Terminal outcome of a packet's transit through the AS."""

    DELIVERED = "delivered"
    TTL_EXPIRED = "ttl_expired"
    NO_ROUTE = "no_route"
    LINK_DOWN = "link_down"
    QUEUE_DROP = "queue_drop"
    IN_FLIGHT = "in_flight"


@dataclass(slots=True)
class PacketAudit:
    """Ground truth for one packet (never visible to the detector)."""

    packet_id: int
    injected_at: float
    ingress: str
    dst: IPv4Address
    fate: PacketFate = PacketFate.IN_FLIGHT
    fate_time: float = 0.0
    fate_router: str = ""
    hops: int = 0
    looped: bool = False
    crossings: list[tuple[float, str, str, int]] = field(default_factory=list)
    # crossings: (departure time, link name, "a->b" direction, on-wire TTL)

    @property
    def transit_time(self) -> float:
        return self.fate_time - self.injected_at


TapCallback = Callable[[float, Packet], None]


@dataclass(slots=True)
class LinkTap:
    """A passive monitor on one direction of one link."""

    link_name: str
    from_router: str
    to_router: str
    callback: TapCallback


@dataclass(slots=True)
class _Transit:
    """Mutable in-flight packet state."""

    packet: Packet
    ttl: int
    audit: PacketAudit | None
    visited: dict[str, int]
    injected_at: float = 0.0
    is_icmp_error: bool = False
    flow_hash: int = 0
    #: (dst value << 31) | flow_hash — the route-cache key, packed into
    #: one int at injection so per-hop probes allocate no tuple.
    cache_key: int = 0
    #: IP total_length, hoisted out of the per-hop attribute chain.
    wire_bytes: int = 0


@dataclass(slots=True)
class _DirectionState:
    """FIFO transmit state for one direction of one link."""

    next_free: float = 0.0


#: A resolved route, as stored in the per-router cache:
#: ``None``                      — no route (cached negative);
#: ``(egress, None, None)``      — deliver here (this router is egress);
#: ``(egress, next_router, link, direction_state, propagation_delay,
#:   capacity_bps, max_queue_delay, taps)`` — forward.  The trailing
#: fields are the link's static transmit parameters (only ``link.up`` is
#: mutable at run time, and it is re-checked per packet) plus the
#: direction's tap list (shared by reference, so taps added later are
#: seen), so a cache hit never touches the topology.
_Route = tuple

#: Cache-miss sentinel distinct from the cached ``None`` (= no route).
_UNRESOLVED = object()


@dataclass(slots=True)
class _RouteCache:
    """One router's resolved routes, valid for one epoch token.

    The token is the *sum* of the router's IGP install epoch and its FIB
    epoch: both are monotonically non-decreasing, so the sum changes
    exactly when either does, and validity is a single int comparison.
    """

    token: int = -1
    routes: dict[int, _Route | None] = field(default_factory=dict)


def _flow_hash(packet: Packet) -> int:
    """Deterministic per-flow hash for ECMP next-hop selection.

    Mixes the classic five-tuple the way router line cards do, so all
    packets of one flow take one path through equal-cost choices.
    """
    l4 = packet.l4
    src_port = getattr(l4, "src_port", 0) or 0
    dst_port = getattr(l4, "dst_port", 0) or 0
    key = (packet.ip.src.value * 0x9E3779B1
           ^ packet.ip.dst.value * 0x85EBCA77
           ^ (packet.ip.protocol << 16)
           ^ (src_port << 8) ^ dst_port)
    key ^= key >> 13
    return key & 0x7FFFFFFF


class ForwardingEngine:
    """Forwards packets through the simulated AS."""

    def __init__(
        self,
        topology: Topology,
        scheduler: EventScheduler,
        igp: LinkStateProtocol,
        bgp: BgpProcess,
        rng: random.Random | None = None,
        keep_audits: bool = True,
        record_crossings: bool = False,
        icmp_time_exceeded_probability: float = 0.5,
        route_cache: bool = True,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.igp = igp
        self.bgp = bgp
        self.rng = rng or random.Random(0)
        self.keep_audits = keep_audits
        self.record_crossings = record_crossings
        self.icmp_time_exceeded_probability = icmp_time_exceeded_probability
        self.route_cache_enabled = route_cache

        self._taps: dict[tuple[str, str], list[LinkTap]] = {}
        self._delivery_listeners: list[Callable[[float, Packet, str], None]] = []
        self._drop_listeners: list[
            Callable[[float, Packet, str, PacketFate], None]
        ] = []
        self._next_packet_id = 0
        self._next_icmp_id = 1

        # Hot-path state, precomputed so per-hop forwarding allocates
        # nothing: direct FIB references (skipping the bgp.fib() call),
        # per-direction FIFO state, and — per (router, neighbor)
        # direction — the link plus its static transmit parameters
        # (links are never removed from a topology, only marked down,
        # and their delay/capacity never change).
        self._fibs = {name: bgp.fib(name) for name in topology.routers}
        self._igp_epochs = igp.epochs
        self._directions: dict[tuple[str, str], _DirectionState] = {}
        self._hop_state: dict[
            tuple[str, str],
            tuple[Link, _DirectionState, float, float, float, list[LinkTap]],
        ] = {}
        for link in topology.links:
            for tail, head in ((link.a, link.b), (link.b, link.a)):
                direction = _DirectionState()
                self._directions[(tail, head)] = direction
                # The tap list is created eagerly (empty) and carried by
                # reference inside cached routes, so add_tap composes
                # with already-cached entries and the hot loop never
                # builds a (router, neighbor) key just to probe _taps.
                taps = self._taps.setdefault((tail, head), [])
                self._hop_state[(tail, head)] = (
                    link, direction, link.propagation_delay,
                    link.capacity_bps, link.max_queue_delay, taps,
                )
        self._route_caches = {
            name: _RouteCache() for name in topology.routers
        }
        # One probe instead of two in the hot loop: router -> (cache, fib).
        self._cache_state = {
            name: (self._route_caches[name], self._fibs[name])
            for name in topology.routers
        }
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        if not route_cache:
            # Shadow the fast-path method with the preserved reference
            # implementation; everything scheduled through self._arrive
            # (injection included) then takes the slow path.
            self._arrive = self._arrive_reference  # type: ignore[method-assign]

        self.audits: list[PacketAudit] = []
        self.fate_counts: dict[PacketFate, int] = {fate: 0 for fate in PacketFate}
        self.loss_by_minute: dict[int, Counter] = defaultdict(Counter)
        self.injected_by_minute: dict[int, int] = defaultdict(int)
        # Per-minute queueing telemetry: summed queue wait and number of
        # transmissions, for the Sec. VI queueing-delay analysis.  The
        # fast path accumulates into the _pending_* fields and flushes on
        # minute rollover (and on read), replacing two dict updates per
        # hop with two float/int adds.
        self._queue_delay_by_minute: dict[int, float] = defaultdict(float)
        self._transmissions_by_minute: dict[int, int] = defaultdict(int)
        self._minute = 0
        self._minute_end = 60.0
        # [summed queue delay, transmission count] awaiting flush.
        self._pending = [0.0, 0]
        self.looped_by_minute: dict[int, int] = defaultdict(int)
        self.looped_delivered_delays: list[tuple[float, int]] = []
        self._normal_delay_sum = 0.0
        self._normal_delay_count = 0

    # -- taps ---------------------------------------------------------------

    def add_delivery_listener(
        self, callback: Callable[[float, Packet, str], None]
    ) -> None:
        """Register ``callback(time, packet, router)`` fired on delivery.

        Active-measurement baselines use this to receive their probe
        responses (the simulated AS has no end hosts).
        """
        self._delivery_listeners.append(callback)

    def add_drop_listener(
        self, callback: Callable[[float, Packet, str, PacketFate], None]
    ) -> None:
        """Register ``callback(time, packet, router, fate)`` fired when a
        packet is lost (any fate except DELIVERED).

        The connection-aware workload generator uses this as its loss
        signal: flows whose packets die re-enter connection setup, which
        is what concentrates SYNs (and diagnostic pings) in loop windows.
        """
        self._drop_listeners.append(callback)

    def add_tap(self, from_router: str, to_router: str,
                callback: TapCallback) -> LinkTap:
        """Attach a passive monitor to the ``from → to`` link direction.

        Tap callbacks receive ``(timestamp, on-wire packet)`` but may run
        *before* simulated time reaches the timestamp (the fast path
        invokes them at transmit time with the computed departure);
        consumers that care about order must sort, as the monitors do.
        """
        link = self.topology.link_between(from_router, to_router)
        tap = LinkTap(link_name=link.name, from_router=from_router,
                      to_router=to_router, callback=callback)
        self._taps.setdefault((from_router, to_router), []).append(tap)
        return tap

    # -- injection ------------------------------------------------------------

    def inject(self, packet: Packet, ingress: str,
               is_icmp_error: bool = False) -> PacketAudit | None:
        """Hand a packet to ``ingress`` at the current simulation time."""
        if not self.topology.has_router(ingress):
            raise TopologyError(f"unknown router {ingress!r}")
        now = self.scheduler.now
        audit: PacketAudit | None = None
        if self.keep_audits:
            audit = PacketAudit(
                packet_id=self._next_packet_id,
                injected_at=now,
                ingress=ingress,
                dst=packet.ip.dst,
            )
            self.audits.append(audit)
        self._next_packet_id += 1
        self.injected_by_minute[int(now // 60)] += 1
        flow_hash = _flow_hash(packet)
        transit = _Transit(
            packet=packet,
            ttl=packet.ip.ttl,
            audit=audit,
            visited={},
            injected_at=now,
            is_icmp_error=is_icmp_error,
            flow_hash=flow_hash,
            cache_key=(packet.ip.dst.value << 31) | flow_hash,
            wire_bytes=packet.ip.total_length,
        )
        self._arrive(transit, ingress)
        return audit

    def inject_at(self, time: float, packet: Packet, ingress: str) -> None:
        """Schedule an injection at a future simulation time."""
        self.scheduler.call_at(time, self.inject, packet, ingress)

    # -- statistics ------------------------------------------------------------

    @property
    def packets_injected(self) -> int:
        return self._next_packet_id

    def loss_fraction(self, fate: PacketFate) -> float:
        """Fraction of injected packets that met ``fate``."""
        if self._next_packet_id == 0:
            return 0.0
        return self.fate_counts[fate] / self._next_packet_id

    def mean_normal_delay(self) -> float:
        """Mean transit time of delivered packets that never looped."""
        if self._normal_delay_count == 0:
            return 0.0
        return self._normal_delay_sum / self._normal_delay_count

    @property
    def queue_delay_by_minute(self) -> dict[int, float]:
        """Summed queue wait per minute (flushes the hot-path buffer)."""
        self._flush_minute_telemetry()
        return self._queue_delay_by_minute

    @property
    def transmissions_by_minute(self) -> dict[int, int]:
        """Link transmissions per minute (flushes the hot-path buffer)."""
        self._flush_minute_telemetry()
        return self._transmissions_by_minute

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of per-hop resolutions served from the route cache."""
        attempts = self.cache_hits + self.cache_misses
        if attempts == 0:
            return 0.0
        return self.cache_hits / attempts

    def route_cache_stats(self) -> dict[str, float]:
        """Hit/miss/invalidation counters for reports and tests."""
        return {
            "enabled": self.route_cache_enabled,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "invalidations": self.cache_invalidations,
            "hit_rate": self.cache_hit_rate,
        }

    def register_metrics(self, registry) -> None:
        """Publish engine counters through a pull collector.

        The hot path keeps its plain-int counters; the collector mirrors
        them into the registry only when an export runs, so registering
        costs nothing per packet.  The registry holds the collector by
        weak reference — it never extends the engine's lifetime.
        """
        registry.register_collector(self._publish_metrics)

    def _publish_metrics(self, registry) -> None:
        registry.counter(
            "sim_packets_injected_total", "Packets handed to the AS"
        ).set(self._next_packet_id)
        for fate, count in self.fate_counts.items():
            registry.counter(
                f"sim_packets_{fate.value}_total",
                f"Packets whose final fate was {fate.value}",
            ).set(count)
        registry.counter(
            "sim_route_cache_hits_total", "Resolved-route cache hits"
        ).set(self.cache_hits)
        registry.counter(
            "sim_route_cache_misses_total", "Resolved-route cache misses"
        ).set(self.cache_misses)
        registry.counter(
            "sim_route_cache_invalidations_total",
            "Cached routes discarded after an epoch change",
        ).set(self.cache_invalidations)
        registry.gauge(
            "sim_route_cache_hit_rate",
            "Fraction of per-hop resolutions served from cache",
        ).set(self.cache_hit_rate)

    # -- per-hop machinery (fast path) ----------------------------------------

    def _resolve(self, router: str, dst: IPv4Address,
                 flow_hash: int) -> _Route | None:
        """Full control-plane resolution for one (router, dst, flow)."""
        entry = self._fibs[router].lookup(dst)
        if entry is None:
            return None
        egress = entry.next_hop
        if egress == router:
            return (egress, None, None)
        next_router = self.igp.next_hop(router, egress, flow_hash)
        if next_router is None:
            return None
        return (egress, next_router) + self._hop_state[(router, next_router)]

    def _arrive(self, transit: _Transit, router: str) -> None:
        """Packet arrives at ``router``: resolve (through the cache),
        then deliver, drop, or transmit toward the next hop.

        Transmission is inlined rather than delegated: this method runs
        once per packet per hop and is the single hottest function in
        the simulator, so the fast path trades a little repetition for
        one less call frame and no re-derived locals.
        """
        visited = transit.visited
        count = visited.get(router, 0) + 1
        visited[router] = count
        audit = transit.audit
        if count > 1 and audit is not None:
            audit.looped = True

        cache, fib = self._cache_state[router]
        token = self._igp_epochs[router] + fib.epoch
        if cache.token != token:
            if cache.routes:
                cache.routes.clear()
                self.cache_invalidations += 1
            cache.token = token
        routes = cache.routes
        route = routes.get(transit.cache_key, _UNRESOLVED)
        if route is _UNRESOLVED:
            route = self._resolve(router, transit.packet.ip.dst,
                                  transit.flow_hash)
            routes[transit.cache_key] = route
            self.cache_misses += 1
        else:
            self.cache_hits += 1

        if route is None:
            self._finish(transit, router, PacketFate.NO_ROUTE)
            return
        next_router = route[1]
        if next_router is None:
            self._finish(transit, router, PacketFate.DELIVERED)
            return
        if transit.ttl <= 1:
            self._expire(transit, router)
            return
        link = route[2]
        if not link.up:
            # Failure not yet detected by the control plane: black hole.
            self._finish(transit, router, PacketFate.LINK_DOWN)
            return

        # -- transmit (inlined) ------------------------------------------
        scheduler = self.scheduler
        now = scheduler.now
        direction = route[3]
        queue_delay = direction.next_free - now
        if queue_delay < 0.0:
            queue_delay = 0.0
        if now >= self._minute_end:
            self._roll_minute(now)
        pending = self._pending
        pending[0] += queue_delay
        pending[1] += 1
        if queue_delay > route[6]:
            self._finish(transit, router, PacketFate.QUEUE_DROP)
            return
        # Same expression as Link.transmission_delay so the floats match
        # the reference path bit-for-bit.
        departure = now + queue_delay + transit.wire_bytes * 8 / route[5]
        direction.next_free = departure

        transit.ttl -= 1
        if audit is not None:
            audit.hops += 1
            if self.record_crossings:
                audit.crossings.append(
                    (departure, link.name, f"{router}->{next_router}",
                     transit.ttl)
                )

        taps = route[7]
        if taps:
            on_wire = transit.packet.forwarded(
                transit.packet.ip.ttl - transit.ttl
            )
            # Immediate dispatch with the future departure timestamp:
            # taps are passive observers that sort by timestamp, so
            # skipping the per-crossing scheduler event is observably
            # equivalent (see add_tap) and saves a heap push/pop.
            for tap in taps:
                tap.callback(departure, on_wire)

        scheduler.call_at(departure + route[4], self._arrive, transit,
                          next_router)

    def _roll_minute(self, now: float) -> None:
        """Flush buffered telemetry and advance the cached minute."""
        self._flush_minute_telemetry()
        minute = int(now // 60)
        self._minute = minute
        self._minute_end = (minute + 1) * 60.0

    def _flush_minute_telemetry(self) -> None:
        pending = self._pending
        if pending[1]:
            minute = self._minute
            self._queue_delay_by_minute[minute] += pending[0]
            self._transmissions_by_minute[minute] += pending[1]
            pending[0] = 0.0
            pending[1] = 0

    # -- per-hop machinery (reference path) -----------------------------------
    #
    # The engine as it was before the route cache and the allocation-free
    # fast path, kept behavior-identical on purpose: per-hop FIB lookup
    # with per-probe mask computation, hot-potato + ECMP resolution,
    # topology.link_between, closure-per-event scheduling, and full
    # checksum recompute per tapped crossing.  The equivalence suite runs
    # both paths and asserts byte-identical traces; the benchmark reports
    # the speedup of the fast path over exactly this code.

    def _arrive_reference(self, transit: _Transit, router: str) -> None:
        """Reference per-hop arrival (``route_cache=False``)."""
        count = transit.visited.get(router, 0) + 1
        transit.visited[router] = count
        if count > 1 and transit.audit is not None:
            transit.audit.looped = True

        entry = self.bgp.fib(router).lookup_reference(transit.packet.ip.dst)
        if entry is None:
            self._finish(transit, router, PacketFate.NO_ROUTE)
            return
        egress = entry.next_hop
        if egress == router:
            self._finish(transit, router, PacketFate.DELIVERED)
            return
        next_router = self.igp.next_hop(router, egress, transit.flow_hash)
        if next_router is None:
            self._finish(transit, router, PacketFate.NO_ROUTE)
            return
        if transit.ttl <= 1:
            self._expire(transit, router)
            return
        link = self.topology.link_between(router, next_router)
        if not link.up:
            # Failure not yet detected by the control plane: black hole.
            self._finish(transit, router, PacketFate.LINK_DOWN)
            return
        self._transmit_reference(transit, router, next_router, link)

    def _transmit_reference(self, transit: _Transit, router: str,
                            next_router: str, link: Link) -> None:
        now = self.scheduler.now
        direction = self._directions.setdefault(
            (router, next_router), _DirectionState()
        )
        queue_delay = max(0.0, direction.next_free - now)
        minute = int(now // 60)
        queue_delays = self._queue_delay_by_minute
        queue_delays[minute] = queue_delays.get(minute, 0.0) + queue_delay
        transmissions = self._transmissions_by_minute
        transmissions[minute] = transmissions.get(minute, 0) + 1
        if queue_delay > link.max_queue_delay:
            self._finish(transit, router, PacketFate.QUEUE_DROP)
            return
        wire_bytes = transit.packet.ip.total_length
        departure = now + queue_delay + link.transmission_delay(wire_bytes)
        direction.next_free = departure

        transit.ttl -= 1
        if transit.audit is not None:
            transit.audit.hops += 1
            if self.record_crossings:
                transit.audit.crossings.append(
                    (departure, link.name, f"{router}->{next_router}",
                     transit.ttl)
                )

        taps = self._taps.get((router, next_router))
        if taps:
            on_wire = self._materialize_reference(transit)
            for tap in taps:
                self.scheduler.schedule_at(
                    departure,
                    lambda cb=tap.callback, t=departure, p=on_wire: cb(t, p),
                )

        arrival = departure + link.propagation_delay
        self.scheduler.schedule_at(
            arrival, lambda tr=transit, r=next_router: self._arrive(tr, r)
        )

    def _materialize_reference(self, transit: _Transit) -> Packet:
        """The packet as it appears on the wire right now, rebuilt from
        scratch: TTL decremented and checksum cleared so serialization
        recomputes it in full (the pre-incremental-update behavior)."""
        packet = transit.packet
        hops = packet.ip.ttl - transit.ttl
        new_ip = replace(packet.ip, ttl=packet.ip.ttl - hops, checksum=None)
        return Packet(ip=new_ip, l4=packet.l4, payload=packet.payload)

    # -- terminal fates (shared by both paths) --------------------------------

    def _expire(self, transit: _Transit, router: str) -> None:
        self._finish(transit, router, PacketFate.TTL_EXPIRED)
        if transit.is_icmp_error:
            return  # ICMP errors never beget ICMP errors (RFC 1122)
        if self.rng.random() >= self.icmp_time_exceeded_probability:
            return  # router ICMP rate limiting
        reply = icmp_time_exceeded(
            transit.packet,
            self.topology.loopback(router),
            identification=self._next_icmp_id & 0xFFFF,
        )
        self._next_icmp_id += 1
        self.inject(reply, router, is_icmp_error=True)

    def _finish(self, transit: _Transit, router: str, fate: PacketFate) -> None:
        now = self.scheduler.now
        self.fate_counts[fate] += 1
        minute = int(now // 60)
        self.loss_by_minute[minute][fate] += 1
        audit = transit.audit
        if audit is not None:
            audit.fate = fate
            audit.fate_time = now
            audit.fate_router = router
        looped = max(transit.visited.values(), default=0) > 1
        if looped:
            self.looped_by_minute[minute] += 1
        if fate is not PacketFate.DELIVERED:
            for drop_listener in self._drop_listeners:
                drop_listener(now, transit.packet, router, fate)
        else:
            for listener in self._delivery_listeners:
                listener(now, transit.packet, router)
            delay = now - transit.injected_at
            if looped:
                hops = transit.packet.ip.ttl - transit.ttl
                self.looped_delivered_delays.append((delay, hops))
            else:
                self._normal_delay_sum += delay
                self._normal_delay_count += 1
