"""Backbone topology model.

Routers are named nodes; links are bidirectional with per-direction state
(both directions fail together, as with a fiber cut).  Each link carries an
IGP cost, a propagation delay, and a capacity used by the forwarding engine
for transmission delay and queueing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.net.addr import IPv4Address, IPv4Prefix


class TopologyError(ValueError):
    """Raised for malformed topologies or unknown routers/links."""


@dataclass(slots=True)
class Link:
    """A bidirectional link between two routers.

    IGP costs are per direction, as in deployed OSPF/IS-IS (each router
    configures the metric of its own outgoing interface).  ``cost`` is
    the a→b metric; ``cost_ba`` the b→a metric (defaults to symmetric).
    Cost asymmetry matters: it is what makes transient loops longer than
    two routers geometrically possible (with symmetric costs, the
    fork-skip motif behind 3-router micro-loops is metrically
    contradictory).
    """

    a: str
    b: str
    cost: int = 1
    propagation_delay: float = 0.001
    capacity_bps: float = 622_080_000.0  # OC-12, as in the paper's traces
    max_queue_delay: float = 0.5
    up: bool = True
    cost_ba: int | None = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-loop link at {self.a!r}")
        if self.cost <= 0:
            raise TopologyError(f"link cost must be positive: {self.cost}")
        if self.cost_ba is not None and self.cost_ba <= 0:
            raise TopologyError(
                f"link cost must be positive: {self.cost_ba}"
            )
        if self.propagation_delay < 0:
            raise TopologyError("negative propagation delay")
        if self.capacity_bps <= 0:
            raise TopologyError("capacity must be positive")

    def cost_from(self, router: str) -> int:
        """The IGP metric of the direction leaving ``router``."""
        if router == self.a:
            return self.cost
        if router == self.b:
            return self.cost_ba if self.cost_ba is not None else self.cost
        raise TopologyError(f"{router!r} is not an endpoint of {self.name}")

    @property
    def name(self) -> str:
        """Canonical link name, endpoint-order independent."""
        lo, hi = sorted((self.a, self.b))
        return f"{lo}--{hi}"

    def other(self, router: str) -> str:
        """The endpoint opposite ``router``."""
        if router == self.a:
            return self.b
        if router == self.b:
            return self.a
        raise TopologyError(f"{router!r} is not an endpoint of {self.name}")

    def endpoints(self) -> tuple[str, str]:
        return (self.a, self.b)

    def transmission_delay(self, wire_bytes: int) -> float:
        """Serialization delay for a packet of ``wire_bytes`` bytes."""
        return wire_bytes * 8 / self.capacity_bps


class Topology:
    """A set of routers and the links between them."""

    def __init__(self) -> None:
        self._routers: dict[str, IPv4Address] = {}
        self._links: dict[str, Link] = {}
        self._adjacency: dict[str, dict[str, Link]] = {}
        self._next_loopback = IPv4Address.parse("10.255.0.1").value

    # -- construction ------------------------------------------------------

    def add_router(self, name: str, loopback: IPv4Address | None = None) -> None:
        """Add a router; a loopback address is assigned if not given."""
        if name in self._routers:
            raise TopologyError(f"duplicate router {name!r}")
        if loopback is None:
            loopback = IPv4Address(self._next_loopback)
            self._next_loopback += 1
        self._routers[name] = loopback
        self._adjacency[name] = {}

    def add_link(
        self,
        a: str,
        b: str,
        cost: int = 1,
        propagation_delay: float = 0.001,
        capacity_bps: float = 622_080_000.0,
        max_queue_delay: float = 0.5,
        cost_ba: int | None = None,
    ) -> Link:
        """Add a bidirectional link between existing routers."""
        for router in (a, b):
            if router not in self._routers:
                raise TopologyError(f"unknown router {router!r}")
        link = Link(a=a, b=b, cost=cost, propagation_delay=propagation_delay,
                    capacity_bps=capacity_bps, max_queue_delay=max_queue_delay,
                    cost_ba=cost_ba)
        if link.name in self._links:
            raise TopologyError(f"duplicate link {link.name}")
        self._links[link.name] = link
        self._adjacency[a][b] = link
        self._adjacency[b][a] = link
        return link

    # -- lookup ------------------------------------------------------------

    @property
    def routers(self) -> list[str]:
        return list(self._routers)

    @property
    def links(self) -> list[Link]:
        return list(self._links.values())

    def loopback(self, router: str) -> IPv4Address:
        try:
            return self._routers[router]
        except KeyError:
            raise TopologyError(f"unknown router {router!r}") from None

    def has_router(self, name: str) -> bool:
        return name in self._routers

    def link_between(self, a: str, b: str) -> Link:
        try:
            return self._adjacency[a][b]
        except KeyError:
            raise TopologyError(f"no link between {a!r} and {b!r}") from None

    def link_by_name(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise TopologyError(f"unknown link {name!r}") from None

    def neighbors(self, router: str, only_up: bool = True) -> list[str]:
        """Adjacent routers, by default only across links that are up."""
        if router not in self._adjacency:
            raise TopologyError(f"unknown router {router!r}")
        return [
            neighbor
            for neighbor, link in self._adjacency[router].items()
            if link.up or not only_up
        ]

    def adjacent_links(self, router: str) -> list[Link]:
        if router not in self._adjacency:
            raise TopologyError(f"unknown router {router!r}")
        return list(self._adjacency[router].values())

    # -- shortest paths (the "oracle" view; protocols keep their own) -------

    def shortest_paths(self, source: str) -> dict[str, tuple[int, str | None]]:
        """Dijkstra over *currently up* links.

        Returns ``{router: (distance, first_hop)}`` for reachable routers;
        the source maps to ``(0, None)``.  Used by tests as ground truth
        and by protocols as the SPF core (they run it over their own view).
        """
        return dijkstra(
            source,
            lambda router: (
                (link.other(router), link.cost_from(router))
                for link in self._adjacency[router].values()
                if link.up
            ),
            self._routers.keys(),
        )


def dijkstra(
    source: str,
    edges: "callable",
    nodes: Iterable[str],
) -> dict[str, tuple[int, str | None]]:
    """Dijkstra with deterministic tie-breaking on (distance, node name).

    ``edges(router)`` yields ``(neighbor, cost)`` pairs.  Ties between
    equal-cost paths are broken by the lexicographically smallest first
    hop, so every router computes the same tree given the same view —
    mirroring deployed SPF implementations' deterministic behaviour.
    """
    import heapq

    if source not in set(nodes):
        raise TopologyError(f"unknown source {source!r}")
    # best[node] = (distance, first_hop_name); "" sorts first, marks source
    best: dict[str, tuple[int, str]] = {source: (0, "")}
    heap: list[tuple[int, str, str]] = [(0, "", source)]
    settled: set[str] = set()
    while heap:
        dist, first_hop, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor, cost in edges(node):
            if neighbor in settled:
                continue
            candidate = (dist + cost, neighbor if node == source else first_hop)
            if neighbor not in best or candidate < best[neighbor]:
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate[0], candidate[1], neighbor))
    return {
        node: (dist, first_hop or None)
        for node, (dist, first_hop) in best.items()
        if node in settled
    }


def dijkstra_ecmp(
    source: str,
    edges: "callable",
    nodes: Iterable[str],
) -> dict[str, tuple[int, tuple[str, ...]]]:
    """Dijkstra keeping *all* equal-cost first hops per destination.

    Returns ``{node: (distance, (first_hop, ...))}`` with the first hops
    sorted by name; the source maps to ``(0, ())``.  Deployed routers
    install every equal-cost next hop and hash flows across them (ECMP);
    the forwarding engine picks by flow hash so packets of one flow stay
    on one path.
    """
    import heapq

    if source not in set(nodes):
        raise TopologyError(f"unknown source {source!r}")
    distances: dict[str, int] = {source: 0}
    first_hops: dict[str, set[str]] = {source: set()}
    heap: list[tuple[int, str]] = [(0, source)]
    settled: set[str] = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled or dist > distances.get(node, dist):
            continue
        settled.add(node)
        for neighbor, cost in edges(node):
            if neighbor in settled:
                continue
            new_dist = dist + cost
            inherited = first_hops[node] or {neighbor}
            known = distances.get(neighbor)
            if known is None or new_dist < known:
                distances[neighbor] = new_dist
                first_hops[neighbor] = set(inherited)
                heapq.heappush(heap, (new_dist, neighbor))
            elif new_dist == known:
                first_hops[neighbor].update(inherited)
    return {
        node: (distances[node], tuple(sorted(first_hops[node])))
        for node in settled
    }


def triangle_backbone_topology(
    pops: int = 10,
    rng: random.Random | None = None,
    extra_edges: int = 2,
    capacity_bps: float = 622_080_000.0,
) -> Topology:
    """A ring backbone with an engineered micro-loop triangle at pop0.

    The motif: a chord pop0–pop2 that is cheap in the pop0→pop2
    direction (1) and expensive the other way (9), with cost-1 ring links
    around pop0 and cost-2 ring links on the far side.  When the link
    pop0–pop(n-1) fails, pop0's recomputed path to far-side destinations
    leaves via the chord, while pop1 and pop2 still forward through
    pop0 — a three-router transient cycle pop1→pop0→pop2→pop1 whenever
    pop0's FIB updates first.  Two-router cycles form as before, so a
    monitor on pop1→pop0 sees the mixed TTL-delta population of the
    paper's Figure 2 (Backbone 4's 2-and-3 mix).

    Directional metrics like this are ordinary in deployed IGPs, where
    interface costs are configured per direction.
    """
    if pops < 6:
        raise TopologyError("triangle backbone needs at least 6 POPs")
    rng = rng or random.Random(0)
    topo = Topology()
    names = [f"pop{i}" for i in range(pops)]
    for name in names:
        topo.add_router(name)
    # Cost-1 ring links in the pop(n-1)–pop0–pop1–pop2 neighbourhood,
    # cost-2 elsewhere, so near-pop0 ingress traffic to far-side egresses
    # transits pop0 and the failing link.
    cheap = {(pops - 1, 0), (0, 1), (1, 2), (pops - 2, pops - 1)}
    for i in range(pops):
        cost = 1 if (i, (i + 1) % pops) in cheap else 2
        topo.add_link(
            names[i],
            names[(i + 1) % pops],
            cost=cost,
            cost_ba=cost,
            propagation_delay=rng.uniform(0.001, 0.010),
            capacity_bps=capacity_bps,
        )
    # The asymmetric chord that enables the 3-router cycle.  Its cost
    # ties with the pop0→pop1→pop2 path, so ECMP splits flows between
    # the chord (3-router cycles) and pop1 (2-router cycles) — the mixed
    # TTL-delta population of the paper's Backbone 4.
    topo.add_link(names[0], names[2], cost=2, cost_ba=9,
                  propagation_delay=rng.uniform(0.001, 0.006),
                  capacity_bps=capacity_bps)
    # Extra chords on the far side only, so they cannot shortcut the
    # motif geometry around pop0.
    middle = names[3:pops - 2]
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 and len(middle) >= 2:
        attempts += 1
        a, b = rng.sample(middle, 2)
        try:
            topo.add_link(a, b, cost=rng.randint(4, 8),
                          cost_ba=rng.randint(4, 8),
                          propagation_delay=rng.uniform(0.002, 0.012),
                          capacity_bps=capacity_bps)
        except TopologyError:
            continue
        added += 1
    return topo


def line_topology(n: int, **link_kwargs: object) -> Topology:
    """A chain R0 – R1 – … – R(n-1); the simplest loop-capable shape."""
    topo = Topology()
    for i in range(n):
        topo.add_router(f"R{i}")
    for i in range(n - 1):
        topo.add_link(f"R{i}", f"R{i + 1}", **link_kwargs)  # type: ignore[arg-type]
    return topo


def ring_topology(n: int, **link_kwargs: object) -> Topology:
    """A ring of ``n`` routers; failures create multi-hop detours."""
    if n < 3:
        raise TopologyError("ring needs at least 3 routers")
    topo = line_topology(n, **link_kwargs)
    topo.add_link(f"R{n - 1}", "R0", **link_kwargs)  # type: ignore[arg-type]
    return topo


def backbone_topology(
    pops: int = 8,
    rng: random.Random | None = None,
    extra_edges: int = 4,
    capacity_bps: float = 622_080_000.0,
) -> Topology:
    """A POP-level backbone: a ring with random chords, like tier-1 maps.

    Deterministic for a given ``rng`` seed.  Propagation delays are drawn
    in the 1–12 ms range (continental distances), which sets realistic
    loop round-trip times and hence inter-replica spacings (Fig. 4).
    """
    rng = rng or random.Random(0)
    topo = Topology()
    names = [f"pop{i}" for i in range(pops)]
    for name in names:
        topo.add_router(name)
    # Wide cost ranges make metric "triangle violations" (a two-hop path
    # cheaper than the direct link) common, as in real backbones where
    # costs track latency or inverse capacity rather than hop count.
    # Those triangles are what allow transient loops longer than two
    # routers (the paper's TTL deltas of 3–8).
    for i in range(pops):
        topo.add_link(
            names[i],
            names[(i + 1) % pops],
            cost=rng.randint(1, 6),
            cost_ba=rng.randint(1, 6),
            propagation_delay=rng.uniform(0.001, 0.012),
            capacity_bps=capacity_bps,
        )
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 100:
        attempts += 1
        a, b = rng.sample(names, 2)
        try:
            topo.add_link(
                a,
                b,
                cost=rng.randint(2, 10),
                cost_ba=rng.randint(2, 10),
                propagation_delay=rng.uniform(0.002, 0.015),
                capacity_bps=capacity_bps,
            )
        except TopologyError:
            continue
        added += 1
    return topo
