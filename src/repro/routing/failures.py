"""Link-failure injection.

A :class:`FailureSchedule` is a list of timed link down/up events applied
to the topology and announced to the control plane.  Transient loops are
the *consequence* of these events playing out through the protocols'
convergence timers — the schedule itself knows nothing about loops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.routing.events import EventScheduler
from repro.routing.linkstate import LinkStateProtocol
from repro.routing.topology import Link, Topology, TopologyError


@dataclass(slots=True, frozen=True)
class FailureEvent:
    """One link state change at an absolute simulation time."""

    time: float
    link_name: str
    up: bool

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"negative event time: {self.time}")


class FailureSchedule:
    """A timed sequence of link failures and repairs."""

    def __init__(self, events: list[FailureEvent] | None = None) -> None:
        self.events: list[FailureEvent] = sorted(
            events or [], key=lambda event: event.time
        )

    def fail(self, time: float, link_name: str) -> "FailureSchedule":
        """Add a link-down event (chainable)."""
        self.events.append(FailureEvent(time=time, link_name=link_name, up=False))
        self.events.sort(key=lambda event: event.time)
        return self

    def repair(self, time: float, link_name: str) -> "FailureSchedule":
        """Add a link-up event (chainable)."""
        self.events.append(FailureEvent(time=time, link_name=link_name, up=True))
        self.events.sort(key=lambda event: event.time)
        return self

    def flap(self, time: float, link_name: str,
             downtime: float) -> "FailureSchedule":
        """Fail a link at ``time`` and repair it ``downtime`` later."""
        return self.fail(time, link_name).repair(time + downtime, link_name)

    def apply(
        self,
        topology: Topology,
        scheduler: EventScheduler,
        igp: LinkStateProtocol,
    ) -> None:
        """Schedule every event: flip the physical state, tell the IGP."""
        for event in self.events:
            topology.link_by_name(event.link_name)  # validate early
            scheduler.schedule_at(
                event.time,
                lambda ev=event: _apply_event(topology, igp, ev),
            )

    @classmethod
    def random_flaps(
        cls,
        topology: Topology,
        rng: random.Random,
        count: int,
        start: float,
        end: float,
        downtime_range: tuple[float, float] = (5.0, 60.0),
        eligible_links: list[str] | None = None,
    ) -> "FailureSchedule":
        """Random link flaps in ``[start, end)``, like a maintenance window.

        Restricting ``eligible_links`` lets a scenario steer failures onto
        paths whose repair detours cross the monitored link.
        """
        if end <= start:
            raise ValueError("end must exceed start")
        names = eligible_links or [link.name for link in topology.links]
        if not names:
            raise TopologyError("no links to fail")
        schedule = cls()
        for _ in range(count):
            when = rng.uniform(start, end)
            downtime = rng.uniform(*downtime_range)
            schedule.flap(when, rng.choice(names), downtime)
        return schedule


def _apply_event(topology: Topology, igp: LinkStateProtocol,
                 event: FailureEvent) -> None:
    link = topology.link_by_name(event.link_name)
    if link.up == event.up:
        return  # flap overlap: already in the requested state
    link.up = event.up
    if igp.journal is not None:
        from repro.routing.journal import EventKind

        kind = EventKind.LINK_UP if event.up else EventKind.LINK_DOWN
        igp.journal.record(igp.scheduler.now, kind, link.a,
                           detail=link.name)
    igp.tracer.event("link_up" if event.up else "link_down",
                     link=link.name, a=link.a, b=link.b)
    if event.up:
        igp.notify_link_up(link)
    else:
        igp.notify_link_down(link)
